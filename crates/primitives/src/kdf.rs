//! HKDF-style key derivation (RFC 5869, extract+expand with HMAC-SHA-256).
//!
//! Used to split master keys into domain-separated subkeys: the paper's
//! `Keygen` produces `(k_m, k_w)`; this module additionally derives the
//! CTR/MAC split inside [`crate::etm::EtmKey`] and per-purpose keys in the
//! schemes (tag PRF vs. chain seed vs. masking keys).

use crate::hmac::{hmac_sha256, HmacSha256};

/// HKDF-Extract: `PRK = HMAC(salt, ikm)`.
#[must_use]
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: derive `out.len()` bytes from `prk` and `info`.
///
/// # Panics
/// Panics if more than `255 * 32` bytes are requested (RFC 5869 limit).
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], out: &mut [u8]) {
    assert!(
        out.len() <= 255 * 32,
        "HKDF-Expand output too long: {}",
        out.len()
    );
    let mut prev: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    let mut filled = 0usize;
    while filled < out.len() {
        let mut h = HmacSha256::new(prk);
        h.update(&prev);
        h.update(info);
        h.update(&[counter]);
        let block = h.finalize();
        let take = (out.len() - filled).min(32);
        out[filled..filled + take].copy_from_slice(&block[..take]);
        filled += take;
        prev = block.to_vec();
        counter = counter.wrapping_add(1);
    }
}

/// One-shot HKDF: extract with `salt` then expand with `info`.
#[must_use]
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = hkdf_extract(salt, ikm);
    let mut out = vec![0u8; len];
    hkdf_expand(&prk, info, &mut out);
    out
}

/// Derive a 32-byte subkey from a master key under a textual domain label.
#[must_use]
pub fn derive_key32(master: &[u8; 32], label: &str) -> [u8; 32] {
    let prk = hkdf_extract(b"sse-repro/v1", master);
    let mut out = [0u8; 32];
    hkdf_expand(&prk, label.as_bytes(), &mut out);
    out
}

/// Derive the (AES-128, HMAC) subkey pair used by encrypt-then-MAC.
#[must_use]
pub fn derive_subkeys(master: &[u8; 32]) -> ([u8; 16], [u8; 32]) {
    let prk = hkdf_extract(b"sse-repro/etm", master);
    let mut enc = [0u8; 16];
    hkdf_expand(&prk, b"enc", &mut enc);
    let mut mac = [0u8; 32];
    hkdf_expand(&prk, b"mac", &mut mac);
    (enc, mac)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 5869 Appendix A.1 test case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        hkdf_expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    /// RFC 5869 Appendix A.2 test case 2 (longer inputs/outputs).
    #[test]
    fn rfc5869_case_2() {
        let ikm: Vec<u8> = (0x00..=0x4f).collect();
        let salt: Vec<u8> = (0x60..=0xaf).collect();
        let info: Vec<u8> = (0xb0..=0xff).collect();
        let okm = hkdf(&salt, &ikm, &info, 82);
        assert_eq!(
            hex(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    /// RFC 5869 Appendix A.3 test case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case_3() {
        let ikm = [0x0bu8; 22];
        let okm = hkdf(b"", &ikm, b"", 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn labels_are_domain_separated() {
        let master = [0x77u8; 32];
        assert_ne!(derive_key32(&master, "a"), derive_key32(&master, "b"));
        assert_eq!(derive_key32(&master, "a"), derive_key32(&master, "a"));
    }

    #[test]
    fn subkeys_differ_from_each_other_and_master() {
        let master = [0x10u8; 32];
        let (enc, mac) = derive_subkeys(&master);
        assert_ne!(&enc[..], &mac[..16]);
        assert_ne!(&mac[..], &master[..]);
    }
}
