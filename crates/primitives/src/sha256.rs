//! SHA-256 (FIPS 180-4), implemented from the specification.
//!
//! Provides both a one-shot [`sha256`] function and an incremental
//! [`Sha256`] hasher. This is the hash underlying the paper's PRF `f`
//! (via HMAC), the Lamport chain `h`, and the key-derivation function.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 32;
/// Internal block size in bytes (also HMAC's block size for SHA-256).
pub const BLOCK_LEN: usize = 64;

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use sse_primitives::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     hex(&h.finalize()),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// fn hex(b: &[u8]) -> String { b.iter().map(|x| format!("{x:02x}")).collect() }
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes processed so far (excluding buffered).
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Absorb more message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self
            .len
            .checked_add(data.len() as u64)
            .expect("SHA-256 message length overflow");
        // Top up a partially filled buffer first.
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while data.len() >= BLOCK_LEN {
            let (block, rest) = data.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and return the 32-byte digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then 64-bit big-endian bit length.
        let mut pad = [0u8; BLOCK_LEN * 2];
        let pad_len = if self.buf_len < 56 {
            BLOCK_LEN - self.buf_len
        } else {
            2 * BLOCK_LEN - self.buf_len
        };
        pad[0] = 0x80;
        pad[pad_len - 8..pad_len].copy_from_slice(&bit_len.to_be_bytes());
        self.update_no_len(&pad[..pad_len]);
        debug_assert_eq!(self.buf_len, 0);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Like `update` but without advancing the message length counter — used
    /// only to feed padding in `finalize`.
    fn update_no_len(&mut self, data: &[u8]) {
        let saved = self.len;
        self.update(data);
        self.len = saved;
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-256 over the concatenation of several parts, without
/// materializing the concatenation.
#[must_use]
pub fn sha256_concat(parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // FIPS 180-4 / NIST CAVP short-message vectors.
    #[test]
    fn empty_message() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn four_block_message() {
        let m = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex(&sha256(m)),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let m = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&m)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn exact_block_boundary() {
        // 64-byte message exercises the "padding needs a second block" path.
        let m = [0x61u8; 64];
        let one_shot = sha256(&m);
        let mut inc = Sha256::new();
        inc.update(&m[..1]);
        inc.update(&m[1..]);
        assert_eq!(inc.finalize(), one_shot);
    }

    #[test]
    fn incremental_matches_oneshot_for_all_split_points() {
        let msg: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let want = sha256(&msg);
        for split in 0..msg.len() {
            let mut h = Sha256::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn concat_helper_matches_manual_concat() {
        let a = b"hello ";
        let b = b"world";
        let mut joined = Vec::new();
        joined.extend_from_slice(a);
        joined.extend_from_slice(b);
        assert_eq!(sha256_concat(&[a, b]), sha256(&joined));
    }

    #[test]
    fn fifty_five_and_fifty_six_byte_messages() {
        // 55 bytes: padding fits in one block; 56 bytes: needs an extra block.
        for n in [55usize, 56, 57, 63, 64, 65] {
            let m = vec![0xabu8; n];
            let d1 = sha256(&m);
            let mut h = Sha256::new();
            for chunk in m.chunks(7) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), d1, "length {n}");
        }
    }
}
