//! AES-128 in counter (CTR) mode — NIST SP 800-38A.
//!
//! CTR turns the block cipher into a stream cipher: data items `M_i` of any
//! length are encrypted as `M XOR E_k(counter-blocks)`. The IV occupies the
//! first 12 bytes of the counter block; the last 4 bytes are a big-endian
//! block counter starting at 0 (messages are therefore limited to
//! 2^32 blocks = 64 GiB, far above anything in this workspace).

use crate::aes::{Aes128, BLOCK_LEN};

/// Length of the per-message IV in bytes.
pub const IV_LEN: usize = 12;

/// AES-128-CTR keystream generator / cipher.
pub struct AesCtr {
    aes: Aes128,
    counter_block: [u8; BLOCK_LEN],
    next_block_index: u32,
}

impl AesCtr {
    /// Create a CTR instance for one message under `key` and `iv`.
    #[must_use]
    pub fn new(key: &[u8; 16], iv: &[u8; IV_LEN]) -> Self {
        let mut counter_block = [0u8; BLOCK_LEN];
        counter_block[..IV_LEN].copy_from_slice(iv);
        AesCtr {
            aes: Aes128::new(key),
            counter_block,
            next_block_index: 0,
        }
    }

    fn keystream_block(&mut self) -> [u8; BLOCK_LEN] {
        self.counter_block[IV_LEN..].copy_from_slice(&self.next_block_index.to_be_bytes());
        self.next_block_index = self
            .next_block_index
            .checked_add(1)
            .expect("CTR counter overflow: message too long");
        self.aes.encrypt(&self.counter_block)
    }

    /// XOR the keystream into `data` (encrypts or decrypts).
    pub fn apply(&mut self, data: &mut [u8]) {
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let ks = self.keystream_block();
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
        }
    }
}

/// Encrypt `plaintext` under (`key`, `iv`), returning a fresh ciphertext.
#[must_use]
pub fn ctr_encrypt(key: &[u8; 16], iv: &[u8; IV_LEN], plaintext: &[u8]) -> Vec<u8> {
    let mut data = plaintext.to_vec();
    AesCtr::new(key, iv).apply(&mut data);
    data
}

/// Decrypt is identical to encrypt in CTR mode; provided for readability.
#[must_use]
pub fn ctr_decrypt(key: &[u8; 16], iv: &[u8; IV_LEN], ciphertext: &[u8]) -> Vec<u8> {
    ctr_encrypt(key, iv, ciphertext)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    /// SP 800-38A F.5.1 CTR-AES128 vector, adapted: that vector uses a
    /// 16-byte initial counter `f0f1..ff`. We reproduce it by splitting the
    /// counter into IV = first 12 bytes and initial block counter
    /// 0xfcfdfeff, then checking only the first block (our block counter
    /// increments the low 32 bits just like the NIST one).
    #[test]
    fn sp800_38a_f51_first_block() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let iv: [u8; 12] = [
            0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa, 0xfb,
        ];
        let mut ctr = AesCtr::new(&key, &iv);
        ctr.next_block_index = 0xfcfd_feff;
        let mut block = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        ctr.apply(&mut block);
        assert_eq!(hex(&block), "874d6191b620e3261bef6864990db6ce");
    }

    #[test]
    fn round_trip_various_lengths() {
        let key = [0x11u8; 16];
        let iv = [0x22u8; 12];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let ct = ctr_encrypt(&key, &iv, &pt);
            assert_eq!(ct.len(), pt.len());
            if len > 0 {
                assert_ne!(ct, pt, "length {len}");
            }
            assert_eq!(ctr_decrypt(&key, &iv, &ct), pt, "length {len}");
        }
    }

    #[test]
    fn distinct_ivs_give_distinct_ciphertexts() {
        let key = [0x33u8; 16];
        let pt = vec![0u8; 64];
        let c1 = ctr_encrypt(&key, &[0u8; 12], &pt);
        let c2 = ctr_encrypt(&key, &[1u8; 12], &pt);
        assert_ne!(c1, c2);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = [0x44u8; 16];
        let iv = [0x55u8; 12];
        let pt: Vec<u8> = (0..123u8).collect();
        let oneshot = ctr_encrypt(&key, &iv, &pt);
        // Applying in two chunks must give the same result only when chunk
        // sizes are multiples of the block size (CTR state is per block).
        let mut data = pt.clone();
        let mut c = AesCtr::new(&key, &iv);
        let (a, b) = data.split_at_mut(48);
        c.apply(a);
        c.apply(b);
        assert_eq!(data, oneshot);
    }
}
