//! # sse-primitives
//!
//! From-scratch cryptographic primitives backing the reproduction of
//! *Adaptively Secure Computationally Efficient Searchable Symmetric
//! Encryption* (Sedghi, van Liesdonk, Doumen, Hartel, Jonker — SDM@VLDB 2010).
//!
//! The paper's constructions are parameterised by five abstract primitives;
//! this crate provides a concrete, dependency-free instantiation of each:
//!
//! | Paper object | Instantiation here | Module |
//! |---|---|---|
//! | PRF `f`, `f'` | HMAC-SHA-256 | [`hmac`], [`prf`] |
//! | PRG `G` | ChaCha20 keystream | [`chacha20`], [`prg`] |
//! | PRP `E` (block cipher) | AES-128, plus AES-CTR + HMAC encrypt-then-MAC | [`aes`], [`ctr`], [`etm`] |
//! | IND-CPA trapdoor permutation `F` | ElGamal over RFC 3526 MODP groups | [`elgamal`], [`modp`], [`bignum`] |
//! | hash chain `h^l` (Lamport) | SHA-256 chain | [`hashchain`] |
//!
//! Supporting machinery: a deterministic HMAC-DRBG ([`drbg`]), an HKDF-style
//! key-derivation function ([`kdf`]) and constant-time helpers ([`ct`]).
//!
//! ## Security caveat
//!
//! These implementations follow the published algorithms (FIPS 180-4,
//! FIPS 197, RFC 2104, RFC 8439) and pass the official test vectors, but they
//! exist to reproduce a research paper's *cost model and functionality*, not
//! to protect production data. Use a vetted crypto library for real systems.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod bignum;
pub mod chacha20;
pub mod ct;
pub mod ctr;
pub mod drbg;
pub mod elgamal;
pub mod error;
pub mod etm;
pub mod hashchain;
pub mod hmac;
pub mod kdf;
pub mod modp;
pub mod prf;
pub mod prg;
pub mod sha256;

pub use error::{CryptoError, Result};

/// Number of bytes in the digest / PRF output used throughout the workspace.
pub const DIGEST_LEN: usize = 32;

/// A 32-byte secret key, the unit of keying material in the paper
/// (`k_m`, `k_w` are each drawn from `{0,1}^s` with `s = 256`).
pub type Key256 = [u8; 32];

/// Fill a buffer with operating-system entropy.
///
/// This is the only place the crate touches an external randomness source;
/// everything else is deterministic given its inputs.
pub fn os_random(buf: &mut [u8]) {
    use rand::Rng;
    rand::rng().fill_bytes(buf);
}

/// Sample a fresh 32-byte key from OS entropy.
pub fn random_key() -> Key256 {
    let mut k = [0u8; 32];
    os_random(&mut k);
    k
}
