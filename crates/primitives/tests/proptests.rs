//! Property-based tests for the cryptographic primitives: algebraic laws
//! for the big-integer arithmetic, round-trip laws for every cipher layer,
//! and structural invariants of the chain/KDF machinery.

use proptest::prelude::*;
use sse_primitives::aes::Aes128;
use sse_primitives::bignum::BigUint;
use sse_primitives::chacha20::prg_expand;
use sse_primitives::ct;
use sse_primitives::ctr::{ctr_decrypt, ctr_encrypt};
use sse_primitives::drbg::HmacDrbg;
use sse_primitives::etm::EtmKey;
use sse_primitives::hashchain::HashChain;
use sse_primitives::hmac::hmac_sha256;
use sse_primitives::sha256::{sha256, Sha256};

fn biguint(max_bytes: usize) -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u8>(), 0..=max_bytes)
        .prop_map(|bytes| BigUint::from_bytes_be(&bytes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---- big integers ------------------------------------------------------

    #[test]
    fn bytes_round_trip(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let n = BigUint::from_bytes_be(&bytes);
        let back = BigUint::from_bytes_be(&n.to_bytes_be());
        prop_assert_eq!(n, back);
    }

    #[test]
    fn addition_is_commutative_and_associative(
        a in biguint(48), b in biguint(48), c in biguint(48)
    ) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn subtraction_inverts_addition(a in biguint(48), b in biguint(48)) {
        prop_assert_eq!(a.add(&b).sub(&b), a.clone());
        prop_assert_eq!(a.add(&b).sub(&a), b);
    }

    #[test]
    fn multiplication_laws(a in biguint(32), b in biguint(32), c in biguint(32)) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        // Distributivity: a*(b+c) = a*b + a*c.
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        prop_assert_eq!(a.mul(&BigUint::one()), a.clone());
        prop_assert!(a.mul(&BigUint::zero()).is_zero());
    }

    #[test]
    fn division_reconstructs(a in biguint(48), b in biguint(24)) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
        prop_assert!(r.cmp_big(&b) == std::cmp::Ordering::Less);
    }

    #[test]
    fn shifts_are_mul_div_by_powers_of_two(a in biguint(32), s in 0usize..100) {
        let shifted = a.shl(s);
        prop_assert_eq!(shifted.shr(s), a.clone());
        // shl by s multiplies by 2^s.
        let two_s = BigUint::one().shl(s);
        prop_assert_eq!(shifted, a.mul(&two_s));
    }

    #[test]
    fn mod_pow_respects_exponent_addition(
        base in biguint(16), e1 in 0u64..300, e2 in 0u64..300, m in biguint(16)
    ) {
        prop_assume!(m.bit_len() >= 2);
        // base^(e1+e2) = base^e1 * base^e2 (mod m)
        let lhs = base.mod_pow(&BigUint::from_u64(e1 + e2), &m);
        let rhs = base
            .mod_pow(&BigUint::from_u64(e1), &m)
            .mod_mul(&base.mod_pow(&BigUint::from_u64(e2), &m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn mod_inverse_is_inverse(a in biguint(24), seed in 0u64..1000) {
        // Work modulo a fixed odd prime (2^89 - 1 is prime).
        let p = BigUint::one().shl(89).sub(&BigUint::one());
        let _ = seed;
        let a = a.rem(&p);
        prop_assume!(!a.is_zero());
        let inv = a.mod_inverse(&p).unwrap();
        prop_assert!(a.mod_mul(&inv, &p).is_one());
    }

    #[test]
    fn montgomery_and_plain_modmul_agree(
        a in biguint(32), b in biguint(32), m in biguint(32)
    ) {
        prop_assume!(m.bit_len() >= 2 && !m.is_even());
        // mod_pow with exponent 1 exercises the Montgomery path; multiply
        // manually for the reference.
        let prod_ref = a.rem(&m).mod_mul(&b.rem(&m), &m);
        // (a*b)^1 mod m via mod_pow:
        let prod_mont = a.mul(&b).mod_pow(&BigUint::from_u64(1), &m);
        prop_assert_eq!(prod_ref, prod_mont);
    }

    // ---- hashing -----------------------------------------------------------

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..2048),
        split in 0usize..2048
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn hmac_distinguishes_keys_and_messages(
        k1 in prop::collection::vec(any::<u8>(), 1..64),
        k2 in prop::collection::vec(any::<u8>(), 1..64),
        msg in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
    }

    // ---- ciphers -----------------------------------------------------------

    #[test]
    fn aes_decrypt_inverts_encrypt(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        prop_assert_eq!(aes.decrypt(&aes.encrypt(&block)), block);
    }

    #[test]
    fn ctr_round_trip(
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 12]>(),
        pt in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        prop_assert_eq!(ctr_decrypt(&key, &iv, &ctr_encrypt(&key, &iv, &pt)), pt);
    }

    #[test]
    fn etm_round_trip_and_tamper_detection(
        master in any::<[u8; 32]>(),
        pt in prop::collection::vec(any::<u8>(), 0..256),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let k = EtmKey::new(&master);
        let ct = k.seal(&pt);
        prop_assert_eq!(k.open(&ct).unwrap(), pt);
        // Any single bit flip anywhere must be rejected.
        let mut tampered = ct.clone();
        let pos = flip_byte % tampered.len();
        tampered[pos] ^= 1 << flip_bit;
        prop_assert!(k.open(&tampered).is_err());
    }

    #[test]
    fn prg_mask_is_involutive(
        seed in any::<[u8; 32]>(),
        data in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mask = prg_expand(&seed, data.len());
        let once = ct::xor(&data, &mask);
        let twice = ct::xor(&once, &mask);
        prop_assert_eq!(twice, data);
    }

    // ---- constant-time helpers ---------------------------------------------

    #[test]
    fn ct_eq_agrees_with_slice_eq(
        a in prop::collection::vec(any::<u8>(), 0..64),
        b in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assert_eq!(ct::ct_eq(&a, &b), a == b);
    }

    // ---- hash chains -------------------------------------------------------

    #[test]
    fn chain_checkpointing_is_transparent(
        material in prop::collection::vec(any::<u8>(), 1..32),
        length in 1usize..200,
        ctr in 0u64..200,
    ) {
        let ctr = ctr.min(length as u64);
        let plain = HashChain::new(&[&material], length);
        let pebbled = HashChain::with_checkpoints(&[&material], length);
        prop_assert_eq!(
            plain.key_for_counter(ctr).unwrap(),
            pebbled.key_for_counter(ctr).unwrap()
        );
    }

    // ---- DRBG --------------------------------------------------------------

    #[test]
    fn drbg_streams_are_deterministic_and_seed_separated(s1 in any::<u64>(), s2 in any::<u64>()) {
        let mut a1 = HmacDrbg::from_u64(s1);
        let mut a2 = HmacDrbg::from_u64(s1);
        prop_assert_eq!(a1.gen_key(), a2.gen_key());
        if s1 != s2 {
            let mut b = HmacDrbg::from_u64(s2);
            let mut fresh = HmacDrbg::from_u64(s1);
            prop_assert_ne!(fresh.gen_key(), b.gen_key());
        }
    }
}
