//! One-off generator for the fast-profile safe prime (dev tool).
use sse_primitives::bignum::BigUint;
use sse_primitives::drbg::HmacDrbg;

fn main() {
    let mut drbg = HmacDrbg::from_u64(20100706);
    let one = BigUint::one();
    let two = BigUint::from_u64(2);
    let low = BigUint::one().shl(255);
    let high = BigUint::one().shl(256);
    let mut tries = 0u64;
    loop {
        tries += 1;
        // random odd q in [2^254, 2^255), p = 2q+1 in [2^255, 2^256)
        let mut q = BigUint::random_range(&mut drbg, &low.shr(1), &high.shr(1));
        if q.is_even() {
            q = q.add(&one);
        }
        if !q.is_probable_prime(8, &mut drbg) {
            continue;
        }
        let p = q.mul(&two).add(&one);
        if p.bit_len() != 256 {
            continue;
        }
        if !p.is_probable_prime(32, &mut drbg) {
            continue;
        }
        if !q.is_probable_prime(32, &mut drbg) {
            continue;
        }
        let hex: String = p.to_bytes_be().iter().map(|b| format!("{b:02X}")).collect();
        println!("tries={tries}");
        println!("p = {hex}");
        break;
    }
}
