//! Readiness-driven non-blocking event loop for the daemon's accept/IO
//! layer.
//!
//! One reactor thread owns the listener, a wakeup pipe, and every client
//! socket. Sockets are nonblocking; the reactor parks in `epoll_wait` and
//! only touches a connection when the kernel reports it ready. Frames are
//! assembled incrementally by [`StreamingDecoder`] — a connection that is
//! idle at a frame boundary holds **zero** buffered bytes, which is what
//! lets one thread hold tens of thousands of idle tenants at a flat
//! per-connection cost (the thread-per-connection architecture paid a
//! stack per idle socket).
//!
//! ```text
//!              epoll_wait ──▶ reactor thread
//!   listener ready ─▶ accept loop (cap: max_conns)
//!   socket readable ─▶ StreamingDecoder ─▶ frames ─▶ try_send job ─▶ workers
//!   socket writable ─▶ drain bounded write queue, disarm EPOLLOUT
//!   wake pipe ready ─▶ drain CompletionQueue (worker responses)
//! ```
//!
//! **Write backpressure.** Responses go through a bounded per-connection
//! write queue. A response that doesn't fit in the kernel send buffer is
//! queued and `EPOLLOUT` armed; a reader that never drains hits the queue
//! bound and is disconnected (`slow_reader_disconnects`) — the daemon's
//! memory stays bounded no matter how slow the peer is. `BUSY` remains
//! the job-queue backpressure signal; there is no BUSY-on-accept.
//!
//! **Workers.** CPU-bound scheme work still runs on the worker pool. The
//! reactor hands jobs over with a [`Responder::Reactor`][crate::daemon]
//! handle; workers post pre-framed responses to the [`CompletionQueue`]
//! and nudge the reactor through the wakeup pipe.
//!
//! **Determinism.** Everything is generic over [`Poller`], so the unit
//! tests drive the exact production state machine with a scripted
//! [`MockPoller`] — spurious wakeups, out-of-order readiness and stale
//! tokens included — without opening a socket.

use crate::daemon::{Job, Responder, Shared};
use crate::proto::{
    self, Hello, ADMIN_SHUTDOWN, ADMIN_STATS, HELLO_SEQ, KIND_ADMIN, KIND_DATA, KIND_SEARCH_MANY,
    KIND_UPDATE_MANY, STATUS_BUSY, STATUS_ERR, STATUS_OK,
};
use crate::sched::{route_hash, JobSender};
use crate::stats::ServingStats;
use crate::tenant::TenantHandle;
use epoll::{wake_pipe, Event, Interest, Poller, RealPoller, WakeReader, Waker};
use sse_net::frame::StreamingDecoder;
use sse_net::pool::{BufPool, PooledBuf};
use sse_net::shutdown::ShutdownSignal;
use std::collections::VecDeque;
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Token carried by listener readiness events.
pub(crate) const LISTENER_TOKEN: u64 = u64::MAX;
/// Token carried by wakeup-pipe readiness events.
pub(crate) const WAKE_TOKEN: u64 = u64::MAX - 1;
/// Completion token that panics the reactor thread — a test hook for the
/// "reactor dies mid-load" shutdown-accounting path. Never used by
/// production code paths.
pub(crate) const POISON_TOKEN: u64 = u64::MAX - 2;

/// How long the final drain waits for peers to accept queued response
/// bytes before giving up on them.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// Read scratch buffer size (per reactor, not per connection).
const SCRATCH_LEN: usize = 64 * 1024;

/// Iovec slots per `writev` (the syscall-coalescing batch bound).
const WRITEV_BATCH: usize = epoll::IOV_MAX;

/// Pack a slab index and generation into an epoll token.
fn make_token(idx: usize, gen: u32) -> u64 {
    (u64::from(gen) << 32) | idx as u64
}

/// Split an epoll token back into `(idx, gen)`.
fn split_token(token: u64) -> (usize, u32) {
    ((token & 0xFFFF_FFFF) as usize, (token >> 32) as u32)
}

/// A response payload segment: plain owned bytes, or a pool-backed view
/// whose drop recycles the buffer into the [`BufPool`] it came from.
pub(crate) enum Segment {
    Owned(Vec<u8>),
    Pooled(PooledBuf),
}

impl Segment {
    fn as_slice(&self) -> &[u8] {
        match self {
            Segment::Owned(v) => v,
            Segment::Pooled(b) => b,
        }
    }

    fn len(&self) -> usize {
        self.as_slice().len()
    }
}

/// One outbound wire message held in scatter-gather form: the fixed
/// response prefix (frame length ‖ status ‖ seq) inline, the payload as a
/// borrowed-until-written segment. The two parts go to the kernel as
/// separate iovecs — the payload bytes are never memcpy'd into a
/// contiguous frame buffer.
pub(crate) struct OutMsg {
    head: [u8; 9],
    head_len: u8,
    payload: Segment,
}

impl OutMsg {
    /// A response envelope around `payload`.
    pub(crate) fn response(status: u8, seq: u32, payload: Segment) -> OutMsg {
        OutMsg {
            head: proto::response_prefix(status, seq, payload.len()),
            head_len: 9,
            payload,
        }
    }

    /// Pre-framed raw bytes (no prefix is added — test hooks only).
    pub(crate) fn raw(frame: Vec<u8>) -> OutMsg {
        OutMsg {
            head: [0; 9],
            head_len: 0,
            payload: Segment::Owned(frame),
        }
    }

    fn head(&self) -> &[u8] {
        &self.head[..usize::from(self.head_len)]
    }

    /// Total wire length.
    fn len(&self) -> usize {
        usize::from(self.head_len) + self.payload.len()
    }
}

/// One finished worker response, addressed by connection token.
pub(crate) struct Completion {
    pub(crate) token: u64,
    pub(crate) msg: OutMsg,
}

/// Worker → reactor handoff: a queue of responses plus the wakeup pipe
/// that unparks the reactor from `epoll_wait`.
pub(crate) struct CompletionQueue {
    queue: Mutex<VecDeque<Completion>>,
    waker: Waker,
}

impl CompletionQueue {
    pub(crate) fn new(waker: Waker) -> CompletionQueue {
        CompletionQueue {
            queue: Mutex::new(VecDeque::new()),
            waker,
        }
    }

    /// Post one response for the connection behind `token` and unpark the
    /// reactor.
    pub(crate) fn post(&self, token: u64, msg: OutMsg) {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back(Completion { token, msg });
        self.waker.notify();
    }

    /// Unpark the reactor without posting anything (shutdown nudges).
    pub(crate) fn wake(&self) {
        self.waker.notify();
    }

    fn drain_into(&self, out: &mut Vec<Completion>) {
        let mut q = self
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        out.extend(q.drain(..));
    }
}

/// The socket side of a connection, abstracted so unit tests can script
/// reads and writes without a kernel socket.
pub(crate) trait ConnIo: Read + Write + Send {
    /// Raw fd for poller registration.
    fn fd(&self) -> RawFd;

    /// Gather-write `bufs` in order, returning bytes accepted (possibly a
    /// partial prefix of the total). The scripted test IO honors its
    /// write-capacity valve across segments so partial-`writev` resume is
    /// deterministic.
    fn writev(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize>;
}

impl ConnIo for TcpStream {
    fn fd(&self) -> RawFd {
        self.as_raw_fd()
    }

    fn writev(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
        epoll::writev_fd(self.as_raw_fd(), bufs)
    }
}

/// Protocol position of a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnState {
    /// Nothing valid received yet; the first frame must be the hello.
    AwaitingHello,
    /// Hello accepted; serving requests for `tenant`.
    Established,
    /// A fatal protocol error was answered (or the envelope demands a
    /// close): stop reading, flush the write queue, then close.
    Draining,
}

/// Why a connection was closed — drives the per-reason counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CloseReason {
    /// Peer hung up (read returned 0) or reset.
    PeerClosed,
    /// A read or write failed with a real error.
    IoError,
    /// The draining write queue emptied after a protocol error or admin
    /// close.
    Drained,
    /// Reaped by the idle deadline.
    Idle,
    /// The bounded write queue overflowed: the peer reads slower than it
    /// triggers responses.
    SlowReader,
    /// Daemon shutdown closed the connection.
    Shutdown,
}

/// Per-connection state machine.
struct Conn {
    io: Box<dyn ConnIo>,
    state: ConnState,
    decoder: StreamingDecoder,
    tenant: Option<TenantHandle>,
    /// Responses not yet accepted by the kernel, oldest first, in
    /// scatter-gather form.
    write_queue: VecDeque<OutMsg>,
    /// Bytes of `write_queue.front()` already written. After a `writev`
    /// that spanned several messages this may transiently exceed the
    /// front's length; the flush loop normalizes it while popping.
    write_offset: usize,
    /// Total bytes across `write_queue` (the bound is checked against
    /// this sum).
    queued_bytes: usize,
    /// Jobs handed to workers whose responses have not come back yet. An
    /// in-flight connection is never idle-reaped.
    in_flight: u32,
    /// Scheduler routing key, fixed at hello from the tenant name and
    /// scheme: every job from this connection homes to one worker queue
    /// (tenant affinity).
    route: u64,
    /// Advanced only when a **complete** frame arrives — a slow-loris
    /// client dripping single header bytes stays eligible for the idle
    /// reaper.
    last_activity: Instant,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl Conn {
    fn new(io: Box<dyn ConnIo>, max_frame_len: u32, pool: Option<BufPool>) -> Conn {
        Conn {
            io,
            state: ConnState::AwaitingHello,
            decoder: match pool {
                Some(pool) => StreamingDecoder::with_pool(max_frame_len, pool),
                None => StreamingDecoder::with_max_len(max_frame_len),
            },
            tenant: None,
            write_queue: VecDeque::new(),
            write_offset: 0,
            queued_bytes: 0,
            in_flight: 0,
            route: 0,
            last_activity: Instant::now(),
            interest: Interest::READABLE,
        }
    }

    /// Unwritten response bytes still queued.
    fn pending_write_bytes(&self) -> usize {
        self.queued_bytes - self.write_offset
    }
}

/// Generation-checked connection slab. Slot indices are reused; the
/// generation in the token distinguishes the current occupant from a
/// late event for a closed predecessor.
struct ConnTable {
    slots: Vec<Option<(u32, Conn)>>,
    free: Vec<usize>,
    open: usize,
    next_gen: u32,
}

impl ConnTable {
    fn new() -> ConnTable {
        ConnTable {
            slots: Vec::new(),
            free: Vec::new(),
            open: 0,
            next_gen: 0,
        }
    }

    fn insert(&mut self, conn: Conn) -> (usize, u32) {
        let gen = self.next_gen;
        // Skip u32::MAX so a token can never collide with the reserved
        // LISTENER/WAKE/POISON tokens.
        self.next_gen = self.next_gen.wrapping_add(1);
        if self.next_gen == u32::MAX {
            self.next_gen = 0;
        }
        self.open += 1;
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Some((gen, conn));
                (idx, gen)
            }
            None => {
                self.slots.push(Some((gen, conn)));
                (self.slots.len() - 1, gen)
            }
        }
    }

    fn get_mut(&mut self, idx: usize, gen: u32) -> Option<&mut Conn> {
        match self.slots.get_mut(idx) {
            Some(Some((g, conn))) if *g == gen => Some(conn),
            _ => None,
        }
    }

    fn remove(&mut self, idx: usize, gen: u32) -> Option<Conn> {
        match self.slots.get_mut(idx) {
            Some(slot @ Some(_)) if slot.as_ref().is_some_and(|(g, _)| *g == gen) => {
                let (_, conn) = slot.take()?;
                self.free.push(idx);
                self.open -= 1;
                Some(conn)
            }
            _ => None,
        }
    }

    fn tokens(&self) -> Vec<(usize, u32)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| slot.as_ref().map(|(gen, _)| (idx, *gen)))
            .collect()
    }

    fn any_pending_writes(&self) -> bool {
        self.slots
            .iter()
            .flatten()
            .any(|(_, conn)| !conn.write_queue.is_empty())
    }
}

/// Reactor tunables, split from [`crate::daemon::ServerConfig`] so the
/// unit tests can construct them directly.
#[derive(Clone, Debug)]
pub(crate) struct ReactorOptions {
    pub(crate) max_frame_len: u32,
    pub(crate) idle_timeout: Duration,
    pub(crate) max_conns: usize,
    pub(crate) write_queue_limit: usize,
    /// `Some` ⇒ zero-copy mode: frame bodies are assembled into pooled
    /// buffers and job payloads are sliced views of them. `None` falls
    /// back to the owned-buffer path (fresh `Vec` per frame, payload
    /// copied per job) — the pre-pool behavior, kept as the benchmark
    /// baseline and for `--no-pool` operation.
    pub(crate) pool: Option<BufPool>,
}

/// The event loop. Generic over the poller so tests substitute a
/// scripted [`epoll::MockPoller`] for the kernel.
pub(crate) struct Reactor<P: Poller> {
    poller: P,
    listener: Option<TcpListener>,
    wake: Option<WakeReader>,
    completions: Arc<CompletionQueue>,
    conns: ConnTable,
    shared: Arc<Shared>,
    /// Dropped when shutdown begins so workers see the scheduler close
    /// once every producer is gone.
    job_tx: Option<JobSender<Job>>,
    /// Second-phase signal: workers have been joined, flush what remains
    /// and exit.
    drain_done: ShutdownSignal,
    opts: ReactorOptions,
    scratch: Vec<u8>,
    frames: Vec<PooledBuf>,
    completion_buf: Vec<Completion>,
    /// Deduped connections touched by the current completion batch —
    /// reused across drains so a steady-state drain allocates nothing.
    touched_buf: Vec<(usize, u32)>,
    accepting: bool,
    last_sweep: Instant,
    shutdown_entered: bool,
    drain_since: Option<Instant>,
    /// Set when accept hit fd exhaustion (EMFILE/ENFILE): the listener's
    /// read interest is parked until this instant so a full backlog does
    /// not spin the level-triggered poll hot while no fd can be accepted.
    accept_paused_until: Option<Instant>,
}

impl Reactor<RealPoller> {
    /// Build a kernel-backed reactor: epoll instance, wakeup pipe, and
    /// the listener registered. Returns the reactor plus the completion
    /// queue handle workers and [`crate::daemon::Daemon::shutdown`] use
    /// to unpark it.
    pub(crate) fn new_real(
        listener: TcpListener,
        shared: Arc<Shared>,
        job_tx: JobSender<Job>,
        drain_done: ShutdownSignal,
        opts: ReactorOptions,
    ) -> std::io::Result<(Reactor<RealPoller>, Arc<CompletionQueue>)> {
        let mut poller = RealPoller::new()?;
        let (waker, wake_rx) = wake_pipe()?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
        poller.register(wake_rx.fd(), WAKE_TOKEN, Interest::READABLE)?;
        let completions = Arc::new(CompletionQueue::new(waker));
        let reactor = Reactor::with_parts(
            poller,
            Some(listener),
            Some(wake_rx),
            completions.clone(),
            shared,
            job_tx,
            drain_done,
            opts,
        );
        Ok((reactor, completions))
    }
}

impl<P: Poller> Reactor<P> {
    #[allow(clippy::too_many_arguments)]
    fn with_parts(
        poller: P,
        listener: Option<TcpListener>,
        wake: Option<WakeReader>,
        completions: Arc<CompletionQueue>,
        shared: Arc<Shared>,
        job_tx: JobSender<Job>,
        drain_done: ShutdownSignal,
        opts: ReactorOptions,
    ) -> Reactor<P> {
        Reactor {
            poller,
            listener,
            wake,
            completions,
            conns: ConnTable::new(),
            shared,
            job_tx: Some(job_tx),
            drain_done,
            opts,
            scratch: vec![0; SCRATCH_LEN],
            frames: Vec::new(),
            completion_buf: Vec::new(),
            touched_buf: Vec::new(),
            accepting: true,
            last_sweep: Instant::now(),
            shutdown_entered: false,
            drain_since: None,
            accept_paused_until: None,
        }
    }

    /// Idle sweep cadence: a quarter of the deadline, bounded so short
    /// test timeouts sweep promptly and long production timeouts don't
    /// spin.
    fn sweep_period(&self) -> Duration {
        (self.opts.idle_timeout / 4).clamp(Duration::from_millis(5), Duration::from_secs(1))
    }

    /// Run until shutdown completes. Panics on unrecoverable reactor
    /// errors (poll failure, fatal accept error, poison) — the daemon
    /// wraps this thread in `catch_unwind` and turns a panic into a
    /// graceful drain plus a `threads_panicked` count.
    pub(crate) fn run(&mut self) {
        let mut events = Vec::new();
        while self.turn(&mut events) {}
        self.close_all(CloseReason::Shutdown);
    }

    /// One poll-dispatch-sweep cycle. Returns `false` when the final
    /// drain is complete and the loop should exit.
    pub(crate) fn turn(&mut self, events: &mut Vec<Event>) -> bool {
        self.maybe_resume_accepts();
        let timeout = self.sweep_period().min(Duration::from_millis(100));
        match self.poller.wait(events, Some(timeout)) {
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => panic!("reactor: poll failed: {e}"),
        }
        let mut wake_seen = false;
        for &ev in events.iter() {
            match ev.token {
                LISTENER_TOKEN => self.accept_ready(),
                WAKE_TOKEN => wake_seen = true,
                _ => self.conn_event(ev),
            }
        }
        if wake_seen {
            // One pipe read per poll batch, no matter how many worker
            // notifications piled up while we were busy — every
            // notification beyond the first rode along for free.
            let notifications = self.wake.as_ref().map_or(0, WakeReader::drain);
            self.shared.stats.record_reactor_wakeup();
            self.shared
                .stats
                .record_wakeups_coalesced(notifications.saturating_sub(1) as u64);
        }
        // Completions can arrive without a wake being observed yet (the
        // pipe write races the poll timeout), so drain every turn.
        self.drain_completions();
        if self.shared.shutdown.is_requested() {
            self.enter_shutdown();
        } else {
            self.sweep_idle();
        }
        if self.drain_done.is_requested() {
            // Workers are joined: every completion is already posted.
            self.drain_completions();
            let deadline_passed = match self.drain_since {
                None => {
                    self.drain_since = Some(Instant::now());
                    false
                }
                Some(since) => since.elapsed() >= DRAIN_GRACE,
            };
            if !self.conns.any_pending_writes() || deadline_passed {
                return false;
            }
        }
        true
    }

    /// Accept every pending connection (level-triggered: stop at
    /// `WouldBlock`). A fatal listener error panics — the daemon's
    /// catch_unwind wrapper converts that into a graceful drain with the
    /// panic counted, because a daemon that can never accept again must
    /// not linger as a silent connection-refuser.
    fn accept_ready(&mut self) {
        if !self.accepting {
            return;
        }
        let Some(listener) = &self.listener else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if self.conns.open >= self.opts.max_conns {
                        // At capacity: shed at accept. Dropping the socket
                        // sends the peer a clean close; unlike the old
                        // BUSY-on-accept there is no thread to protect,
                        // only the conn-table bound.
                        self.shared.stats.record_conn_rejected();
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Pipelined clients read several small responses per
                    // burst; Nagle would hold every response after the
                    // first until the peer's (delayed) ACK.
                    stream.set_nodelay(true).ok();
                    let fd = stream.as_raw_fd();
                    let (idx, gen) = self.conns.insert(Conn::new(
                        Box::new(stream),
                        self.opts.max_frame_len,
                        self.opts.pool.clone(),
                    ));
                    let token = make_token(idx, gen);
                    if self.poller.register(fd, token, Interest::READABLE).is_err() {
                        self.conns.remove(idx, gen);
                        continue;
                    }
                    self.shared.stats.record_conn_accepted();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::Interrupted | ErrorKind::ConnectionAborted
                    ) =>
                {
                    continue
                }
                // EMFILE/ENFILE: fd exhaustion is load, not a broken
                // listener. Count the shed connection and park the
                // listener's read interest briefly — the pending sockets
                // stay in the backlog, and without the park a
                // level-triggered poll would spin hot on a listener that
                // cannot be accepted from.
                Err(e) if matches!(e.raw_os_error(), Some(23 | 24)) => {
                    self.shared.stats.record_conn_rejected();
                    let fd = listener.as_raw_fd();
                    let parked = Interest {
                        readable: false,
                        writable: false,
                    };
                    if self.poller.reregister(fd, LISTENER_TOKEN, parked).is_ok() {
                        self.accept_paused_until =
                            Some(Instant::now() + Duration::from_millis(100));
                    }
                    break;
                }
                Err(e) => {
                    self.shared.shutdown.request();
                    panic!("reactor: fatal accept error: {e}");
                }
            }
        }
    }

    /// Re-arm a listener parked by fd exhaustion once the pause expires
    /// (fds may have freed in the meantime; if not, the next accept just
    /// parks it again).
    fn maybe_resume_accepts(&mut self) {
        let due = matches!(self.accept_paused_until, Some(until) if Instant::now() >= until);
        if !due {
            return;
        }
        self.accept_paused_until = None;
        if !self.accepting {
            return;
        }
        if let Some(listener) = &self.listener {
            let fd = listener.as_raw_fd();
            let _ = self
                .poller
                .reregister(fd, LISTENER_TOKEN, Interest::READABLE);
        }
    }

    /// Dispatch one readiness event for a connection token. Stale tokens
    /// (the slot was reused or the conn closed) are ignored — epoll may
    /// deliver events queued before a deregister.
    fn conn_event(&mut self, ev: Event) {
        let (idx, gen) = split_token(ev.token);
        if self.conns.get_mut(idx, gen).is_none() {
            return;
        }
        if ev.error {
            self.close_conn(idx, gen, CloseReason::IoError);
            return;
        }
        // Writable first: draining the queue may free the bound before
        // new responses are enqueued by the readable half.
        if ev.writable {
            self.on_writable(idx, gen);
        }
        if ev.readable {
            self.on_readable(idx, gen);
        }
    }

    /// Read until `WouldBlock`, feeding the streaming decoder and
    /// handling every completed frame in arrival order.
    fn on_readable(&mut self, idx: usize, gen: u32) {
        let token = make_token(idx, gen);
        let shutdown = self.shared.shutdown.is_requested();
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut frames = std::mem::take(&mut self.frames);
        let mut close: Option<CloseReason> = None;
        let mut progressed = false;
        'read: while let Some(conn) = self.conns.get_mut(idx, gen) {
            if shutdown || conn.state == ConnState::Draining {
                break;
            }
            let n = match conn.io.read(&mut scratch) {
                Ok(0) => {
                    close = Some(CloseReason::PeerClosed);
                    break;
                }
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    close = Some(CloseReason::IoError);
                    break;
                }
            };
            progressed = true;
            frames.clear();
            if let Err(too_large) = conn.decoder.feed_pooled(&scratch[..n], &mut frames) {
                // Forged or oversized length prefix: answer ERR and
                // drain. Frames completed earlier in this chunk still
                // get handled below? No — a poisoned decoder taints the
                // whole chunk; drop them with the connection.
                self.shared.stats.record_err();
                conn.state = ConnState::Draining;
                let err = Self::enqueue_response(
                    &mut self.poller,
                    &self.shared.stats,
                    conn,
                    token,
                    STATUS_ERR,
                    HELLO_SEQ,
                    too_large.to_string().into_bytes(),
                    self.opts.write_queue_limit,
                    false,
                );
                if err.is_err() {
                    close = Some(CloseReason::IoError);
                } else if conn.write_queue.is_empty() {
                    close = Some(CloseReason::Drained);
                }
                break;
            }
            for frame in frames.drain(..) {
                let Some(conn) = self.conns.get_mut(idx, gen) else {
                    break 'read;
                };
                // Only complete frames count as activity: slow-loris
                // drips never reset the idle deadline.
                conn.last_activity = Instant::now();
                match Self::handle_frame(
                    &mut self.poller,
                    conn,
                    token,
                    frame,
                    &self.shared,
                    self.job_tx.as_ref(),
                    &self.completions,
                    &self.opts,
                ) {
                    Ok(()) => {}
                    Err(reason) => {
                        close = Some(reason);
                        break 'read;
                    }
                }
                if conn.state == ConnState::Draining {
                    break;
                }
            }
        }
        self.scratch = scratch;
        self.frames = frames;
        if !progressed && close.is_none() {
            // The kernel woke us for a socket with nothing to read — by
            // contract that must be harmless.
            self.shared.stats.record_reactor_spurious_poll();
        }
        if close.is_none() {
            if let Some(conn) = self.conns.get_mut(idx, gen) {
                if conn.state == ConnState::Draining && conn.write_queue.is_empty() {
                    close = Some(CloseReason::Drained);
                }
            }
        }
        if let Some(reason) = close {
            self.close_conn(idx, gen, reason);
        }
    }

    /// Drain the write queue after an `EPOLLOUT`, disarming write
    /// interest once empty and closing draining connections that have
    /// flushed their final bytes.
    fn on_writable(&mut self, idx: usize, gen: u32) {
        let token = make_token(idx, gen);
        let shutdown = self.shared.shutdown.is_requested();
        let mut close: Option<CloseReason> = None;
        if let Some(conn) = self.conns.get_mut(idx, gen) {
            if conn.write_queue.is_empty() {
                self.shared.stats.record_reactor_spurious_poll();
            } else if let Err(reason) = Self::flush_conn(conn, &self.shared.stats) {
                close = Some(reason);
            }
            if close.is_none() {
                let reads = !shutdown && conn.state != ConnState::Draining;
                Self::sync_interest(&mut self.poller, &self.shared.stats, conn, token, reads);
                if conn.state == ConnState::Draining
                    && conn.write_queue.is_empty()
                    && conn.in_flight == 0
                {
                    close = Some(CloseReason::Drained);
                }
            }
        }
        if let Some(reason) = close {
            self.close_conn(idx, gen, reason);
        }
    }

    /// Interpret one complete frame according to the connection's state.
    ///
    /// Takes the frame **by value**: in pooled mode the job payload is a
    /// sliced view of the frame's pool buffer (no copy), and frames the
    /// protocol judged malformed are poisoned so their buffer is never
    /// recycled into the pool.
    #[allow(clippy::too_many_arguments)]
    fn handle_frame(
        poller: &mut P,
        conn: &mut Conn,
        token: u64,
        frame: PooledBuf,
        shared: &Shared,
        job_tx: Option<&JobSender<Job>>,
        completions: &Arc<CompletionQueue>,
        opts: &ReactorOptions,
    ) -> Result<(), CloseReason> {
        let stats = &shared.stats;
        match conn.state {
            ConnState::AwaitingHello => match Hello::decode(&frame) {
                Some(hello) => {
                    let existed = shared.registry.contains(&hello.tenant, hello.scheme);
                    match shared.registry.get_or_create(&hello.tenant, hello.scheme) {
                        Ok(handle) => {
                            if existed {
                                stats.record_reconnect();
                            }
                            conn.route = route_hash(&hello.tenant, hello.scheme);
                            conn.tenant = Some(handle);
                            conn.state = ConnState::Established;
                            Self::enqueue_response(
                                poller,
                                stats,
                                conn,
                                token,
                                STATUS_OK,
                                HELLO_SEQ,
                                Vec::new(),
                                opts.write_queue_limit,
                                true,
                            )
                        }
                        Err(e) => {
                            stats.record_err();
                            conn.state = ConnState::Draining;
                            Self::enqueue_response(
                                poller,
                                stats,
                                conn,
                                token,
                                STATUS_ERR,
                                HELLO_SEQ,
                                format!("tenant open failed: {e}").into_bytes(),
                                opts.write_queue_limit,
                                false,
                            )
                        }
                    }
                }
                None => {
                    stats.record_err();
                    conn.state = ConnState::Draining;
                    frame.poison();
                    Self::enqueue_response(
                        poller,
                        stats,
                        conn,
                        token,
                        STATUS_ERR,
                        HELLO_SEQ,
                        b"malformed hello".to_vec(),
                        opts.write_queue_limit,
                        false,
                    )
                }
            },
            ConnState::Established => {
                let Some((kind, seq, _)) = proto::decode_request(&frame) else {
                    stats.record_err();
                    conn.state = ConnState::Draining;
                    frame.poison();
                    return Self::enqueue_response(
                        poller,
                        stats,
                        conn,
                        token,
                        STATUS_ERR,
                        HELLO_SEQ,
                        b"malformed request".to_vec(),
                        opts.write_queue_limit,
                        false,
                    );
                };
                match kind {
                    KIND_DATA | KIND_UPDATE_MANY | KIND_SEARCH_MANY => {
                        let tenant = conn
                            .tenant
                            .clone()
                            .expect("established connection has a tenant");
                        // Pooled mode hands the worker a view into the
                        // frame's pool buffer past the 5-byte envelope —
                        // the request payload is never copied between the
                        // socket read and the scheme handler. The
                        // owned-buffer fallback keeps the old copy and
                        // counts it.
                        let payload = if opts.pool.is_some() {
                            let mut view = frame;
                            view.advance(proto::REQUEST_HEADER_LEN);
                            view
                        } else {
                            let body = frame[proto::REQUEST_HEADER_LEN..].to_vec();
                            stats.record_bytes_copied(body.len() as u64);
                            PooledBuf::from_vec(body)
                        };
                        let job = Job {
                            tenant,
                            kind,
                            seq,
                            payload,
                            responder: Responder::Reactor {
                                token,
                                completions: completions.clone(),
                                pool: opts.pool.clone(),
                            },
                            accepted: Instant::now(),
                        };
                        // `None` (shutdown already began; workers are
                        // draining) is treated like a full queue.
                        let outcome = match job_tx {
                            Some(tx) => tx.try_send(conn.route, job).map_err(|_job| ()),
                            None => Err(()),
                        };
                        match outcome {
                            Ok(()) => {
                                conn.in_flight += 1;
                                Ok(())
                            }
                            Err(()) => {
                                // Explicit job-queue backpressure (every
                                // run queue full, home and spill alike):
                                // reject now, the client backs off and
                                // retries.
                                stats.record_busy();
                                Self::enqueue_response(
                                    poller,
                                    stats,
                                    conn,
                                    token,
                                    STATUS_BUSY,
                                    seq,
                                    Vec::new(),
                                    opts.write_queue_limit,
                                    true,
                                )
                            }
                        }
                    }
                    KIND_ADMIN => match frame.get(proto::REQUEST_HEADER_LEN).copied() {
                        Some(ADMIN_STATS) => {
                            let snap = shared.full_snapshot().encode();
                            Self::enqueue_response(
                                poller,
                                stats,
                                conn,
                                token,
                                STATUS_OK,
                                seq,
                                snap,
                                opts.write_queue_limit,
                                true,
                            )
                        }
                        Some(ADMIN_SHUTDOWN) => {
                            let res = Self::enqueue_response(
                                poller,
                                stats,
                                conn,
                                token,
                                STATUS_OK,
                                seq,
                                Vec::new(),
                                opts.write_queue_limit,
                                false,
                            );
                            shared.shutdown.request();
                            res
                        }
                        _ => {
                            stats.record_err();
                            conn.state = ConnState::Draining;
                            frame.poison();
                            Self::enqueue_response(
                                poller,
                                stats,
                                conn,
                                token,
                                STATUS_ERR,
                                seq,
                                b"unknown admin command".to_vec(),
                                opts.write_queue_limit,
                                false,
                            )
                        }
                    },
                    _ => {
                        stats.record_err();
                        conn.state = ConnState::Draining;
                        frame.poison();
                        Self::enqueue_response(
                            poller,
                            stats,
                            conn,
                            token,
                            STATUS_ERR,
                            seq,
                            b"unknown request kind".to_vec(),
                            opts.write_queue_limit,
                            false,
                        )
                    }
                }
            }
            // Already draining: frames decoded after the fatal one are
            // ignored.
            ConnState::Draining => Ok(()),
        }
    }

    /// Enqueue one response envelope around an owned payload.
    #[allow(clippy::too_many_arguments)]
    fn enqueue_response(
        poller: &mut P,
        stats: &ServingStats,
        conn: &mut Conn,
        token: u64,
        status: u8,
        seq: u32,
        payload: Vec<u8>,
        limit: usize,
        reads: bool,
    ) -> Result<(), CloseReason> {
        let msg = OutMsg::response(status, seq, Segment::Owned(payload));
        Self::enqueue_msg(poller, stats, conn, token, msg, limit, reads)
    }

    /// Queue an outbound message, flush what the kernel will take now,
    /// and enforce the write-queue bound. `reads` is whether the
    /// connection should remain read-subscribed (false while
    /// draining/shutdown).
    fn enqueue_msg(
        poller: &mut P,
        stats: &ServingStats,
        conn: &mut Conn,
        token: u64,
        msg: OutMsg,
        limit: usize,
        reads: bool,
    ) -> Result<(), CloseReason> {
        conn.queued_bytes += msg.len();
        conn.write_queue.push_back(msg);
        Self::flush_conn(conn, stats)?;
        if conn.pending_write_bytes() > limit {
            // The peer is not draining its responses: cut it loose
            // rather than buffer without bound. (This replaces the old
            // per-connection thread blocking in write_all.)
            return Err(CloseReason::SlowReader);
        }
        Self::sync_interest(poller, stats, conn, token, reads);
        Ok(())
    }

    /// Write queued messages until the kernel pushes back, gathering up
    /// to [`WRITEV_BATCH`] segments per `writev` — every response queued
    /// behind a slow kernel buffer rides out in the same syscall once it
    /// opens, and each message's head and payload go out as separate
    /// iovecs (the payload is never copied into a contiguous frame).
    fn flush_conn(conn: &mut Conn, stats: &ServingStats) -> Result<(), CloseReason> {
        loop {
            // Normalize the cursor: a gather write may have completed
            // several messages at once, leaving `write_offset` past the
            // front. Pop every fully-written message.
            while let Some(front) = conn.write_queue.front() {
                let len = front.len();
                if conn.write_offset < len {
                    break;
                }
                conn.write_offset -= len;
                conn.queued_bytes -= len;
                conn.write_queue.pop_front();
            }
            if conn.write_queue.is_empty() {
                return Ok(());
            }
            // Gather: the front message from its cursor, later messages
            // whole, skipping empty parts so every iovec carries bytes.
            let mut iovs = [IoSlice::new(&[]); WRITEV_BATCH];
            let mut cnt = 0;
            let mut skip = conn.write_offset;
            'gather: for msg in &conn.write_queue {
                for part in [msg.head(), msg.payload.as_slice()] {
                    if skip >= part.len() {
                        skip -= part.len();
                        continue;
                    }
                    if cnt == WRITEV_BATCH {
                        break 'gather;
                    }
                    iovs[cnt] = IoSlice::new(&part[skip..]);
                    skip = 0;
                    cnt += 1;
                }
            }
            let n = match conn.io.writev(&iovs[..cnt]) {
                Ok(0) => return Err(CloseReason::IoError),
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(CloseReason::IoError),
            };
            conn.write_offset += n;
            // Credit this call with every message whose final byte it
            // wrote — `writev_frames / writev_calls` is then the true
            // mean syscall batch.
            let mut flushed = 0u64;
            let mut consumed = 0usize;
            for msg in &conn.write_queue {
                consumed += msg.len();
                if consumed > conn.write_offset {
                    break;
                }
                flushed += 1;
            }
            stats.record_writev(flushed);
        }
    }

    /// Reconcile poller interest with the connection's needs: readable
    /// while serving, writable exactly while the write queue is
    /// non-empty.
    fn sync_interest(
        poller: &mut P,
        stats: &ServingStats,
        conn: &mut Conn,
        token: u64,
        reads: bool,
    ) {
        let want = Interest {
            readable: reads,
            writable: !conn.write_queue.is_empty(),
        };
        if want != conn.interest {
            if want.writable && !conn.interest.writable {
                stats.record_write_deferred();
            }
            let _ = poller.reregister(conn.io.fd(), token, want);
            conn.interest = want;
        }
    }

    /// Deliver worker responses posted since the last turn, in two
    /// phases: queue every completion onto its connection first, then
    /// flush each touched connection once — responses that arrived in
    /// the same drain share gather-write syscalls instead of paying one
    /// `writev` each.
    fn drain_completions(&mut self) {
        let mut buf = std::mem::take(&mut self.completion_buf);
        self.completions.drain_into(&mut buf);
        let mut touched = std::mem::take(&mut self.touched_buf);
        touched.clear();
        for completion in buf.drain(..) {
            if completion.token == POISON_TOKEN {
                panic!("reactor: poisoned by test hook");
            }
            let (idx, gen) = split_token(completion.token);
            // Stale token: the connection closed while its job was in
            // flight; the response is dropped on the floor.
            if let Some(conn) = self.conns.get_mut(idx, gen) {
                conn.in_flight = conn.in_flight.saturating_sub(1);
                conn.queued_bytes += completion.msg.len();
                conn.write_queue.push_back(completion.msg);
                if !touched.contains(&(idx, gen)) {
                    touched.push((idx, gen));
                }
            }
        }
        self.completion_buf = buf;
        let shutdown = self.shared.shutdown.is_requested();
        for (idx, gen) in touched.drain(..) {
            let token = make_token(idx, gen);
            let mut close: Option<CloseReason> = None;
            if let Some(conn) = self.conns.get_mut(idx, gen) {
                let reads = !shutdown && conn.state != ConnState::Draining;
                if let Err(reason) = Self::flush_conn(conn, &self.shared.stats) {
                    close = Some(reason);
                } else if conn.pending_write_bytes() > self.opts.write_queue_limit {
                    // The peer is not draining its responses: cut it
                    // loose rather than buffer without bound.
                    close = Some(CloseReason::SlowReader);
                } else if conn.state == ConnState::Draining
                    && conn.write_queue.is_empty()
                    && conn.in_flight == 0
                {
                    close = Some(CloseReason::Drained);
                } else {
                    Self::sync_interest(&mut self.poller, &self.shared.stats, conn, token, reads);
                }
            }
            if let Some(reason) = close {
                self.close_conn(idx, gen, reason);
            }
        }
        self.touched_buf = touched;
    }

    /// Reap connections quiescent past the idle deadline. A connection
    /// with a job in flight or bytes still to write is active no matter
    /// how old its last frame is.
    fn sweep_idle(&mut self) {
        if self.last_sweep.elapsed() < self.sweep_period() {
            return;
        }
        self.last_sweep = Instant::now();
        let idle_timeout = self.opts.idle_timeout;
        let stale: Vec<(usize, u32)> = self
            .conns
            .slots
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| {
                let (gen, conn) = slot.as_ref()?;
                let quiescent = conn.in_flight == 0 && conn.write_queue.is_empty();
                (quiescent && conn.last_activity.elapsed() >= idle_timeout).then_some((idx, *gen))
            })
            .collect();
        for (idx, gen) in stale {
            self.close_conn(idx, gen, CloseReason::Idle);
        }
    }

    /// First shutdown phase: stop accepting, release the listener, stop
    /// reading, and drop the job sender so workers can drain out.
    fn enter_shutdown(&mut self) {
        if self.shutdown_entered {
            return;
        }
        self.shutdown_entered = true;
        self.accepting = false;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        self.job_tx = None;
        for (idx, gen) in self.conns.tokens() {
            let token = make_token(idx, gen);
            if let Some(conn) = self.conns.get_mut(idx, gen) {
                Self::sync_interest(&mut self.poller, &self.shared.stats, conn, token, false);
            }
        }
    }

    fn close_conn(&mut self, idx: usize, gen: u32, reason: CloseReason) {
        if let Some(conn) = self.conns.remove(idx, gen) {
            let _ = self.poller.deregister(conn.io.fd());
            let stats = &self.shared.stats;
            match reason {
                CloseReason::Idle => stats.record_idle_reaped(),
                CloseReason::SlowReader => stats.record_slow_reader_disconnect(),
                _ => {}
            }
            stats.record_conn_closed();
        }
    }

    fn close_all(&mut self, reason: CloseReason) {
        for (idx, gen) in self.conns.tokens() {
            self.close_conn(idx, gen, reason);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::DEFAULT_WRITE_QUEUE_LIMIT;
    use crate::proto::SchemeId;
    use crate::sched::{SchedCounters, Scheduler};
    use crate::scrub::ScrubCounters;
    use crate::tenant::{TenantParams, TenantRegistry};
    use epoll::MockPoller;
    use sse_net::frame::encode_frame;
    use std::io;

    /// Scripted connection IO: reads come from a queue (`None` ⇒
    /// `WouldBlock`, empty vec ⇒ EOF), writes land in a shared buffer up
    /// to a shared "kernel send buffer" capacity so tests can force
    /// partial writes and then open the valve like an `EPOLLOUT`.
    struct ScriptIo {
        fd: RawFd,
        reads: VecDeque<Option<Vec<u8>>>,
        written: Arc<Mutex<Vec<u8>>>,
        write_cap: Arc<Mutex<usize>>,
    }

    impl ScriptIo {
        #[allow(clippy::type_complexity)]
        fn new(fd: RawFd) -> (ScriptIo, Arc<Mutex<Vec<u8>>>, Arc<Mutex<usize>>) {
            let written = Arc::new(Mutex::new(Vec::new()));
            let cap = Arc::new(Mutex::new(usize::MAX));
            let io = ScriptIo {
                fd,
                reads: VecDeque::new(),
                written: written.clone(),
                write_cap: cap.clone(),
            };
            (io, written, cap)
        }

        fn push_read(&mut self, bytes: &[u8]) {
            self.reads.push_back(Some(bytes.to_vec()));
        }

        fn push_eof(&mut self) {
            self.reads.push_back(Some(Vec::new()));
        }
    }

    impl Read for ScriptIo {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.reads.pop_front() {
                Some(Some(bytes)) => {
                    assert!(bytes.len() <= buf.len(), "script chunk exceeds scratch");
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(None) | None => Err(io::Error::from(ErrorKind::WouldBlock)),
            }
        }
    }

    impl Write for ScriptIo {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let mut cap = self.write_cap.lock().unwrap();
            let take = buf.len().min(*cap);
            if take == 0 {
                return Err(io::Error::from(ErrorKind::WouldBlock));
            }
            *cap -= take;
            self.written.lock().unwrap().extend_from_slice(&buf[..take]);
            Ok(take)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl ConnIo for ScriptIo {
        fn fd(&self) -> RawFd {
            self.fd
        }

        /// Honors the shared write-capacity valve **across** segments, so
        /// a partial gather write stops mid-message exactly like a full
        /// kernel send buffer would.
        fn writev(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            let mut cap = self.write_cap.lock().unwrap();
            let mut sink = self.written.lock().unwrap();
            let mut total = 0;
            for buf in bufs {
                let take = buf.len().min(*cap);
                sink.extend_from_slice(&buf[..take]);
                *cap -= take;
                total += take;
                if take < buf.len() {
                    break;
                }
            }
            if total == 0 && bufs.iter().any(|b| !b.is_empty()) {
                return Err(io::Error::from(ErrorKind::WouldBlock));
            }
            Ok(total)
        }
    }

    fn test_shared(idle_timeout: Duration) -> Arc<Shared> {
        Arc::new(Shared {
            shutdown: ShutdownSignal::new(),
            stats: Arc::new(ServingStats::new()),
            registry: Arc::new(TenantRegistry::new(TenantParams::default())),
            fault_stats: None,
            scrub: Arc::new(ScrubCounters::new()),
            max_frame_len: sse_net::frame::MAX_FRAME_LEN,
            idle_timeout,
            pool: BufPool::new(),
            sched: Arc::new(SchedCounters::default()),
        })
    }

    struct Rig {
        reactor: Reactor<MockPoller>,
        completions: Arc<CompletionQueue>,
        /// The consumer side of the scheduler the reactor submits into —
        /// tests pop it like the worker pool would (single queue, so
        /// `try_next(0)` observes submit order).
        sched: Arc<Scheduler<Job>>,
        shared: Arc<Shared>,
        events: Vec<Event>,
    }

    fn rig_with(idle_timeout: Duration, queue_depth: usize, write_queue_limit: usize) -> Rig {
        let shared = test_shared(idle_timeout);
        let (sched, job_tx) = Scheduler::<Job>::new(1, queue_depth, true);
        let (waker, wake_rx) = wake_pipe().expect("wake pipe");
        let completions = Arc::new(CompletionQueue::new(waker));
        let opts = ReactorOptions {
            max_frame_len: sse_net::frame::MAX_FRAME_LEN,
            idle_timeout,
            max_conns: 1024,
            write_queue_limit,
            pool: Some(BufPool::new()),
        };
        let reactor = Reactor::with_parts(
            MockPoller::new(),
            None,
            Some(wake_rx),
            completions.clone(),
            shared.clone(),
            job_tx,
            ShutdownSignal::new(),
            opts,
        );
        Rig {
            reactor,
            completions,
            sched,
            shared,
            events: Vec::new(),
        }
    }

    fn rig() -> Rig {
        // Generous idle timeout: nothing is reaped unless a test asks.
        rig_with(Duration::from_secs(60), 8, DEFAULT_WRITE_QUEUE_LIMIT)
    }

    impl Rig {
        fn add_conn(&mut self, io: ScriptIo) -> (usize, u32, u64) {
            let fd = io.fd();
            let (idx, gen) = self.reactor.conns.insert(Conn::new(
                Box::new(io),
                self.reactor.opts.max_frame_len,
                self.reactor.opts.pool.clone(),
            ));
            let token = make_token(idx, gen);
            self.reactor
                .poller
                .register(fd, token, Interest::READABLE)
                .unwrap();
            self.shared.stats.record_conn_accepted();
            (idx, gen, token)
        }

        /// Script one readiness batch and run one turn.
        fn turn_with(&mut self, batch: Vec<Event>) -> bool {
            self.reactor.poller.push_batch(batch);
            self.reactor.turn(&mut self.events)
        }

        fn conn(&mut self, idx: usize, gen: u32) -> &mut Conn {
            self.reactor.conns.get_mut(idx, gen).expect("conn live")
        }

        fn is_open(&mut self, idx: usize, gen: u32) -> bool {
            self.reactor.conns.get_mut(idx, gen).is_some()
        }
    }

    fn hello_frame() -> Vec<u8> {
        encode_frame(
            &Hello {
                tenant: "t1".into(),
                scheme: SchemeId::Scheme1,
            }
            .encode(),
        )
    }

    fn ok_response(seq: u32, payload: &[u8]) -> Vec<u8> {
        encode_frame(&proto::encode_response(STATUS_OK, seq, payload))
    }

    /// Post an OK completion the way a worker does: scatter-gather form,
    /// wire-identical to `ok_response(seq, payload)`.
    fn post_ok(completions: &CompletionQueue, token: u64, seq: u32, payload: &[u8]) {
        completions.post(
            token,
            OutMsg::response(STATUS_OK, seq, Segment::Owned(payload.to_vec())),
        );
    }

    #[test]
    fn hello_then_data_round_trips_through_worker_completion() {
        let mut rig = rig();
        let (mut io, written, _cap) = ScriptIo::new(7);
        io.push_read(&hello_frame());
        let (idx, gen, token) = rig.add_conn(io);

        // Readable: hello decodes, tenant opens, OK is written straight
        // through (model: exactly the framed OK response bytes).
        rig.turn_with(vec![Event::readable(token)]);
        assert_eq!(*written.lock().unwrap(), ok_response(HELLO_SEQ, &[]));
        assert_eq!(rig.conn(idx, gen).state, ConnState::Established);

        // Readable again: a DATA request becomes exactly one job with
        // the envelope fields preserved.
        let req = encode_frame(&proto::encode_request(KIND_DATA, 9, b"query-bytes"));
        // Reach into the conn to append scripted input.
        // (ScriptIo moved into the conn; feed through a fresh event by
        // swapping bytes into the decoder is not possible — instead keep
        // a second scripted chunk pattern: new conns get all chunks up
        // front in other tests; here we exercise the two-step path.)
        // Simplest faithful route: close over a new conn.
        drop(req);
        let (mut io2, written2, _cap2) = ScriptIo::new(8);
        io2.push_read(&hello_frame());
        io2.push_read(&encode_frame(&proto::encode_request(
            KIND_DATA,
            9,
            b"query-bytes",
        )));
        let (idx2, gen2, token2) = rig.add_conn(io2);
        rig.turn_with(vec![Event::readable(token2)]);
        let job = rig.sched.try_next(0).expect("job queued");
        assert_eq!(job.kind, KIND_DATA);
        assert_eq!(job.seq, 9);
        assert_eq!(&job.payload[..], b"query-bytes");
        assert_eq!(rig.conn(idx2, gen2).in_flight, 1);

        // Worker completes: the framed response is delivered on the next
        // turn and in_flight returns to zero (the conn is reapable
        // again).
        let response = ok_response(9, b"result");
        post_ok(&rig.completions, token2, 9, b"result");
        rig.turn_with(vec![]);
        let got = written2.lock().unwrap().clone();
        assert_eq!(got, [ok_response(HELLO_SEQ, &[]), response].concat());
        assert_eq!(rig.conn(idx2, gen2).in_flight, 0);
        assert!(rig.is_open(idx, gen));
    }

    #[test]
    fn spurious_readable_wakeup_is_harmless_and_counted() {
        let mut rig = rig();
        let (io, written, _cap) = ScriptIo::new(7);
        // No scripted reads: the socket immediately WouldBlocks.
        let (idx, gen, token) = rig.add_conn(io);
        rig.turn_with(vec![Event::readable(token)]);
        assert!(rig.is_open(idx, gen));
        assert!(written.lock().unwrap().is_empty());
        assert_eq!(rig.shared.stats.snapshot().reactor_spurious_polls, 1);
    }

    #[test]
    fn epollout_before_epollin_is_a_noop() {
        let mut rig = rig();
        let (mut io, written, _cap) = ScriptIo::new(7);
        io.push_read(&hello_frame());
        let (idx, gen, token) = rig.add_conn(io);
        // Writable readiness arrives before any readable readiness (the
        // kernel may report them in any order): with an empty write
        // queue it must be a counted no-op, then the hello proceeds.
        rig.turn_with(vec![Event::writable(token)]);
        assert_eq!(rig.conn(idx, gen).state, ConnState::AwaitingHello);
        assert_eq!(rig.shared.stats.snapshot().reactor_spurious_polls, 1);
        rig.turn_with(vec![Event::readable(token)]);
        assert_eq!(rig.conn(idx, gen).state, ConnState::Established);
        assert_eq!(*written.lock().unwrap(), ok_response(HELLO_SEQ, &[]));
    }

    #[test]
    fn readiness_for_a_closed_fd_is_ignored() {
        let mut rig = rig();
        let (mut io, _written, _cap) = ScriptIo::new(7);
        io.push_eof();
        let (idx, gen, token) = rig.add_conn(io);
        rig.turn_with(vec![Event::readable(token)]);
        assert!(!rig.is_open(idx, gen), "EOF closes the connection");
        // The kernel may still deliver queued events for the dead token;
        // and the slot may be reused by a new connection with a new
        // generation. Neither the stale readable nor a stale completion
        // may touch the new occupant.
        let (io2, written2, _cap2) = ScriptIo::new(8);
        let (idx2, gen2, _token2) = rig.add_conn(io2);
        assert_eq!(idx2, idx, "slot is reused");
        assert_ne!(gen2, gen, "generation advanced");
        post_ok(&rig.completions, token, 3, b"stale");
        rig.turn_with(vec![Event::readable(token), Event::writable(token)]);
        assert!(rig.is_open(idx2, gen2));
        assert!(written2.lock().unwrap().is_empty(), "stale frame dropped");
    }

    #[test]
    fn error_event_closes_the_connection() {
        let mut rig = rig();
        let (mut io, _written, _cap) = ScriptIo::new(7);
        io.push_read(&hello_frame());
        let (idx, gen, token) = rig.add_conn(io);
        rig.turn_with(vec![Event::error(token)]);
        assert!(!rig.is_open(idx, gen));
        let snap = rig.shared.stats.snapshot();
        assert_eq!(snap.conns_open, 0);
    }

    #[test]
    fn partial_write_arms_epollout_then_drains_and_disarms() {
        let mut rig = rig();
        let (mut io, written, cap) = ScriptIo::new(7);
        io.push_read(&hello_frame());
        // Kernel accepts only 3 bytes of the hello response.
        *cap.lock().unwrap() = 3;
        let (idx, gen, token) = rig.add_conn(io);
        rig.turn_with(vec![Event::readable(token)]);
        let expected = ok_response(HELLO_SEQ, &[]);
        assert_eq!(*written.lock().unwrap(), expected[..3]);
        assert_eq!(
            rig.reactor.poller.interest_of(7),
            Some(Interest::READ_WRITE),
            "unwritten bytes arm EPOLLOUT"
        );
        assert_eq!(rig.shared.stats.snapshot().writes_deferred, 1);
        // The valve opens (EPOLLOUT): the tail flushes and interest
        // returns to read-only.
        *cap.lock().unwrap() = usize::MAX;
        rig.turn_with(vec![Event::writable(token)]);
        assert_eq!(*written.lock().unwrap(), expected);
        assert_eq!(rig.reactor.poller.interest_of(7), Some(Interest::READABLE));
        assert!(rig.is_open(idx, gen));
    }

    #[test]
    fn never_draining_reader_hits_write_queue_bound_and_is_disconnected() {
        // Tiny bound so two queued responses overflow it.
        let mut rig = rig_with(Duration::from_secs(60), 8, 16);
        let (mut io, _written, cap) = ScriptIo::new(7);
        io.push_read(&hello_frame());
        *cap.lock().unwrap() = 0; // peer never drains anything
        let (idx, gen, token) = rig.add_conn(io);
        // Hello response (11 bytes framed) queues under the 16-byte
        // bound; the connection survives but is deferred.
        rig.turn_with(vec![Event::readable(token)]);
        assert!(rig.is_open(idx, gen));
        // A worker completion pushes the queue past the bound: the slow
        // reader is disconnected, memory stays bounded.
        post_ok(&rig.completions, token, 1, b"big-response");
        rig.turn_with(vec![]);
        assert!(!rig.is_open(idx, gen));
        let snap = rig.shared.stats.snapshot();
        assert_eq!(snap.slow_reader_disconnects, 1);
        assert_eq!(snap.conns_open, 0);
    }

    #[test]
    fn idle_reaper_skips_connections_with_work_in_flight() {
        let idle = Duration::from_millis(50);
        let mut rig = rig_with(idle, 8, DEFAULT_WRITE_QUEUE_LIMIT);
        let (mut io_a, _wa, _ca) = ScriptIo::new(7);
        io_a.push_read(&hello_frame());
        io_a.push_read(&encode_frame(&proto::encode_request(KIND_DATA, 1, b"q")));
        let (idx_a, gen_a, token_a) = rig.add_conn(io_a);
        let (mut io_b, _wb, _cb) = ScriptIo::new(8);
        io_b.push_read(&hello_frame());
        let (idx_b, gen_b, token_b) = rig.add_conn(io_b);
        rig.turn_with(vec![Event::readable(token_a), Event::readable(token_b)]);
        assert_eq!(rig.conn(idx_a, gen_a).in_flight, 1);

        // Age both conns past the deadline and force a sweep.
        let past = Instant::now() - idle * 2;
        rig.conn(idx_a, gen_a).last_activity = past;
        rig.conn(idx_b, gen_b).last_activity = past;
        rig.reactor.last_sweep = past;
        rig.turn_with(vec![]);
        assert!(
            rig.is_open(idx_a, gen_a),
            "in-flight connection must not be reaped"
        );
        assert!(!rig.is_open(idx_b, gen_b), "quiescent connection reaped");
        assert_eq!(rig.shared.stats.snapshot().conns_idle_reaped, 1);

        // The completion lands, the conn quiesces — now it's reapable.
        post_ok(&rig.completions, token_a, 1, b"r");
        rig.turn_with(vec![]);
        rig.conn(idx_a, gen_a).last_activity = Instant::now() - idle * 2;
        rig.reactor.last_sweep = past;
        rig.turn_with(vec![]);
        assert!(!rig.is_open(idx_a, gen_a));
        assert_eq!(rig.shared.stats.snapshot().conns_idle_reaped, 2);
    }

    #[test]
    fn slow_loris_header_drips_do_not_reset_the_idle_clock() {
        let idle = Duration::from_millis(50);
        let mut rig = rig_with(idle, 8, DEFAULT_WRITE_QUEUE_LIMIT);
        let frame = hello_frame();
        let (mut io, _written, _cap) = ScriptIo::new(7);
        // One byte of the length prefix per readiness event — never a
        // complete frame.
        io.push_read(&frame[..1]);
        io.push_read(&frame[1..2]);
        io.push_read(&frame[2..3]);
        let (idx, gen, token) = rig.add_conn(io);
        let past = Instant::now() - idle * 2;
        rig.conn(idx, gen).last_activity = past;
        // Drip a byte: last_activity must NOT advance (no complete
        // frame), so the next sweep reaps the connection even though the
        // socket was "active" moments ago.
        rig.turn_with(vec![Event::readable(token)]);
        assert!(rig.conn(idx, gen).last_activity <= past + idle);
        rig.reactor.last_sweep = past;
        rig.turn_with(vec![]);
        assert!(!rig.is_open(idx, gen), "slow-loris client reaped");
        assert_eq!(rig.shared.stats.snapshot().conns_idle_reaped, 1);
    }

    #[test]
    fn full_job_queue_answers_busy_without_losing_the_connection() {
        let mut rig = rig_with(Duration::from_secs(60), 1, DEFAULT_WRITE_QUEUE_LIMIT);
        let (mut io, written, _cap) = ScriptIo::new(7);
        io.push_read(&hello_frame());
        io.push_read(&encode_frame(&proto::encode_request(KIND_DATA, 1, b"a")));
        io.push_read(&encode_frame(&proto::encode_request(KIND_DATA, 2, b"b")));
        let (idx, gen, token) = rig.add_conn(io);
        rig.turn_with(vec![Event::readable(token)]);
        // Depth-1 queue: the first job sits queued, the second gets BUSY
        // with its own seq echoed.
        assert_eq!(rig.sched.queued(), 1);
        let got = written.lock().unwrap().clone();
        let busy = encode_frame(&proto::encode_response(STATUS_BUSY, 2, &[]));
        assert_eq!(got, [ok_response(HELLO_SEQ, &[]), busy].concat());
        assert!(rig.is_open(idx, gen));
        assert_eq!(rig.shared.stats.snapshot().requests_busy, 1);
    }

    #[test]
    fn malformed_hello_answers_err_and_drains_closed() {
        let mut rig = rig();
        let (mut io, written, _cap) = ScriptIo::new(7);
        io.push_read(&encode_frame(b"not a hello"));
        let (idx, gen, token) = rig.add_conn(io);
        rig.turn_with(vec![Event::readable(token)]);
        let expected = encode_frame(&proto::encode_response(
            STATUS_ERR,
            HELLO_SEQ,
            b"malformed hello",
        ));
        assert_eq!(*written.lock().unwrap(), expected);
        assert!(
            !rig.is_open(idx, gen),
            "drained connection closes once the ERR flushes"
        );
        assert_eq!(rig.shared.stats.snapshot().requests_err, 1);
    }

    #[test]
    fn forged_length_prefix_answers_err_and_closes() {
        let mut rig = rig();
        let (mut io, written, _cap) = ScriptIo::new(7);
        let mut forged = hello_frame();
        forged[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        io.push_read(&forged);
        let (idx, gen, token) = rig.add_conn(io);
        rig.turn_with(vec![Event::readable(token)]);
        assert!(!rig.is_open(idx, gen));
        let got = written.lock().unwrap().clone();
        let (_, body) = got.split_at(4);
        let (status, seq, msg) = proto::decode_response(body).expect("framed ERR");
        assert_eq!((status, seq), (STATUS_ERR, HELLO_SEQ));
        assert!(std::str::from_utf8(msg).unwrap().contains("exceeds limit"));
    }

    #[test]
    fn shutdown_stops_reads_flushes_and_exits_after_drain() {
        let mut rig = rig();
        let (mut io, written, cap) = ScriptIo::new(7);
        io.push_read(&hello_frame());
        *cap.lock().unwrap() = 3; // force queued response bytes
        let (idx, gen, token) = rig.add_conn(io);
        assert!(rig.turn_with(vec![Event::readable(token)]));

        rig.shared.shutdown.request();
        assert!(rig.turn_with(vec![]), "drain not yet signalled");
        assert_eq!(
            rig.reactor.poller.interest_of(7),
            Some(Interest {
                readable: false,
                writable: true
            }),
            "shutdown stops reading but keeps flushing"
        );
        assert!(rig.reactor.job_tx.is_none(), "job sender dropped");

        // Peer drains; second shutdown phase: exit once queues empty.
        *cap.lock().unwrap() = usize::MAX;
        rig.reactor.drain_done.request();
        assert!(!rig.turn_with(vec![Event::writable(token)]));
        assert_eq!(*written.lock().unwrap(), ok_response(HELLO_SEQ, &[]));
        rig.reactor.close_all(CloseReason::Shutdown);
        assert!(!rig.is_open(idx, gen));
    }

    #[test]
    fn poison_completion_panics_the_reactor() {
        let mut rig = rig();
        rig.completions.post(POISON_TOKEN, OutMsg::raw(Vec::new()));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rig.reactor.poller.push_batch(vec![]);
            let mut events = Vec::new();
            rig.reactor.turn(&mut events)
        }));
        assert!(outcome.is_err(), "poison token must panic the loop");
    }

    #[test]
    fn conn_table_reuses_slots_with_fresh_generations() {
        let mut table = ConnTable::new();
        let (io_a, _, _) = ScriptIo::new(1);
        let (idx_a, gen_a) = table.insert(Conn::new(Box::new(io_a), 1024, None));
        assert!(table.remove(idx_a, gen_a).is_some());
        assert!(table.remove(idx_a, gen_a).is_none(), "double remove");
        let (io_b, _, _) = ScriptIo::new(2);
        let (idx_b, gen_b) = table.insert(Conn::new(Box::new(io_b), 1024, None));
        assert_eq!(idx_a, idx_b);
        assert_ne!(gen_a, gen_b);
        assert!(table.get_mut(idx_b, gen_a).is_none(), "stale gen rejected");
        assert!(table.get_mut(idx_b, gen_b).is_some());
        assert_eq!(table.open, 1);
    }

    #[test]
    fn partial_writev_resume_is_byte_identical_to_a_single_write() {
        // Reference stream: what the old contiguous-encode write path
        // would have produced for the same three responses.
        let expected = [
            ok_response(HELLO_SEQ, &[]),
            ok_response(1, b"first-result"),
            ok_response(2, b"second-response"),
        ]
        .concat();

        let mut rig = rig();
        let (mut io, written, cap) = ScriptIo::new(7);
        io.push_read(&hello_frame());
        *cap.lock().unwrap() = 0; // kernel takes nothing yet
        let (idx, gen, token) = rig.add_conn(io);
        rig.turn_with(vec![Event::readable(token)]);
        post_ok(&rig.completions, token, 1, b"first-result");
        post_ok(&rig.completions, token, 2, b"second-response");
        rig.turn_with(vec![]);
        assert!(written.lock().unwrap().is_empty());

        // Open the valve five bytes per EPOLLOUT: every resume lands at
        // an arbitrary split point — mid-head, mid-payload, across
        // message boundaries — and the cursor must carry over exactly.
        let mut guard = 0;
        while rig.conn(idx, gen).pending_write_bytes() > 0 {
            *cap.lock().unwrap() = 5;
            rig.turn_with(vec![Event::writable(token)]);
            guard += 1;
            assert!(guard < 100, "flush must make progress");
        }
        assert_eq!(*written.lock().unwrap(), expected);
        assert!(rig.is_open(idx, gen));
    }

    #[test]
    fn queued_responses_flush_in_one_gather_write() {
        let mut rig = rig();
        let (mut io, written, cap) = ScriptIo::new(7);
        io.push_read(&hello_frame());
        let (idx, gen, token) = rig.add_conn(io);
        rig.turn_with(vec![Event::readable(token)]);
        written.lock().unwrap().clear();

        // Valve shut: three completions pile up in the write queue.
        *cap.lock().unwrap() = 0;
        for seq in 1..=3 {
            post_ok(&rig.completions, token, seq, b"payload");
        }
        rig.turn_with(vec![]);
        assert!(written.lock().unwrap().is_empty());
        let before = rig.shared.stats.snapshot();

        // Valve opens: a single writev carries all three messages.
        *cap.lock().unwrap() = usize::MAX;
        rig.turn_with(vec![Event::writable(token)]);
        let snap = rig.shared.stats.snapshot();
        assert_eq!(snap.writev_calls, before.writev_calls + 1);
        assert_eq!(snap.writev_frames, before.writev_frames + 3);
        let expected: Vec<u8> = (1..=3).flat_map(|s| ok_response(s, b"payload")).collect();
        assert_eq!(*written.lock().unwrap(), expected);
        assert!(rig.is_open(idx, gen));
    }

    #[test]
    fn completions_drained_together_share_one_writev() {
        // No kernel pushback needed: completions that arrive in the same
        // drain are queued first and flushed once, so an open valve still
        // sees a single gather write for the whole batch.
        let mut rig = rig();
        let (mut io, written, _cap) = ScriptIo::new(7);
        io.push_read(&hello_frame());
        let (idx, gen, token) = rig.add_conn(io);
        rig.turn_with(vec![Event::readable(token)]);
        written.lock().unwrap().clear();
        let before = rig.shared.stats.snapshot();

        for seq in 1..=3 {
            post_ok(&rig.completions, token, seq, b"payload");
        }
        rig.turn_with(vec![Event::readable(WAKE_TOKEN)]);
        let snap = rig.shared.stats.snapshot();
        assert_eq!(snap.writev_calls, before.writev_calls + 1);
        assert_eq!(snap.writev_frames, before.writev_frames + 3);
        let expected: Vec<u8> = (1..=3).flat_map(|s| ok_response(s, b"payload")).collect();
        assert_eq!(*written.lock().unwrap(), expected);
        assert!(rig.is_open(idx, gen));
    }

    #[test]
    fn worker_wakeups_coalesce_into_one_pipe_drain() {
        let mut rig = rig();
        let (mut io, _written, _cap) = ScriptIo::new(7);
        io.push_read(&hello_frame());
        let (_idx, _gen, token) = rig.add_conn(io);
        rig.turn_with(vec![Event::readable(token)]);
        // Three completions post three pipe notifications before the
        // reactor polls again; one WAKE readiness drains them with a
        // single read.
        for seq in 1..=3 {
            post_ok(&rig.completions, token, seq, b"r");
        }
        rig.turn_with(vec![Event::readable(WAKE_TOKEN)]);
        let snap = rig.shared.stats.snapshot();
        assert_eq!(snap.reactor_wakeups, 1);
        assert_eq!(snap.wakeups_coalesced, 2);
    }

    #[test]
    fn pooled_request_payloads_are_zero_copy_and_recycled() {
        let mut rig = rig();
        let pool = rig.reactor.opts.pool.clone().expect("rig is pooled");
        let (mut io, _written, _cap) = ScriptIo::new(7);
        io.push_read(&hello_frame());
        io.push_read(&encode_frame(&proto::encode_request(
            KIND_DATA, 1, b"needle",
        )));
        let (_idx, _gen, token) = rig.add_conn(io);
        rig.turn_with(vec![Event::readable(token)]);
        let job = rig.sched.try_next(0).expect("job queued");
        assert_eq!(&job.payload[..], b"needle");
        // The payload is a sliced view of the decoder's pool buffer —
        // nothing was memcpy'd on the request path.
        assert_eq!(rig.shared.stats.snapshot().bytes_copied, 0);
        let before = pool.counters().recycles;
        drop(job);
        assert_eq!(
            pool.counters().recycles,
            before + 1,
            "dropping the job returns the frame buffer to the pool"
        );
    }

    #[test]
    fn owned_buffer_fallback_copies_and_counts_request_payloads() {
        let mut rig = rig();
        rig.reactor.opts.pool = None;
        let (mut io, _written, _cap) = ScriptIo::new(7);
        io.push_read(&hello_frame());
        io.push_read(&encode_frame(&proto::encode_request(
            KIND_DATA, 1, b"needle",
        )));
        let (_idx, _gen, token) = rig.add_conn(io);
        rig.turn_with(vec![Event::readable(token)]);
        let job = rig.sched.try_next(0).expect("job queued");
        assert_eq!(&job.payload[..], b"needle");
        assert_eq!(
            rig.shared.stats.snapshot().bytes_copied,
            6,
            "the fallback copies the payload out of the frame and counts it"
        );
    }
}
