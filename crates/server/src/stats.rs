//! Daemon-wide serving statistics.
//!
//! Counters are plain atomics (incremented from reader and worker threads
//! alike); latency goes to a [`LatencySplit`] — the end-to-end histogram
//! decomposed into queue-wait and worker service time, so a saturated
//! run queue and a slow scheme handler are distinguishable in
//! `ADMIN_STATS`. A [`StatsSnapshot`] is taken on demand to answer
//! `ADMIN_STATS` requests.

use crate::histogram::LatencySplit;
use crate::proto::StatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Shared mutable serving counters. One instance per daemon.
#[derive(Default)]
pub struct ServingStats {
    requests_ok: AtomicU64,
    requests_busy: AtomicU64,
    requests_err: AtomicU64,
    requests_degraded: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    /// Hello frames that attached to an already-open tenant database —
    /// the server-side view of client reconnects.
    reconnects: AtomicU64,
    conns_accepted: AtomicU64,
    conns_closed: AtomicU64,
    conns_rejected: AtomicU64,
    idle_reaped: AtomicU64,
    slow_reader_disconnects: AtomicU64,
    reactor_wakeups: AtomicU64,
    writes_deferred: AtomicU64,
    reactor_spurious_polls: AtomicU64,
    writev_calls: AtomicU64,
    writev_frames: AtomicU64,
    wakeups_coalesced: AtomicU64,
    bytes_copied: AtomicU64,
    latency: LatencySplit,
}

impl ServingStats {
    /// New zeroed stats.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one served DATA request: payload sizes plus the two
    /// latency phases — `queue_wait` (accepted until a worker dequeued
    /// the job) and `service` (worker dequeue until the response was
    /// produced). The end-to-end latency is their sum, recorded as such.
    pub fn record_ok(
        &self,
        bytes_in: usize,
        bytes_out: usize,
        queue_wait: Duration,
        service: Duration,
    ) {
        self.requests_ok.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes_in as u64, Ordering::Relaxed);
        self.bytes_out
            .fetch_add(bytes_out as u64, Ordering::Relaxed);
        self.latency.record(queue_wait, service);
    }

    /// Record one BUSY rejection (queue full; request not executed).
    pub fn record_busy(&self) {
        self.requests_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one protocol error.
    pub fn record_err(&self) {
        self.requests_err.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one DEGRADED rejection (tenant read-only; mutation refused
    /// with a retry-after hint, not executed).
    pub fn record_degraded(&self) {
        self.requests_degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a hello that re-attached to an already-open tenant database.
    pub fn record_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one accepted connection.
    pub fn record_conn_accepted(&self) {
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one closed connection (any reason).
    pub fn record_conn_closed(&self) {
        self.conns_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection refused at accept because the daemon is at its
    /// configured connection cap.
    pub fn record_conn_rejected(&self) {
        self.conns_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection reaped by the idle deadline.
    pub fn record_idle_reaped(&self) {
        self.idle_reaped.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection disconnected because its outbound write queue
    /// exceeded the configured bound (a reader slower than its responses).
    pub fn record_slow_reader_disconnect(&self) {
        self.slow_reader_disconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one wakeup-pipe notification observed by the reactor.
    pub fn record_reactor_wakeup(&self) {
        self.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a response that could not be written synchronously and armed
    /// `EPOLLOUT` to finish later (kernel send buffer full).
    pub fn record_write_deferred(&self) {
        self.writes_deferred.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a readiness event that produced no progress (spurious
    /// wakeup; the reactor must tolerate them by design).
    pub fn record_reactor_spurious_poll(&self) {
        self.reactor_spurious_polls.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one `writev` syscall that fully flushed `frames` queued
    /// response frames — `writev_frames / writev_calls` is the mean
    /// syscall batch size.
    pub fn record_writev(&self, frames: u64) {
        self.writev_calls.fetch_add(1, Ordering::Relaxed);
        self.writev_frames.fetch_add(frames, Ordering::Relaxed);
    }

    /// Record worker-completion notifications absorbed by a wakeup that
    /// was already pending (one pipe drain delivered `extra + 1`
    /// completions).
    pub fn record_wakeups_coalesced(&self, extra: u64) {
        self.wakeups_coalesced.fetch_add(extra, Ordering::Relaxed);
    }

    /// Record payload bytes memcpy'd on the serving path (request
    /// materialization, response envelope assembly).
    pub fn record_bytes_copied(&self, bytes: u64) {
        self.bytes_copied.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Point-in-time snapshot for the ADMIN protocol. The storage-side
    /// robustness counters (`faults_injected`, `wal_recoveries`,
    /// `torn_tails_truncated`) live with the tenant registry / fault VFS;
    /// the daemon overlays them before encoding the ADMIN response.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests_ok: self.requests_ok.load(Ordering::Relaxed),
            requests_busy: self.requests_busy.load(Ordering::Relaxed),
            requests_err: self.requests_err.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            p50_ns: self.latency.total.quantile_ns(0.50),
            p95_ns: self.latency.total.quantile_ns(0.95),
            p99_ns: self.latency.total.quantile_ns(0.99),
            faults_injected: 0,
            wal_recoveries: 0,
            torn_tails_truncated: 0,
            reconnects: self.reconnects.load(Ordering::Relaxed),
            shard_contention: Vec::new(),
            groups_committed: 0,
            ops_committed: 0,
            max_group_size: 0,
            fsyncs_saved: 0,
            snapshot_swaps: 0,
            search_cache_hits: 0,
            search_cache_misses: 0,
            walk_steps_saved: 0,
            backend_runs_flushed: 0,
            backend_runs_live: 0,
            backend_compactions: 0,
            backend_run_reads: 0,
            backend_bloom_checks: 0,
            backend_bloom_skips: 0,
            backend_bloom_false_positives: 0,
            requests_degraded: self.requests_degraded.load(Ordering::Relaxed),
            health_degradations: 0,
            health_recoveries: 0,
            health_quarantines: 0,
            tenants_degraded: 0,
            tenants_quarantined: 0,
            scrub_passes: 0,
            scrub_repairs: 0,
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_open: self
                .conns_accepted
                .load(Ordering::Relaxed)
                .saturating_sub(self.conns_closed.load(Ordering::Relaxed)),
            conns_idle_reaped: self.idle_reaped.load(Ordering::Relaxed),
            conns_rejected: self.conns_rejected.load(Ordering::Relaxed),
            slow_reader_disconnects: self.slow_reader_disconnects.load(Ordering::Relaxed),
            reactor_wakeups: self.reactor_wakeups.load(Ordering::Relaxed),
            writes_deferred: self.writes_deferred.load(Ordering::Relaxed),
            reactor_spurious_polls: self.reactor_spurious_polls.load(Ordering::Relaxed),
            // The pool_* counters live with the BufPool; the daemon
            // overlays them (like the storage-side counters above).
            pool_hits: 0,
            pool_misses: 0,
            pool_recycles: 0,
            writev_calls: self.writev_calls.load(Ordering::Relaxed),
            writev_frames: self.writev_frames.load(Ordering::Relaxed),
            wakeups_coalesced: self.wakeups_coalesced.load(Ordering::Relaxed),
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            queue_p50_ns: self.latency.queue.quantile_ns(0.50),
            queue_p95_ns: self.latency.queue.quantile_ns(0.95),
            queue_p99_ns: self.latency.queue.quantile_ns(0.99),
            service_p50_ns: self.latency.service.quantile_ns(0.50),
            service_p95_ns: self.latency.service.quantile_ns(0.95),
            service_p99_ns: self.latency.service.quantile_ns(0.99),
            // The scheduler counters live with the Scheduler; the daemon
            // overlays them (like the storage-side counters above).
            sched_routed: 0,
            sched_local_hits: 0,
            sched_stolen: 0,
            sched_spilled: 0,
            sched_queue_depth_hw: 0,
            fanout_batches: 0,
            fanout_parts_helped: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_traffic() {
        let stats = ServingStats::new();
        stats.record_ok(
            100,
            300,
            Duration::from_micros(1),
            Duration::from_micros(10),
        );
        stats.record_ok(50, 150, Duration::from_micros(2), Duration::from_micros(20));
        stats.record_busy();
        stats.record_err();
        let s = stats.snapshot();
        assert_eq!(s.requests_ok, 2);
        assert_eq!(s.requests_busy, 1);
        assert_eq!(s.requests_err, 1);
        assert_eq!(s.bytes_in, 150);
        assert_eq!(s.bytes_out, 450);
        assert!(s.p50_ns > 0);
        // The split is populated and ordered: queue waits were an order
        // of magnitude below service times, and the total reflects both.
        assert!(s.queue_p50_ns > 0);
        assert!(s.service_p50_ns > s.queue_p50_ns);
        assert!(s.p50_ns >= s.service_p50_ns);
    }
}
