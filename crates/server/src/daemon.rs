//! The multi-tenant TCP daemon.
//!
//! Thread architecture:
//!
//! ```text
//!  listener thread ──accept──▶ connection threads (one per socket)
//!                                   │  parse frames, route ADMIN inline
//!                                   │  try_send DATA jobs, routed by
//!                                   ▼  tenant hash │ all queues full ⇒ BUSY
//!                    sharded scheduler (one run queue per worker)
//!                      q0      q1      q2      q3
//!                      │       │       │       │   idle workers steal
//!                      ▼       ▼       ▼       ▼   from the busiest queue
//!                      w0      w1      w2      w3
//!                        lock tenant ▸ Service::handle ▸ reply
//! ```
//!
//! Jobs are routed to `hash(tenant) % workers` ([`crate::sched`]), so a
//! tenant's hot state — Scheme 2 chain-key memo, shard snapshots, shard
//! locks — stays on one core instead of bouncing between whichever
//! workers happen to pop a shared queue; stealing keeps a skewed tenant
//! mix from idling the rest of the pool. `SEARCH_MANY` batches execute
//! on the same pool through the spawn-free fan-out executor instead of
//! spawning scoped threads per request.
//!
//! Backpressure is explicit: when every run queue is full the connection
//! thread answers `BUSY` immediately instead of buffering unboundedly —
//! the client retries with backoff ([`crate::transport::TcpTransport`]).
//!
//! Graceful shutdown reuses [`sse_net::shutdown::ShutdownSignal`] (the
//! same primitive that stops [`sse_net::link::Duplex`]): the listener
//! stops accepting, connection threads stop reading and hang up, the job
//! sender side drops, and workers drain every queued job before exiting.
//! [`Daemon::shutdown`] joins all of them — no thread outlives the call.

use crate::proto::{
    self, Hello, StatsSnapshot, ADMIN_SHUTDOWN, ADMIN_STATS, HELLO_SEQ, KIND_ADMIN, KIND_DATA,
    KIND_SEARCH_MANY, KIND_UPDATE_MANY, STATUS_BUSY, STATUS_DEGRADED, STATUS_ERR, STATUS_OK,
};
use crate::reactor::{CompletionQueue, OutMsg, Reactor, ReactorOptions, Segment, POISON_TOKEN};
use crate::sched::{route_hash, JobSender, SchedCounters, Scheduler, SearchFanout};
use crate::scrub::{scrub_loop, scrub_pass, ScrubCounters};
use crate::stats::ServingStats;
use crate::tenant::{TenantHandle, TenantParams, TenantRegistry};
use sse_core::health::{HealthState, DEGRADED_RETRY_AFTER_MS};
use sse_net::frame::FrameDecoder;
use sse_net::pool::{BufPool, PooledBuf};
use sse_net::shutdown::ShutdownSignal;
use sse_storage::{FaultConfig, FaultStats, FaultVfs, RealVfs, Vfs};
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked threads re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Default per-connection idle timeout (see [`ServerConfig::idle_timeout`]).
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Default cap on concurrently open connections in reactor mode.
pub const DEFAULT_MAX_CONNS: usize = 100_000;

/// Default bound on a connection's queued-but-unwritten response bytes;
/// past it the peer is declared a slow reader and disconnected.
pub const DEFAULT_WRITE_QUEUE_LIMIT: usize = 64 * 1024 * 1024;

/// Acquire size for a worker's pooled response scratch buffer. One pool
/// class (4 KiB) covers typical search results; a bigger response grows
/// the buffer once and the pool re-files it under its new class when the
/// reactor retires it, so the high-water capacity is kept, not re-paid.
const RESPONSE_SCRATCH_CAPACITY: usize = 4096;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing scheme requests.
    pub workers: usize,
    /// Bounded job-queue depth; beyond it requests get `BUSY`.
    pub queue_depth: usize,
    /// Per-frame body limit enforced on client input (forged length
    /// prefixes are rejected before any allocation).
    pub max_frame_len: u32,
    /// Parameters for lazily created tenant databases.
    pub tenant_params: TenantParams,
    /// `Some` ⇒ durable mode: tenant databases persist under this
    /// directory, are recovered (WAL replay) at startup, and are
    /// checkpointed on graceful shutdown.
    pub data_dir: Option<PathBuf>,
    /// Close a connection that has sent no bytes for this long. Without it
    /// an idle (or vanished, on a network that never RSTs) client pins a
    /// reader thread forever.
    pub idle_timeout: Duration,
    /// `Some` ⇒ route all tenant file I/O through a seeded
    /// [`FaultVfs`] (torture testing only); injected-fault counts show up
    /// in `ADMIN_STATS`.
    pub fault: Option<FaultConfig>,
    /// `Some` ⇒ spawn a background scrub thread running one integrity
    /// pass (verify healthy tenants, repair degraded ones — see
    /// [`crate::scrub`]) per interval. `None` disables the thread; tests
    /// can still drive passes synchronously via [`Daemon::scrub_now`].
    pub scrub_interval: Option<Duration>,
    /// `true` (the default) runs the epoll reactor: one event-loop thread
    /// owns every socket ([`crate::reactor`]). `false` falls back to the
    /// legacy thread-per-connection architecture.
    pub reactor: bool,
    /// Reactor mode: connections accepted beyond this cap are dropped at
    /// accept (counted as `conns_rejected`).
    pub max_conns: usize,
    /// Reactor mode: a connection whose queued-but-unwritten response
    /// bytes exceed this bound is disconnected as a slow reader.
    pub write_queue_limit: usize,
    /// `true` (the default) serves the zero-copy hot path: frame bodies
    /// are assembled into pooled buffers and request payloads reach the
    /// workers as sliced views of them. `false` (`--no-pool`) falls back
    /// to a fresh `Vec` per frame and a copied payload per job — the
    /// pre-pool behavior, kept as the benchmark baseline.
    pub pool: bool,
    /// `true` (the default) routes jobs to `hash(tenant) % workers`, so a
    /// tenant's hot state stays core-local and idle workers steal from
    /// the busiest queue. `false` (`--no-affinity`) routes round-robin
    /// through the same sharded scheduler — the global-queue-equivalent
    /// baseline the sched bench compares against.
    pub affinity: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            max_frame_len: sse_net::frame::MAX_FRAME_LEN,
            tenant_params: TenantParams::default(),
            data_dir: None,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            fault: None,
            scrub_interval: None,
            reactor: true,
            max_conns: DEFAULT_MAX_CONNS,
            write_queue_limit: DEFAULT_WRITE_QUEUE_LIMIT,
            pool: true,
            affinity: true,
        }
    }
}

/// State shared by the listener/reactor, connection and admin paths.
pub(crate) struct Shared {
    pub(crate) shutdown: ShutdownSignal,
    pub(crate) stats: Arc<ServingStats>,
    pub(crate) registry: Arc<TenantRegistry>,
    pub(crate) fault_stats: Option<Arc<FaultStats>>,
    pub(crate) scrub: Arc<ScrubCounters>,
    pub(crate) max_frame_len: u32,
    pub(crate) idle_timeout: Duration,
    /// The serving-path buffer pool. Cloned into the reactor when pooled
    /// mode is on; kept here regardless so `ADMIN_STATS` can report the
    /// hit/miss/recycle counters.
    pub(crate) pool: BufPool,
    /// Scheduler observability counters (routed / local hits / steals /
    /// spills / queue high-water, fan-out batches), overlaid into
    /// `ADMIN_STATS` like the pool and storage counters.
    pub(crate) sched: Arc<SchedCounters>,
}

impl Shared {
    /// Serving counters plus the storage-side robustness counters that
    /// live with the registry / fault VFS.
    pub(crate) fn full_snapshot(&self) -> StatsSnapshot {
        let mut snap = self.stats.snapshot();
        snap.wal_recoveries = self.registry.wal_recoveries();
        snap.torn_tails_truncated = self.registry.torn_tails_truncated();
        snap.shard_contention = self.registry.shard_contention();
        let commit = self.registry.commit_counters();
        snap.groups_committed = commit.groups_committed;
        snap.ops_committed = commit.ops_committed;
        snap.max_group_size = commit.max_group;
        snap.fsyncs_saved = commit.fsyncs_saved;
        snap.snapshot_swaps = commit.snapshot_swaps;
        let cache = self.registry.search_cache_counters();
        snap.search_cache_hits = cache.hits;
        snap.search_cache_misses = cache.misses;
        snap.walk_steps_saved = cache.walk_steps_saved;
        let backend = self.registry.backend_counters();
        snap.backend_runs_flushed = backend.runs_flushed;
        snap.backend_runs_live = backend.runs_live;
        snap.backend_compactions = backend.compactions;
        snap.backend_run_reads = backend.run_reads;
        snap.backend_bloom_checks = backend.bloom_checks;
        snap.backend_bloom_skips = backend.bloom_skips;
        snap.backend_bloom_false_positives = backend.bloom_false_positives;
        if let Some(f) = &self.fault_stats {
            snap.faults_injected = f.injected();
        }
        let health = self.registry.health_counters();
        snap.health_degradations = health.degradations;
        snap.health_recoveries = health.recoveries;
        snap.health_quarantines = health.quarantines;
        snap.tenants_degraded = health.tenants_degraded;
        snap.tenants_quarantined = health.tenants_quarantined;
        snap.scrub_passes = self.scrub.passes();
        snap.scrub_repairs = self.scrub.repairs();
        let pool = self.pool.counters();
        snap.pool_hits = pool.hits;
        snap.pool_misses = pool.misses;
        snap.pool_recycles = pool.recycles;
        snap.sched_routed = self.sched.routed();
        snap.sched_local_hits = self.sched.local_hits();
        snap.sched_stolen = self.sched.stolen();
        snap.sched_spilled = self.sched.spilled();
        snap.sched_queue_depth_hw = self.sched.queue_depth_hw();
        snap.fanout_batches = self.sched.fanout_batches();
        snap.fanout_parts_helped = self.sched.fanout_parts_helped();
        snap
    }
}

/// Where a worker sends its response: directly down the socket (legacy
/// thread-per-connection mode, under the connection's writer lock) or
/// back to the reactor as a pre-framed completion.
#[derive(Clone)]
pub(crate) enum Responder {
    /// Write under the connection's writer mutex (frames from the reader
    /// thread and from workers must not interleave).
    Direct(Arc<Mutex<TcpStream>>),
    /// Post to the reactor's completion queue; the reactor owns the
    /// socket and serializes all writes through the connection's bounded
    /// write queue.
    Reactor {
        token: u64,
        completions: Arc<CompletionQueue>,
        /// `Some` in pooled mode: the response payload is sealed into the
        /// pool so its buffer recycles once the reactor's gather write
        /// finishes — steady-state, request-body acquires are served by
        /// retired response buffers instead of fresh allocations.
        pool: Option<BufPool>,
    },
}

impl Responder {
    /// Send one response envelope, taking the payload **by value** so it
    /// is written exactly once: the old `&[u8]` signature forced both
    /// arms through `encode_frame(encode_response(..))` — one copy to
    /// build the envelope, a second into the framed buffer. Now the
    /// reactor arm moves the payload into a scatter-gather [`OutMsg`]
    /// and the direct arm hands it to the kernel from where it sits via
    /// a vectored write.
    ///
    /// Returns `false` only when a direct write fails (the reactor path
    /// always accepts; a dead connection drops the completion by token
    /// mismatch).
    pub(crate) fn send(&self, status: u8, seq: u32, payload: Vec<u8>) -> bool {
        match self {
            Responder::Direct(writer) => {
                let mut stream = writer
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                write_response_direct(&mut stream, status, seq, &payload).is_ok()
            }
            Responder::Reactor {
                token,
                completions,
                pool,
            } => {
                let segment = match pool {
                    Some(pool) => Segment::Pooled(pool.seal(payload)),
                    None => Segment::Owned(payload),
                };
                completions.post(*token, OutMsg::response(status, seq, segment));
                true
            }
        }
    }
}

/// Blocking vectored write of `prefix ‖ payload` under the connection's
/// writer lock — the threaded-mode half of the zero-copy encode (the
/// payload goes out as its own iovec, never copied into a contiguous
/// frame buffer).
fn write_response_direct(
    stream: &mut TcpStream,
    status: u8,
    seq: u32,
    payload: &[u8],
) -> std::io::Result<()> {
    let head = proto::response_prefix(status, seq, payload.len());
    let total = head.len() + payload.len();
    let mut written = 0usize;
    while written < total {
        let bufs = if written < head.len() {
            [IoSlice::new(&head[written..]), IoSlice::new(payload)]
        } else {
            [
                IoSlice::new(&payload[written - head.len()..]),
                IoSlice::new(&[]),
            ]
        };
        match stream.write_vectored(&bufs) {
            Ok(0) => return Err(std::io::Error::from(ErrorKind::WriteZero)),
            Ok(n) => written += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// One queued DATA, UPDATE_MANY or SEARCH_MANY request.
pub(crate) struct Job {
    pub(crate) tenant: TenantHandle,
    /// [`KIND_DATA`], [`KIND_UPDATE_MANY`] or [`KIND_SEARCH_MANY`] —
    /// decides how the worker interprets the payload.
    pub(crate) kind: u8,
    /// Client sequence number, echoed in the response so a pipelining
    /// client can match responses that workers complete out of order.
    pub(crate) seq: u32,
    /// The request payload. In pooled reactor mode this is a sliced view
    /// of the frame's pool buffer (zero-copy from the socket read);
    /// elsewhere it wraps an owned `Vec`. Dropping it recycles a pooled
    /// buffer automatically.
    pub(crate) payload: PooledBuf,
    pub(crate) responder: Responder,
    pub(crate) accepted: Instant,
}

/// Counts reported by [`Daemon::shutdown`] — evidence that every spawned
/// thread was joined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Worker threads joined.
    pub workers_joined: usize,
    /// Connection threads joined.
    pub connections_joined: usize,
    /// Tenant databases checkpointed to disk during the drain (always 0
    /// for an in-memory daemon).
    pub tenants_checkpointed: usize,
    /// Daemon threads that panicked instead of exiting cleanly. Shutdown
    /// still joins and counts them (a panicked worker must not abort the
    /// drain and strand the other tenants' checkpoints); nonzero means a
    /// bug worth reporting, not a reason to lose data.
    pub threads_panicked: usize,
    /// Statistics taken after the drain checkpoints, so counters the
    /// checkpoint itself advances (lsm runs flushed, compactions) are
    /// included — a pre-shutdown [`Daemon::stats`] call would miss them.
    pub final_stats: StatsSnapshot,
}

/// A running daemon. Dropping it without calling [`Daemon::shutdown`]
/// leaves the threads serving (the handle is not the lifecycle).
pub struct Daemon {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    /// Threaded mode only.
    listener_join: Option<JoinHandle<()>>,
    /// Threaded mode only.
    conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Reactor mode only.
    reactor_join: Option<JoinHandle<()>>,
    /// Reactor mode only: handle for waking the reactor from shutdown
    /// (and for the panic-injection test hook).
    completions: Option<Arc<CompletionQueue>>,
    /// Reactor mode only: second-phase drain signal, requested after the
    /// workers are joined so the reactor flushes the final responses and
    /// exits.
    drain_done: ShutdownSignal,
    worker_joins: Vec<JoinHandle<()>>,
    scrub_join: Option<JoinHandle<()>>,
    job_tx: JobSender<Job>,
}

impl Daemon {
    /// Bind, spawn the thread pool, and start serving. In durable mode
    /// (`config.data_dir`) every tenant database already on disk is opened
    /// — and crash-recovered — before the listener accepts its first
    /// connection.
    ///
    /// # Errors
    /// I/O errors from binding the listener, or storage errors from
    /// recovering an existing tenant database.
    pub fn spawn(config: ServerConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = ShutdownSignal::new();
        let stats = Arc::new(ServingStats::new());
        let (vfs, fault_stats): (Arc<dyn Vfs>, Option<Arc<FaultStats>>) = match config.fault {
            None => (RealVfs::arc(), None),
            Some(cfg) => {
                let fv = FaultVfs::new(RealVfs::arc(), cfg);
                let fstats = fv.stats();
                (Arc::new(fv), Some(fstats))
            }
        };
        let registry = Arc::new(match config.data_dir {
            None => TenantRegistry::new(config.tenant_params),
            Some(dir) => TenantRegistry::durable(config.tenant_params, dir, vfs),
        });
        registry.preopen_existing().map_err(std::io::Error::other)?;
        let (sched, job_tx) =
            Scheduler::<Job>::new(config.workers.max(1), config.queue_depth, config.affinity);
        let fanout = Arc::new(SearchFanout::new(sched.clone()));

        let worker_joins: Vec<JoinHandle<()>> = (0..sched.workers())
            .map(|me| {
                let sched = sched.clone();
                let fanout = fanout.clone();
                let stats = stats.clone();
                std::thread::spawn(move || worker_loop(me, &sched, &fanout, &stats))
            })
            .collect();

        let shared = Arc::new(Shared {
            shutdown,
            stats,
            registry,
            fault_stats,
            scrub: Arc::new(ScrubCounters::new()),
            max_frame_len: config.max_frame_len,
            idle_timeout: config.idle_timeout,
            pool: BufPool::new(),
            sched: sched.counters(),
        });

        let scrub_join = config.scrub_interval.map(|interval| {
            let shared = shared.clone();
            std::thread::spawn(move || {
                scrub_loop(&shared.registry, &shared.scrub, &shared.shutdown, interval);
            })
        });

        let conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let drain_done = ShutdownSignal::new();
        let mut listener_join = None;
        let mut reactor_join = None;
        let mut completions = None;
        if config.reactor {
            let opts = ReactorOptions {
                max_frame_len: config.max_frame_len,
                idle_timeout: config.idle_timeout,
                max_conns: config.max_conns,
                write_queue_limit: config.write_queue_limit,
                pool: config.pool.then(|| shared.pool.clone()),
            };
            let (mut reactor, queue) = Reactor::new_real(
                listener,
                shared.clone(),
                job_tx.clone(),
                drain_done.clone(),
                opts,
            )?;
            completions = Some(queue);
            let shutdown = shared.shutdown.clone();
            reactor_join = Some(std::thread::spawn(move || {
                // Server-side thread: opt into the allocation meter so
                // `--bench-mode hotpath` counts reactor allocations but
                // not the bench client's own.
                allocmeter::track_current_thread();
                // A reactor panic (fatal accept error, poll failure,
                // poison) must start a graceful drain — a daemon without
                // its event loop can never serve again — and still count
                // as a panicked thread in the shutdown report.
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| reactor.run()));
                if let Err(payload) = outcome {
                    shutdown.request();
                    std::panic::resume_unwind(payload);
                }
            }));
        } else {
            let shared = shared.clone();
            let conn_joins = conn_joins.clone();
            let job_tx = job_tx.clone();
            listener_join = Some(std::thread::spawn(move || {
                listener_loop(&listener, &shared, &conn_joins, &job_tx);
            }));
        }

        Ok(Daemon {
            local_addr,
            shared,
            listener_join,
            conn_joins,
            reactor_join,
            completions,
            drain_done,
            worker_joins,
            scrub_join,
            job_tx,
        })
    }

    /// Run one synchronous scrub pass (verify healthy tenants, repair
    /// degraded ones) on the caller's thread — the deterministic
    /// equivalent of waiting for the background scrub's next tick.
    pub fn scrub_now(&self) {
        scrub_pass(&self.shared.registry, &self.shared.scrub);
    }

    /// Test hook: kill the reactor thread by posting a poison completion.
    /// The panic trips the reactor's shutdown path and is counted in
    /// [`ShutdownReport::threads_panicked`] — this is how the
    /// "reactor dies mid-load" regression test exercises that accounting
    /// without reaching into thread internals. No-op in threaded mode.
    #[doc(hidden)]
    pub fn inject_reactor_panic(&self) {
        if let Some(queue) = &self.completions {
            queue.post(POISON_TOKEN, OutMsg::raw(Vec::new()));
        }
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The daemon's shutdown signal. Requesting it (from any thread, or via
    /// the `ADMIN_SHUTDOWN` command) starts a graceful drain.
    #[must_use]
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        self.shared.shutdown.clone()
    }

    /// Current serving statistics, including the robustness counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.full_snapshot()
    }

    /// Number of tenant databases created so far.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.shared.registry.tenant_count()
    }

    /// Block until the shutdown signal is requested (e.g. by an
    /// `ADMIN_SHUTDOWN` frame).
    pub fn wait_for_shutdown_request(&self) {
        while !self.shared.shutdown.is_requested() {
            std::thread::sleep(POLL_INTERVAL);
        }
    }

    /// Gracefully stop: request shutdown, drain queued requests, join every
    /// thread, then checkpoint every durable tenant so no WAL is left to
    /// replay (the checkpoint runs **after** the workers drain — queued
    /// mutations land in the snapshot, not just the log). In-flight
    /// requests get their responses; the listener socket closes.
    ///
    /// A daemon thread that panicked is logged and counted in the report
    /// ([`ShutdownReport::threads_panicked`]), never re-raised: aborting
    /// the drain on one bad thread would strand every other tenant's
    /// checkpoint and turn a bug into data loss.
    pub fn shutdown(self) -> ShutdownReport {
        let mut threads_panicked = 0;
        let mut join_counted = |handle: JoinHandle<()>, role: &str| {
            if handle.join().is_err() {
                threads_panicked += 1;
                eprintln!("sse-serverd: {role} thread panicked (continuing shutdown)");
            }
        };
        self.shared.shutdown.request();
        if let Some(queue) = &self.completions {
            // Unpark the reactor from epoll_wait so it notices the flag
            // now rather than at its next timeout tick.
            queue.wake();
        }
        if let Some(join) = self.listener_join {
            join_counted(join, "listener");
        }
        // The listener has stopped spawning; connection threads notice the
        // flag within one poll interval and hang up.
        let conns = std::mem::take(
            &mut *self
                .conn_joins
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        let mut connections_joined = conns.len();
        for join in conns {
            join_counted(join, "connection");
        }
        // All request producers are gone: dropping the daemon's own sender
        // closes the scheduler (the reactor drops its own clone on its
        // first post-shutdown turn), and workers exit after draining every
        // run queue.
        drop(self.job_tx);
        let workers_joined = self.worker_joins.len();
        for join in self.worker_joins {
            join_counted(join, "worker");
        }
        // Workers joined ⇒ every completion is posted. Tell the reactor
        // to flush the last responses and exit, then join it.
        self.drain_done.request();
        if let Some(queue) = &self.completions {
            queue.wake();
        }
        if let Some(join) = self.reactor_join {
            join_counted(join, "reactor");
            // The reactor handled every connection on one thread; report
            // the connections it retired where the threaded daemon would
            // report joined reader threads.
            connections_joined = self.shared.stats.snapshot().conns_accepted as usize;
        }
        if let Some(join) = self.scrub_join {
            join_counted(join, "scrub");
        }
        // Workers have drained: every accepted mutation is at least in a
        // tenant WAL. Fold the WALs into snapshots so a daemon restart
        // starts clean. A checkpoint failure (e.g. disk full) is not fatal
        // here — the WALs themselves still replay on the next open.
        let tenants_checkpointed = self.shared.registry.checkpoint_all().unwrap_or(0);
        let final_stats = self.shared.full_snapshot();
        ShutdownReport {
            workers_joined,
            connections_joined,
            tenants_checkpointed,
            threads_panicked,
            final_stats,
        }
    }
}

fn listener_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conn_joins: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    job_tx: &JobSender<Job>,
) {
    while !shared.shutdown.is_requested() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Same reasoning as the reactor's accept path: responses
                // to a pipelined burst must not wait on delayed ACKs.
                stream.set_nodelay(true).ok();
                let shared = shared.clone();
                let job_tx = job_tx.clone();
                let join = std::thread::spawn(move || {
                    connection_loop(stream, &shared, &job_tx);
                });
                conn_joins
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(join);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(e) => {
                // The listener socket died: without it the daemon can never
                // accept again, so start a graceful drain instead of
                // lingering as a server that silently refuses connections.
                // Panicking (after requesting shutdown) makes the failure
                // visible in ShutdownReport::threads_panicked rather than
                // reading as a clean exit.
                shared.shutdown.request();
                panic!("sse-serverd: fatal accept error: {e}");
            }
        }
    }
}

fn worker_loop(
    me: usize,
    sched: &Arc<Scheduler<Job>>,
    fanout: &Arc<SearchFanout>,
    stats: &Arc<ServingStats>,
) {
    // Server-side thread: opt into the allocation meter (see the reactor
    // thread) so hotpath bench numbers cover scheme work, not clients.
    allocmeter::track_current_thread();
    // Worker w serves its own run queue first (its tenants' home), then
    // steals, then helps an active search fan-out, and only then parks.
    // The epoch is read before the probes so a submit that lands between
    // probe and park wakes the worker instead of waiting out the timeout.
    // Workers exit only once the scheduler is closed AND drained — the
    // same drain-the-backlog shutdown contract the old channel's
    // `recv`-until-disconnect loop provided.
    loop {
        let epoch = sched.idle_epoch();
        if let Some(job) = sched.try_next(me) {
            process_job(job, fanout, stats);
            continue;
        }
        if fanout.try_help() {
            continue;
        }
        if sched.is_closed() && sched.queued() == 0 {
            break;
        }
        sched.park(epoch, POLL_INTERVAL);
    }
}

fn process_job(job: Job, fanout: &Arc<SearchFanout>, stats: &Arc<ServingStats>) {
    // The split point between the two latency phases: everything before
    // this instant was run-queue wait, everything after is service.
    let queue_wait = job.accepted.elapsed();
    let service_start = Instant::now();
    // Health gate, checked lock-free before any work: a quarantined
    // tenant serves nothing; a degraded tenant serves reads from its
    // snapshots but rejects mutations with a typed retry-after hint so
    // clients back off instead of dropping the op.
    let health = job.tenant.health();
    match health.state() {
        HealthState::Quarantined => {
            stats.record_err();
            let msg = format!("tenant quarantined: {}", health.reason());
            job.responder.send(STATUS_ERR, job.seq, msg.into_bytes());
            return;
        }
        HealthState::Degraded if job.tenant.is_mutation(job.kind, &job.payload) => {
            stats.record_degraded();
            let payload = proto::encode_degraded(DEGRADED_RETRY_AFTER_MS, &health.reason());
            job.responder.send(STATUS_DEGRADED, job.seq, payload);
            return;
        }
        _ => {}
    }
    let Job {
        tenant,
        kind,
        seq,
        payload,
        responder,
        ..
    } = job;
    let bytes_in = payload.len();
    // A panicking scheme handler must cost its request, not this worker
    // thread: an uncaught unwind here would shrink the pool until the
    // daemon deadlocks with jobs queued and no workers. parking_lot locks
    // release on unwind (no poisoning), so the tenant stays usable.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match kind {
        KIND_UPDATE_MANY => proto::decode_batch(&payload).map(|parts| tenant.apply_batch(&parts)),
        // SEARCH_MANY takes the payload by value: the executor shares the
        // (pooled, zero-copy) buffer with helper workers via Arc instead
        // of spawning scoped threads that could borrow it.
        KIND_SEARCH_MANY => fanout.search_many(&tenant, payload),
        _ => {
            // Pooled mode closes the loop on the response side too:
            // encode into a recycled pool buffer, which `send` seals
            // so the reactor's gather write recycles it again.
            let scratch = match &responder {
                Responder::Reactor {
                    pool: Some(pool), ..
                } => pool.acquire(RESPONSE_SCRATCH_CAPACITY),
                _ => Vec::new(),
            };
            Some(tenant.handle_shared_with(&payload, scratch))
        }
    }));
    match outcome {
        Ok(Some(response)) => {
            let bytes_out = response.len();
            if responder.send(STATUS_OK, seq, response) {
                stats.record_ok(bytes_in, bytes_out, queue_wait, service_start.elapsed());
            }
        }
        Ok(None) => {
            stats.record_err();
            responder.send(STATUS_ERR, seq, b"malformed batch".to_vec());
        }
        Err(_) => {
            stats.record_err();
            responder.send(
                STATUS_ERR,
                seq,
                b"internal error: request handler panicked".to_vec(),
            );
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>, job_tx: &JobSender<Job>) {
    // Server-side thread (legacy mode): opt into the allocation meter so
    // the hotpath bench's legacy arm measures this path's allocations.
    allocmeter::track_current_thread();
    let Shared {
        shutdown,
        stats,
        registry,
        ..
    } = &**shared;
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    stats.record_conn_accepted();
    // Counted on every exit path so `conns_open` balances in threaded
    // mode just as it does under the reactor.
    struct CloseGuard<'a>(&'a ServingStats);
    impl Drop for CloseGuard<'_> {
        fn drop(&mut self) {
            self.0.record_conn_closed();
        }
    }
    let _close_guard = CloseGuard(stats);
    let responder = Responder::Direct(writer);
    let mut reader = stream;
    let mut decoder = FrameDecoder::with_max_len(shared.max_frame_len);
    let mut tenant: Option<TenantHandle> = None;
    // Routing key for the scheduler, fixed at hello: every job from this
    // connection homes to the same worker queue (tenant affinity).
    let mut route: u64 = 0;
    let mut buf = [0u8; 16 * 1024];
    let mut last_activity = Instant::now();

    'conn: while !shutdown.is_requested() {
        match reader.read(&mut buf) {
            Ok(0) => break, // peer hung up
            Ok(n) => {
                last_activity = Instant::now();
                decoder.push(&buf[..n]);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Poll tick: re-check the shutdown flag, and hang up on
                // clients that have gone silent — a vanished peer (or an
                // idle one) must not pin this reader thread forever.
                if last_activity.elapsed() >= shared.idle_timeout {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        loop {
            let frame = match decoder.next_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(too_large) => {
                    stats.record_err();
                    responder.send(STATUS_ERR, HELLO_SEQ, too_large.to_string().into_bytes());
                    break 'conn;
                }
            };
            // First frame must be the hello.
            let Some(current_tenant) = tenant.as_ref() else {
                match Hello::decode(&frame) {
                    Some(hello) => {
                        let existed = registry.contains(&hello.tenant, hello.scheme);
                        match registry.get_or_create(&hello.tenant, hello.scheme) {
                            Ok(handle) => {
                                if existed {
                                    stats.record_reconnect();
                                }
                                route = route_hash(&hello.tenant, hello.scheme);
                                tenant = Some(handle);
                                if !responder.send(STATUS_OK, HELLO_SEQ, Vec::new()) {
                                    break 'conn;
                                }
                            }
                            Err(e) => {
                                stats.record_err();
                                responder.send(
                                    STATUS_ERR,
                                    HELLO_SEQ,
                                    format!("tenant open failed: {e}").into_bytes(),
                                );
                                break 'conn;
                            }
                        }
                    }
                    None => {
                        stats.record_err();
                        responder.send(STATUS_ERR, HELLO_SEQ, b"malformed hello".to_vec());
                        break 'conn;
                    }
                }
                continue;
            };
            let Some((kind, seq, payload)) = proto::decode_request(&frame) else {
                stats.record_err();
                responder.send(STATUS_ERR, HELLO_SEQ, b"malformed request".to_vec());
                break 'conn;
            };
            match kind {
                KIND_DATA | KIND_UPDATE_MANY | KIND_SEARCH_MANY => {
                    // Threaded mode still copies the payload out of the
                    // decoder's frame; the copy is counted so the hotpath
                    // bench can show what pooled mode saves.
                    stats.record_bytes_copied(payload.len() as u64);
                    let job = Job {
                        tenant: current_tenant.clone(),
                        kind,
                        seq,
                        payload: PooledBuf::from_vec(payload.to_vec()),
                        responder: responder.clone(),
                        accepted: Instant::now(),
                    };
                    match job_tx.try_send(route, job) {
                        Ok(()) => {}
                        Err(_job) => {
                            // Every run queue is full (home and spill
                            // alike). Explicit backpressure: reject now,
                            // let the client retry, never queue
                            // unboundedly.
                            stats.record_busy();
                            if !responder.send(STATUS_BUSY, seq, Vec::new()) {
                                break 'conn;
                            }
                        }
                    }
                }
                KIND_ADMIN => match payload.first().copied() {
                    Some(ADMIN_STATS) => {
                        let snap = shared.full_snapshot().encode();
                        if !responder.send(STATUS_OK, seq, snap) {
                            break 'conn;
                        }
                    }
                    Some(ADMIN_SHUTDOWN) => {
                        responder.send(STATUS_OK, seq, Vec::new());
                        shutdown.request();
                        break 'conn;
                    }
                    _ => {
                        stats.record_err();
                        responder.send(STATUS_ERR, seq, b"unknown admin command".to_vec());
                        break 'conn;
                    }
                },
                _ => {
                    stats.record_err();
                    responder.send(STATUS_ERR, seq, b"unknown request kind".to_vec());
                    break 'conn;
                }
            }
        }
    }
}
