//! Lock-free log-bucketed latency histogram.
//!
//! Sixty-four power-of-two buckets over nanoseconds cover every latency a
//! `u64` can express with ≤ 2× relative error per bucket — plenty for the
//! p50/p95/p99 serving numbers, and recordable from any number of worker
//! threads without a lock (one relaxed atomic increment per sample).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets: one per possible bit length of a `u64` sample.
const BUCKETS: usize = 64;

/// Concurrent latency histogram with logarithmic buckets.
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// New empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample.
    pub fn record(&self, latency: Duration) {
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        // Bucket b holds samples with bit length b+1: [2^b, 2^(b+1)).
        let bucket = (63 - ns.max(1).leading_zeros()) as usize;
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Approximate `q`-quantile in nanoseconds (`q` in `[0, 1]`): the
    /// geometric midpoint of the bucket holding the `ceil(q·n)`-th sample.
    /// Returns 0 when empty.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let snapshot: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, count) in snapshot.iter().enumerate() {
            seen += count;
            if seen >= rank {
                let lo = 1u64 << bucket;
                return lo.saturating_add(lo / 2); // midpoint of [2^b, 2^(b+1))
            }
        }
        u64::MAX
    }
}

/// End-to-end request latency decomposed into its two serving phases:
/// `total` = accept-to-response, `queue` = time spent parked in a run
/// queue waiting for a worker, `service` = time the worker actually
/// spent executing the request. `queue` dominating `total` means the
/// pool (or one hot tenant's home queue) is saturated; `service`
/// dominating means the scheme work itself is the cost — the sched
/// bench reports both so the two regressions can't masquerade as each
/// other.
#[derive(Default)]
pub struct LatencySplit {
    /// Accept-to-response latency (what clients observe server-side).
    pub total: LatencyHistogram,
    /// Run-queue wait: job accepted until a worker dequeued it.
    pub queue: LatencyHistogram,
    /// Worker service time: dequeue until the response was produced.
    pub service: LatencyHistogram,
}

impl LatencySplit {
    /// New empty split.
    #[must_use]
    pub fn new() -> Self {
        LatencySplit::default()
    }

    /// Record one completed request from its two phase durations; the
    /// total is derived so the three histograms can never disagree about
    /// which request they describe.
    pub fn record(&self, queue: Duration, service: Duration) {
        self.total.record(queue.saturating_add(service));
        self.queue.record(queue);
        self.service.record(service);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
    }

    #[test]
    fn quantiles_track_bucket_order() {
        let h = LatencyHistogram::new();
        // 90 fast samples (~1 µs), 10 slow (~1 ms).
        for _ in 0..90 {
            h.record(Duration::from_micros(1));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(1));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ns(0.5);
        let p99 = h.quantile_ns(0.99);
        assert!(p50 < 4_000, "p50 in the microsecond range, got {p50}");
        assert!(p99 > 500_000, "p99 in the millisecond range, got {p99}");
        assert!(p50 <= h.quantile_ns(0.95));
        assert!(h.quantile_ns(0.95) <= p99);
    }

    /// Exact quantile from the full sample set: the `ceil(q·n)`-th order
    /// statistic, matching the histogram's rank definition.
    fn oracle_quantile(samples: &mut [u64], q: f64) -> u64 {
        samples.sort_unstable();
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let rank = (((q * samples.len() as f64).ceil() as usize).max(1)).min(samples.len());
        samples[rank - 1]
    }

    /// Same splitmix64 used by the bench workloads: deterministic samples
    /// without pulling a rand dependency into the test.
    struct SplitMix(u64);

    impl SplitMix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// A bucket spans `[2^b, 2^(b+1))` and reports its midpoint `1.5·2^b`,
    /// so any quantile lands within 2× of the true order statistic — check
    /// that bound against the oracle on both distributions.
    fn assert_within_2x_of_oracle(samples: &mut [u64], label: &str) {
        let h = LatencyHistogram::new();
        for &ns in samples.iter() {
            h.record(Duration::from_nanos(ns));
        }
        assert_eq!(h.count(), samples.len() as u64);
        for q in [0.10, 0.50, 0.90, 0.95, 0.99, 1.0] {
            let exact = oracle_quantile(samples, q);
            let approx = h.quantile_ns(q);
            assert!(
                approx >= exact / 2 && approx <= exact.saturating_mul(2),
                "{label}: q={q}: histogram {approx} vs oracle {exact}"
            );
        }
    }

    #[test]
    fn uniform_quantiles_match_sorted_oracle() {
        let mut rng = SplitMix(0xC0FFEE);
        let mut samples: Vec<u64> = (0..10_000).map(|_| 1 + rng.next() % 10_000_000).collect();
        assert_within_2x_of_oracle(&mut samples, "uniform");
    }

    #[test]
    fn zipf_quantiles_match_sorted_oracle() {
        // Heavy-tailed zipf-like samples via inverse-CDF: most latencies
        // land near 1 µs, a long tail reaches into the seconds — the shape
        // serving latencies actually have.
        let mut rng = SplitMix(0x5EED);
        let mut samples: Vec<u64> = (0..10_000)
            .map(|_| {
                #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
                let u = ((rng.next() >> 11) as f64 / (1u64 << 53) as f64).max(1e-9);
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let ns = (1_000.0 / u) as u64;
                ns.clamp(1, 10_000_000_000)
            })
            .collect();
        assert_within_2x_of_oracle(&mut samples, "zipf");
    }

    #[test]
    fn single_sample_all_quantiles_in_its_bucket() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(700));
        // 700 lies in [512, 1024); every quantile reports that bucket.
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile_ns(q), 512 + 256);
        }
    }

    #[test]
    fn latency_split_phases_sum_into_total() {
        let split = LatencySplit::new();
        // 10 requests: 1 µs queue wait, 1 ms service.
        for _ in 0..10 {
            split.record(Duration::from_micros(1), Duration::from_millis(1));
        }
        assert_eq!(split.total.count(), 10);
        assert_eq!(split.queue.count(), 10);
        assert_eq!(split.service.count(), 10);
        // Queue p50 is microseconds, service p50 milliseconds, and the
        // total tracks the dominant phase.
        assert!(split.queue.quantile_ns(0.5) < 4_000);
        assert!(split.service.quantile_ns(0.5) > 500_000);
        assert!(split.total.quantile_ns(0.5) >= split.service.quantile_ns(0.5));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(Duration::from_nanos(i + 1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}
