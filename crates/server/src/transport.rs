//! [`TcpTransport`] — the daemon-backed implementation of
//! [`sse_net::link::Transport`].
//!
//! Existing scheme clients (`Scheme1Client<T>`, `Scheme2Client<T>`) are
//! generic over the transport, so handing them a `TcpTransport` moves them
//! from an in-process function call to a real socket **without changing a
//! byte of the scheme protocol**: the envelope wraps the same messages the
//! `MeteredLink` path exchanges.
//!
//! `BUSY` responses (bounded-queue backpressure) are retried here with
//! exponential backoff, so schemes never observe them. `DEGRADED`
//! responses (the tenant is read-only while a scrub repairs a storage
//! fault) are likewise retried, honoring the server's retry-after hint
//! bounded by [`DEGRADED_BACKOFF_CAP`] — operations are delayed, never
//! dropped, and both retry kinds share one total deadline.
//!
//! On a broken connection the transport **fails the in-flight operation**
//! (its server-side effect is unknown and the index mutations are not
//! idempotent, so retransmitting could corrupt the index) but re-dials the
//! daemon with bounded exponential backoff + jitter so *subsequent*
//! operations go through once the server is back. [`TcpTransport::reconnects`]
//! and [`TcpTransport::busy_retries`] expose what happened for reporting.

use crate::proto::{
    self, Hello, SchemeId, StatsSnapshot, ADMIN_SHUTDOWN, ADMIN_STATS, HELLO_SEQ, KIND_ADMIN,
    KIND_DATA, KIND_SEARCH_MANY, KIND_UPDATE_MANY, STATUS_BUSY, STATUS_DEGRADED, STATUS_OK,
};
use sse_net::frame::{encode_frame, FrameDecoder};
use sse_net::link::Transport;
use std::io::{Error, ErrorKind, Read, Result, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Initial retry delay after a `BUSY` response.
const BUSY_BACKOFF_START: Duration = Duration::from_millis(1);
/// Backoff ceiling.
const BUSY_BACKOFF_MAX: Duration = Duration::from_millis(64);
/// Default total time budget for `BUSY` retries of one request; past it
/// the request fails with [`ErrorKind::TimedOut`] instead of blocking
/// forever against a permanently saturated daemon. Measured on the
/// **monotonic clock** ([`Instant`]) — a wall-clock jump (NTP step,
/// suspend/resume) must neither cut the budget short nor extend it.
/// Override per transport with [`TcpTransport::with_busy_retry_deadline`].
pub const DEFAULT_BUSY_RETRY_DEADLINE: Duration = Duration::from_secs(10);
/// How many times a broken connection is re-dialed before giving up.
const RECONNECT_ATTEMPTS: u32 = 5;
/// First re-dial delay; doubles per attempt (plus jitter) up to the cap.
const RECONNECT_BACKOFF_START: Duration = Duration::from_millis(10);
/// Re-dial backoff ceiling.
const RECONNECT_BACKOFF_MAX: Duration = Duration::from_millis(200);
/// Ceiling on honoring the server's `DEGRADED` retry-after hint: a
/// buggy or hostile hint must not park the client for minutes.
const DEGRADED_BACKOFF_CAP: Duration = Duration::from_millis(500);

/// A framed TCP connection to one tenant database on an `sse-serverd`.
pub struct TcpTransport {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Resolved peer address, kept for re-dialing after a broken pipe.
    peer: SocketAddr,
    /// Hello replayed on every (re)connection.
    hello: Hello,
    /// Sequence number for the next request; the server echoes it in the
    /// matching response ([`HELLO_SEQ`] is reserved for the handshake).
    next_seq: u32,
    reconnects: u64,
    busy_retries: u64,
    degraded_retries: u64,
    /// Total monotonic time budget for `BUSY` retries of one request.
    busy_retry_deadline: Duration,
}

impl TcpTransport {
    /// Connect and perform the hello handshake for `tenant` over `scheme`.
    ///
    /// # Errors
    /// Connection errors, or a rejected hello.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str, scheme: SchemeId) -> Result<Self> {
        let peer = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| Error::new(ErrorKind::InvalidInput, "address resolved to nothing"))?;
        let hello = Hello {
            tenant: tenant.to_string(),
            scheme,
        };
        let (stream, decoder) = Self::establish(peer, &hello)?;
        Ok(TcpTransport {
            stream,
            decoder,
            peer,
            hello,
            next_seq: HELLO_SEQ.wrapping_add(1),
            reconnects: 0,
            busy_retries: 0,
            degraded_retries: 0,
            busy_retry_deadline: DEFAULT_BUSY_RETRY_DEADLINE,
        })
    }

    /// Replace the `BUSY` retry budget (default
    /// [`DEFAULT_BUSY_RETRY_DEADLINE`]). Tests use a short budget to
    /// exercise the timeout path without waiting ten wall-clock seconds.
    #[must_use]
    pub fn with_busy_retry_deadline(mut self, deadline: Duration) -> Self {
        self.busy_retry_deadline = deadline;
        self
    }

    /// Dial `peer` and run the hello handshake, returning a ready
    /// stream + frame decoder pair.
    fn establish(peer: SocketAddr, hello: &Hello) -> Result<(TcpStream, FrameDecoder)> {
        let mut stream = TcpStream::connect(peer)?;
        stream.set_nodelay(true).ok(); // latency over batching
        let mut decoder = FrameDecoder::new();
        stream.write_all(&encode_frame(&hello.encode()))?;
        let frame = read_frame_from(&mut stream, &mut decoder)?;
        let (status, seq, _payload) = proto::decode_response(&frame)
            .ok_or_else(|| Error::new(ErrorKind::InvalidData, "malformed response frame"))?;
        if status != STATUS_OK || seq != HELLO_SEQ {
            return Err(Error::new(
                ErrorKind::ConnectionRefused,
                "server rejected hello",
            ));
        }
        Ok((stream, decoder))
    }

    /// Re-dial the daemon with bounded exponential backoff + deterministic
    /// jitter, replaying the hello. On success the transport is usable for
    /// *new* requests; the request that exposed the broken connection has
    /// already been failed.
    fn reconnect(&mut self) -> Result<()> {
        let mut delay = RECONNECT_BACKOFF_START;
        let mut last_err = Error::new(ErrorKind::NotConnected, "no reconnect attempted");
        for attempt in 0..RECONNECT_ATTEMPTS {
            // Deterministic jitter (pure function of our own counters) so
            // a herd of clients doesn't re-dial in lock-step.
            let jitter = splitmix64(
                self.reconnects
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(u64::from(attempt)),
            ) % 1_000;
            std::thread::sleep(delay + Duration::from_micros(jitter));
            delay = (delay * 2).min(RECONNECT_BACKOFF_MAX);
            match Self::establish(self.peer, &self.hello) {
                Ok((stream, decoder)) => {
                    self.stream = stream;
                    self.decoder = decoder;
                    // Fresh connection, fresh sequence space.
                    self.next_seq = HELLO_SEQ.wrapping_add(1);
                    self.reconnects += 1;
                    return Ok(());
                }
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// How many times the transport re-established a broken connection.
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// How many `BUSY` responses were absorbed by backoff-and-retry.
    #[must_use]
    pub fn busy_retries(&self) -> u64 {
        self.busy_retries
    }

    /// How many `DEGRADED` rejections were absorbed by backoff-and-retry
    /// (the tenant was read-only while a scrub repaired it; no operation
    /// was dropped).
    #[must_use]
    pub fn degraded_retries(&self) -> u64 {
        self.degraded_retries
    }

    /// Sever the underlying socket (both directions) without touching any
    /// client-side scheme state — the chaos harness's network fault. The
    /// next request fails like a real connection drop and the transport
    /// re-dials per its normal reconnect policy.
    pub fn inject_disconnect(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    fn send_raw(&mut self, body: &[u8]) -> Result<()> {
        self.stream.write_all(&encode_frame(body))
    }

    fn read_frame(&mut self) -> Result<Vec<u8>> {
        read_frame_from(&mut self.stream, &mut self.decoder)
    }

    fn read_response(&mut self) -> Result<(u8, u32, Vec<u8>)> {
        let frame = self.read_frame()?;
        let (status, seq, payload) = proto::decode_response(&frame)
            .ok_or_else(|| Error::new(ErrorKind::InvalidData, "malformed response frame"))?;
        Ok((status, seq, payload.to_vec()))
    }

    /// One request/response exchange, transparently retrying `BUSY` up to
    /// a total deadline. The transport is closed-loop (one outstanding
    /// request), and the response's echoed sequence number is checked
    /// against the request's.
    ///
    /// If the connection breaks mid-round, the round **fails** (its effect
    /// on the server is unknown; `BUSY` is the only status safe to retry,
    /// because a `BUSY` request was never enqueued) but the transport
    /// re-dials in the background of the error path so the *next* request
    /// finds a live connection if the daemon recovered.
    ///
    /// # Errors
    /// I/O errors, a server-reported protocol error, a correlation
    /// mismatch, or [`ErrorKind::TimedOut`] if the server stays `BUSY`
    /// past the retry deadline.
    pub fn request(&mut self, kind: u8, payload: &[u8]) -> Result<Vec<u8>> {
        match self.request_once(kind, payload) {
            Ok(body) => Ok(body),
            Err(e) => {
                if is_connection_error(&e) {
                    // Heal the link for subsequent requests; the in-flight
                    // one stays failed (at-most-once).
                    let _ = self.reconnect();
                }
                Err(e)
            }
        }
    }

    fn request_once(&mut self, kind: u8, payload: &[u8]) -> Result<Vec<u8>> {
        let mut backoff = BUSY_BACKOFF_START;
        // Monotonic deadline: `Instant` is immune to wall-clock steps, so
        // an NTP adjustment mid-retry can neither starve nor inflate the
        // budget (see `busy_deadline_is_monotonic_and_bounded` in
        // tests/tcp_server.rs).
        let started = Instant::now();
        loop {
            let seq = self.next_seq;
            // Skip the reserved hello sequence number on wrap-around.
            self.next_seq = match self.next_seq.wrapping_add(1) {
                HELLO_SEQ => HELLO_SEQ.wrapping_add(1),
                next => next,
            };
            self.send_raw(&proto::encode_request(kind, seq, payload))?;
            let (status, echoed, body) = self.read_response()?;
            if echoed != seq {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    format!("response correlation mismatch: sent seq {seq}, got {echoed}"),
                ));
            }
            match status {
                STATUS_OK => return Ok(body),
                STATUS_BUSY => {
                    if started.elapsed() >= self.busy_retry_deadline {
                        return Err(Error::new(
                            ErrorKind::TimedOut,
                            "server still BUSY after the retry deadline",
                        ));
                    }
                    self.busy_retries += 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(BUSY_BACKOFF_MAX);
                }
                STATUS_DEGRADED => {
                    // A degraded rejection is issued *before* the request
                    // executes, so retrying is as safe as for BUSY. Honor
                    // the server's retry-after hint (bounded — a bad hint
                    // must not park us), under the same total deadline.
                    if started.elapsed() >= self.busy_retry_deadline {
                        return Err(Error::new(
                            ErrorKind::TimedOut,
                            "tenant still degraded after the retry deadline",
                        ));
                    }
                    let hint_ms = proto::decode_degraded(&body).map_or(0, |(ms, _reason)| ms);
                    let wait = Duration::from_millis(u64::from(hint_ms))
                        .max(BUSY_BACKOFF_START)
                        .min(DEGRADED_BACKOFF_CAP);
                    self.degraded_retries += 1;
                    std::thread::sleep(wait);
                }
                _ => {
                    return Err(Error::other(format!(
                        "server error: {}",
                        String::from_utf8_lossy(&body)
                    )))
                }
            }
        }
    }

    /// Query the daemon's serving statistics.
    ///
    /// # Errors
    /// I/O or decode errors.
    pub fn admin_stats(&mut self) -> Result<StatsSnapshot> {
        let body = self.request(KIND_ADMIN, &[ADMIN_STATS])?;
        StatsSnapshot::decode(&body)
            .ok_or_else(|| Error::new(ErrorKind::InvalidData, "bad stats payload"))
    }

    /// Ask the daemon to drain and exit.
    ///
    /// # Errors
    /// I/O errors.
    pub fn admin_shutdown(&mut self) -> Result<()> {
        self.request(KIND_ADMIN, &[ADMIN_SHUTDOWN]).map(|_| ())
    }
}

impl Transport for TcpTransport {
    fn round_trip(&mut self, request: &[u8]) -> Result<Vec<u8>> {
        self.request(KIND_DATA, request)
    }

    /// Ship all parts in one `UPDATE_MANY` round. The server decodes,
    /// validates, and applies the whole batch all-or-nothing with one
    /// journal append per affected index shard, then sends back a single
    /// response body valid for every part (batched mutations acknowledge
    /// identically); it is replicated here so callers see one response
    /// per part, exactly like the sequential default.
    fn round_trip_batch(&mut self, parts: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        if parts.is_empty() {
            return Ok(Vec::new());
        }
        let body = self.request(KIND_UPDATE_MANY, &proto::encode_batch(parts))?;
        Ok(vec![body; parts.len()])
    }

    /// Ship all search parts in one `SEARCH_MANY` round. The daemon fans
    /// the parts out across the tenant's shard snapshots on a scoped
    /// worker pool and answers with a batch of per-part response bodies,
    /// which is unpacked here — position-aligned, exactly like the
    /// sequential default.
    fn round_trip_search_batch(&mut self, parts: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        if parts.is_empty() {
            return Ok(Vec::new());
        }
        let body = self.request(KIND_SEARCH_MANY, &proto::encode_batch(parts))?;
        let responses = proto::decode_batch(&body)
            .ok_or_else(|| Error::new(ErrorKind::InvalidData, "malformed search batch response"))?;
        if responses.len() != parts.len() {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!(
                    "search batch arity mismatch: sent {} parts, got {} responses",
                    parts.len(),
                    responses.len()
                ),
            ));
        }
        Ok(responses.into_iter().map(<[u8]>::to_vec).collect())
    }
}

/// Does this error mean the connection itself is suspect (worth re-dialing)
/// rather than a server-reported application failure?
fn is_connection_error(e: &Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::UnexpectedEof
            | ErrorKind::NotConnected
            | ErrorKind::InvalidData // desynced framing: the stream is unusable
    )
}

/// Pull one complete frame off `stream`, buffering partial reads in
/// `decoder`. Shared by the handshake path (no `self` yet) and the
/// request path.
fn read_frame_from(stream: &mut TcpStream, decoder: &mut FrameDecoder) -> Result<Vec<u8>> {
    let mut buf = [0u8; 16 * 1024];
    loop {
        if let Some(frame) = decoder
            .next_frame()
            .map_err(|e| Error::new(ErrorKind::InvalidData, e.to_string()))?
        {
            return Ok(frame);
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        decoder.push(&buf[..n]);
    }
}

/// SplitMix64 — deterministic jitter source (no RNG dependency).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
