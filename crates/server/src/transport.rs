//! [`TcpTransport`] — the daemon-backed implementation of
//! [`sse_net::link::Transport`].
//!
//! Existing scheme clients (`Scheme1Client<T>`, `Scheme2Client<T>`) are
//! generic over the transport, so handing them a `TcpTransport` moves them
//! from an in-process function call to a real socket **without changing a
//! byte of the scheme protocol**: the envelope wraps the same messages the
//! `MeteredLink` path exchanges.
//!
//! `BUSY` responses (bounded-queue backpressure) are retried here with
//! exponential backoff, so schemes never observe them.

use crate::proto::{
    self, Hello, SchemeId, StatsSnapshot, ADMIN_SHUTDOWN, ADMIN_STATS, HELLO_SEQ, KIND_ADMIN,
    KIND_DATA, STATUS_BUSY, STATUS_OK,
};
use sse_net::frame::{encode_frame, FrameDecoder};
use sse_net::link::Transport;
use std::io::{Error, ErrorKind, Read, Result, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Initial retry delay after a `BUSY` response.
const BUSY_BACKOFF_START: Duration = Duration::from_millis(1);
/// Backoff ceiling.
const BUSY_BACKOFF_MAX: Duration = Duration::from_millis(64);
/// Total time budget for `BUSY` retries of one request; past it the
/// request fails with [`ErrorKind::TimedOut`] instead of blocking forever
/// against a permanently saturated daemon.
const BUSY_RETRY_DEADLINE: Duration = Duration::from_secs(10);

/// A framed TCP connection to one tenant database on an `sse-serverd`.
pub struct TcpTransport {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Sequence number for the next request; the server echoes it in the
    /// matching response ([`HELLO_SEQ`] is reserved for the handshake).
    next_seq: u32,
}

impl TcpTransport {
    /// Connect and perform the hello handshake for `tenant` over `scheme`.
    ///
    /// # Errors
    /// Connection errors, or a rejected hello.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str, scheme: SchemeId) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok(); // latency over batching
        let mut transport = TcpTransport {
            stream,
            decoder: FrameDecoder::new(),
            next_seq: HELLO_SEQ.wrapping_add(1),
        };
        let hello = Hello {
            tenant: tenant.to_string(),
            scheme,
        };
        transport.send_raw(&hello.encode())?;
        let (status, seq, _payload) = transport.read_response()?;
        if status != STATUS_OK || seq != HELLO_SEQ {
            return Err(Error::new(
                ErrorKind::ConnectionRefused,
                "server rejected hello",
            ));
        }
        Ok(transport)
    }

    fn send_raw(&mut self, body: &[u8]) -> Result<()> {
        self.stream.write_all(&encode_frame(body))
    }

    fn read_frame(&mut self) -> Result<Vec<u8>> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(frame) = self
                .decoder
                .next_frame()
                .map_err(|e| Error::new(ErrorKind::InvalidData, e.to_string()))?
            {
                return Ok(frame);
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.decoder.push(&buf[..n]);
        }
    }

    fn read_response(&mut self) -> Result<(u8, u32, Vec<u8>)> {
        let frame = self.read_frame()?;
        let (status, seq, payload) = proto::decode_response(&frame)
            .ok_or_else(|| Error::new(ErrorKind::InvalidData, "malformed response frame"))?;
        Ok((status, seq, payload.to_vec()))
    }

    /// One request/response exchange, transparently retrying `BUSY` up to
    /// a total deadline. The transport is closed-loop (one outstanding
    /// request), and the response's echoed sequence number is checked
    /// against the request's.
    ///
    /// # Errors
    /// I/O errors, a server-reported protocol error, a correlation
    /// mismatch, or [`ErrorKind::TimedOut`] if the server stays `BUSY`
    /// past the retry deadline.
    pub fn request(&mut self, kind: u8, payload: &[u8]) -> Result<Vec<u8>> {
        let mut backoff = BUSY_BACKOFF_START;
        let deadline = Instant::now() + BUSY_RETRY_DEADLINE;
        loop {
            let seq = self.next_seq;
            // Skip the reserved hello sequence number on wrap-around.
            self.next_seq = match self.next_seq.wrapping_add(1) {
                HELLO_SEQ => HELLO_SEQ.wrapping_add(1),
                next => next,
            };
            self.send_raw(&proto::encode_request(kind, seq, payload))?;
            let (status, echoed, body) = self.read_response()?;
            if echoed != seq {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    format!("response correlation mismatch: sent seq {seq}, got {echoed}"),
                ));
            }
            match status {
                STATUS_OK => return Ok(body),
                STATUS_BUSY => {
                    if Instant::now() >= deadline {
                        return Err(Error::new(
                            ErrorKind::TimedOut,
                            "server still BUSY after the retry deadline",
                        ));
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(BUSY_BACKOFF_MAX);
                }
                _ => {
                    return Err(Error::other(format!(
                        "server error: {}",
                        String::from_utf8_lossy(&body)
                    )))
                }
            }
        }
    }

    /// Query the daemon's serving statistics.
    ///
    /// # Errors
    /// I/O or decode errors.
    pub fn admin_stats(&mut self) -> Result<StatsSnapshot> {
        let body = self.request(KIND_ADMIN, &[ADMIN_STATS])?;
        StatsSnapshot::decode(&body)
            .ok_or_else(|| Error::new(ErrorKind::InvalidData, "bad stats payload"))
    }

    /// Ask the daemon to drain and exit.
    ///
    /// # Errors
    /// I/O errors.
    pub fn admin_shutdown(&mut self) -> Result<()> {
        self.request(KIND_ADMIN, &[ADMIN_SHUTDOWN]).map(|_| ())
    }
}

impl Transport for TcpTransport {
    /// Scheme clients assume a reliable link (the in-process transports
    /// cannot fail), so transport-level failures surface as panics here —
    /// the TCP analogue of a broken `Duplex` channel.
    fn round_trip(&mut self, request: &[u8]) -> Vec<u8> {
        self.request(KIND_DATA, request)
            .expect("TCP transport failed")
    }
}
