//! Affinity-sharded worker runtime: per-worker run queues, work
//! stealing, and the spawn-free `SEARCH_MANY` fan-out executor.
//!
//! The daemon used to funnel every request through one shared MPMC
//! channel: correct, but at high concurrency all workers contend on the
//! same queue and a tenant's hot state (Scheme 2 chain-key memo, shard
//! snapshots, shard locks) bounces between whichever cores happen to pop
//! its jobs. This module replaces the channel with a [`Scheduler`]:
//!
//! * **Per-worker bounded run queues.** Worker `w` owns queue `w`; a
//!   submit routes to `hash(tenant) % workers` (the job's *home*), so one
//!   tenant's requests land on one worker and its state stays core-local.
//! * **Work stealing.** An idle worker first drains its own queue, then
//!   steals from the *front* of the busiest other queue — a hot tenant
//!   cannot starve the fleet, and FIFO pops (own or stolen) preserve each
//!   queue's dispatch order.
//! * **Bounded overflow, then BUSY.** A full home queue spills to the
//!   least-loaded queue with room (counted as `spilled`, still
//!   steal-eligible); only when *every* queue is full does the submit
//!   fail and the connection answer `BUSY` — total capacity matches the
//!   old global queue's, so backpressure semantics are unchanged.
//! * **Drain-on-close.** [`JobSender`] handles are counted; when the last
//!   one drops the scheduler is closed and workers exit only after every
//!   queue is empty — the same shutdown contract the crossbeam channel
//!   gave (queued work is served, never abandoned).
//!
//! Ordering note: responses are matched by echoed `seq`, so clients never
//! depend on dispatch order. Still, for one connection's pipelined
//! stream the scheduler dispatches in submit order whenever the stream's
//! jobs stay on one queue (the no-spill steady state): same home queue,
//! FIFO push, FIFO pop/steal. A spill can interleave *across* queues,
//! which the proptest below pins down precisely: no-spill ⇒ no reorder.
//!
//! The second half of the module is [`SearchFanout`]: `SEARCH_MANY`
//! batches used to spawn fresh scoped OS threads per request
//! ([`crate::tenant::TenantDb::search_batch`]); here the owning worker
//! publishes a claimable batch and *idle pool workers* help execute its
//! parts — zero thread spawns in steady state, verified by the
//! `allocmeter` spawn counter and gated in CI.

use crate::proto::SchemeId;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar};
use std::time::Duration;

/// Scheduler observability counters, surfaced through `ADMIN_STATS` and
/// the `sched` bench. One instance per [`Scheduler`], shared by handle.
#[derive(Default)]
pub struct SchedCounters {
    routed: AtomicU64,
    local_hits: AtomicU64,
    stolen: AtomicU64,
    spilled: AtomicU64,
    queue_depth_hw: AtomicU64,
    fanout_batches: AtomicU64,
    fanout_parts_helped: AtomicU64,
}

impl SchedCounters {
    /// Jobs accepted into some run queue (home or spill).
    #[must_use]
    pub fn routed(&self) -> u64 {
        self.routed.load(Ordering::Relaxed)
    }

    /// Jobs popped by their home worker from its own queue — the
    /// affinity wins (`local_hits / routed` is the locality rate).
    #[must_use]
    pub fn local_hits(&self) -> u64 {
        self.local_hits.load(Ordering::Relaxed)
    }

    /// Jobs taken from another worker's queue by an idle worker.
    #[must_use]
    pub fn stolen(&self) -> u64 {
        self.stolen.load(Ordering::Relaxed)
    }

    /// Jobs whose home queue was full and overflowed to the least-loaded
    /// queue with room (still steal-eligible; only all-queues-full is
    /// BUSY).
    #[must_use]
    pub fn spilled(&self) -> u64 {
        self.spilled.load(Ordering::Relaxed)
    }

    /// High-water mark of any single run queue's depth.
    #[must_use]
    pub fn queue_depth_hw(&self) -> u64 {
        self.queue_depth_hw.load(Ordering::Relaxed)
    }

    /// `SEARCH_MANY` batches executed through the persistent fan-out
    /// executor (multi-part batches only; single parts run inline).
    #[must_use]
    pub fn fanout_batches(&self) -> u64 {
        self.fanout_batches.load(Ordering::Relaxed)
    }

    /// Batch parts executed by an idle *helper* worker rather than the
    /// batch's owner — nonzero proves the executor genuinely draws on
    /// the pool instead of spawning threads.
    #[must_use]
    pub fn fanout_parts_helped(&self) -> u64 {
        self.fanout_parts_helped.load(Ordering::Relaxed)
    }

    fn note_depth(&self, depth: u64) {
        self.queue_depth_hw.fetch_max(depth, Ordering::Relaxed);
    }
}

/// Route key for a connection: a stable FNV-1a hash of the tenant name
/// and scheme byte. Computed once at hello; `route % workers` is the
/// job's home queue, so one `(tenant, scheme)` database's requests keep
/// landing on one worker.
#[must_use]
pub fn route_hash(tenant: &str, scheme: SchemeId) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in tenant.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    (h ^ u64::from(scheme.as_u8())).wrapping_mul(PRIME)
}

struct Entry<T> {
    item: T,
    /// The worker index the job was routed *for* (its affinity target),
    /// recorded so a pop can be classified as a local hit even when the
    /// job physically sat in a spill queue.
    home: usize,
}

struct Shard<T> {
    queue: Mutex<VecDeque<Entry<T>>>,
    /// Mirror of `queue.len()`, maintained under the queue lock but
    /// readable without it — the steal scan and the spill target scan
    /// are lock-free.
    depth: AtomicUsize,
}

/// The sharded run-queue scheduler. Generic over the queued item so the
/// deterministic test suite can drive it with plain tokens; the daemon
/// instantiates `Scheduler<Job>`.
pub struct Scheduler<T> {
    shards: Vec<Shard<T>>,
    /// Per-queue bound: `ceil(total_depth / workers)`, so the summed
    /// capacity matches the old single-queue daemon's `queue_depth`.
    per_queue: usize,
    /// `false` routes round-robin instead of by tenant hash — the
    /// global-queue-equivalent baseline arm of the sched bench
    /// (`--no-affinity`), running through this same code path.
    affinity: bool,
    rr: AtomicUsize,
    senders: AtomicUsize,
    /// Wakeup epoch: bumped (under the lock) on every submit, fan-out
    /// publish and close, so a worker that observed epoch `e` and found
    /// nothing runnable can park without racing a concurrent submit.
    epoch: Mutex<u64>,
    parked: Condvar,
    counters: Arc<SchedCounters>,
}

impl<T> Scheduler<T> {
    /// Build a scheduler with `workers` run queues and `total_depth`
    /// summed capacity. Returns the shared scheduler plus the first
    /// [`JobSender`]; workers hold the `Arc` and consume via
    /// [`Scheduler::try_next`], producers clone the sender.
    #[must_use]
    pub fn new(workers: usize, total_depth: usize, affinity: bool) -> (Arc<Self>, JobSender<T>) {
        let workers = workers.max(1);
        let sched = Arc::new(Scheduler {
            shards: (0..workers)
                .map(|_| Shard {
                    queue: Mutex::new(VecDeque::new()),
                    depth: AtomicUsize::new(0),
                })
                .collect(),
            per_queue: total_depth.div_ceil(workers).max(1),
            affinity,
            rr: AtomicUsize::new(0),
            senders: AtomicUsize::new(1),
            epoch: Mutex::new(0),
            parked: Condvar::new(),
            counters: Arc::new(SchedCounters::default()),
        });
        let sender = JobSender {
            sched: sched.clone(),
        };
        (sched, sender)
    }

    /// Number of run queues (== worker threads).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// The shared counters handle (cloned into [`crate::daemon::Shared`]
    /// for the `ADMIN_STATS` overlay).
    #[must_use]
    pub fn counters(&self) -> Arc<SchedCounters> {
        self.counters.clone()
    }

    /// Jobs currently queued across all shards.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.depth.load(Ordering::Relaxed))
            .sum()
    }

    /// `true` once every [`JobSender`] has dropped. Workers exit when
    /// closed *and* drained — never before the backlog is served.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.senders.load(Ordering::Relaxed) == 0
    }

    /// Non-blocking dequeue for worker `me`: own queue front first (a
    /// local hit when the job was routed here), else steal from the
    /// front of the busiest other queue. `None` when nothing is
    /// runnable anywhere.
    #[must_use]
    pub fn try_next(&self, me: usize) -> Option<T> {
        let me = me % self.shards.len();
        {
            let shard = &self.shards[me];
            let mut q = shard.queue.lock();
            if let Some(e) = q.pop_front() {
                shard.depth.store(q.len(), Ordering::Relaxed);
                drop(q);
                if e.home == me {
                    self.counters.local_hits.fetch_add(1, Ordering::Relaxed);
                }
                return Some(e.item);
            }
        }
        loop {
            let mut busiest: Option<(usize, usize)> = None;
            for (i, s) in self.shards.iter().enumerate() {
                if i == me {
                    continue;
                }
                let d = s.depth.load(Ordering::Relaxed);
                if d > 0 && busiest.is_none_or(|(bd, _)| d > bd) {
                    busiest = Some((d, i));
                }
            }
            let (_, victim) = busiest?;
            let shard = &self.shards[victim];
            let mut q = shard.queue.lock();
            if let Some(e) = q.pop_front() {
                shard.depth.store(q.len(), Ordering::Relaxed);
                drop(q);
                self.counters.stolen.fetch_add(1, Ordering::Relaxed);
                return Some(e.item);
            }
            // Raced the owner draining it; rescan (terminates: every
            // failed steal means that queue emptied).
        }
    }

    /// Read the wakeup epoch before probing the queues; pass it to
    /// [`Scheduler::park`] so a submit that lands between probe and park
    /// wakes the worker immediately instead of costing a timeout tick.
    #[must_use]
    pub fn idle_epoch(&self) -> u64 {
        *self.epoch.lock()
    }

    /// Park the calling worker until the epoch moves past `seen` or
    /// `timeout` elapses (the timeout is a liveness backstop, not the
    /// wakeup mechanism).
    pub fn park(&self, seen: u64, timeout: Duration) {
        let e = self.epoch.lock();
        if *e != seen {
            return;
        }
        // The vendored `parking_lot` shim's guard is a `std` guard, so the
        // `std` condvar pairs with it directly; a poisoned wait is treated
        // as a plain wakeup (the epoch re-check on the next loop is what
        // actually decides whether there is work).
        drop(
            self.parked
                .wait_timeout(e, timeout)
                .unwrap_or_else(|p| p.into_inner()),
        );
    }

    /// Bump the epoch and wake every parked worker (submits, fan-out
    /// publishes, sender disconnect).
    pub fn notify_all(&self) {
        let mut e = self.epoch.lock();
        *e = e.wrapping_add(1);
        drop(e);
        self.parked.notify_all();
    }

    fn push_at(&self, idx: usize, home: usize, item: T) -> Result<(), T> {
        let shard = &self.shards[idx];
        let mut q = shard.queue.lock();
        if q.len() >= self.per_queue {
            return Err(item);
        }
        q.push_back(Entry { item, home });
        let depth = q.len();
        shard.depth.store(depth, Ordering::Relaxed);
        drop(q);
        self.counters.note_depth(depth as u64);
        Ok(())
    }

    fn try_send(&self, route: u64, item: T) -> Result<(), T> {
        let n = self.shards.len();
        #[allow(clippy::cast_possible_truncation)]
        let home = if self.affinity {
            (route % n as u64) as usize
        } else {
            self.rr.fetch_add(1, Ordering::Relaxed) % n
        };
        let mut item = match self.push_at(home, home, item) {
            Ok(()) => {
                self.counters.routed.fetch_add(1, Ordering::Relaxed);
                self.notify_all();
                return Ok(());
            }
            Err(back) => back,
        };
        // Home full: spill to the least-loaded queue with room, trying
        // candidates in ascending depth so a racing fill falls through
        // to the next-best instead of bouncing straight to BUSY.
        let mut order: Vec<(usize, usize)> = self
            .shards
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != home)
            .map(|(i, s)| (s.depth.load(Ordering::Relaxed), i))
            .collect();
        order.sort_unstable();
        for (_, i) in order {
            item = match self.push_at(i, home, item) {
                Ok(()) => {
                    self.counters.routed.fetch_add(1, Ordering::Relaxed);
                    self.counters.spilled.fetch_add(1, Ordering::Relaxed);
                    self.notify_all();
                    return Ok(());
                }
                Err(back) => back,
            };
        }
        // Every queue full: the caller answers BUSY, exactly as the old
        // global queue did at the same total depth.
        Err(item)
    }
}

/// Counted producer handle for a [`Scheduler`]. Cloning registers a
/// producer; dropping the last one closes the scheduler (workers drain
/// the backlog, then exit) — the disconnect contract the crossbeam
/// sender used to provide.
pub struct JobSender<T> {
    sched: Arc<Scheduler<T>>,
}

impl<T> JobSender<T> {
    /// Submit one item routed by `route`. On `Err` every queue was full;
    /// the item comes back so the caller can answer `BUSY` (or retry).
    ///
    /// # Errors
    /// The item itself, when all run queues are at capacity.
    pub fn try_send(&self, route: u64, item: T) -> Result<(), T> {
        self.sched.try_send(route, item)
    }
}

impl<T> Clone for JobSender<T> {
    fn clone(&self) -> Self {
        self.sched.senders.fetch_add(1, Ordering::Relaxed);
        JobSender {
            sched: self.sched.clone(),
        }
    }
}

impl<T> Drop for JobSender<T> {
    fn drop(&mut self) {
        if self.sched.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last producer gone: wake every parked worker so it can
            // observe closed+drained and exit.
            self.sched.notify_all();
        }
    }
}

// ---------------------------------------------------------------------
// The spawn-free SEARCH_MANY fan-out executor.
// ---------------------------------------------------------------------

use crate::daemon::Job;
use crate::tenant::{fanout_limit, TenantHandle};
use sse_net::pool::PooledBuf;

struct FanoutState {
    results: Vec<Vec<u8>>,
    done: usize,
}

/// One published `SEARCH_MANY` batch: parts are claimed by atomic
/// counter (owner and helpers alike), results land position-aligned,
/// and the owner condvar-waits for the last part.
struct FanoutBatch {
    tenant: TenantHandle,
    /// The whole request payload (a pooled zero-copy view in reactor
    /// mode); parts are sub-ranges of it, so helpers never copy bytes.
    payload: Arc<PooledBuf>,
    ranges: Vec<Range<usize>>,
    next: AtomicUsize,
    /// Concurrent helpers are capped at `fanout - 1`: the owner *is*
    /// participant number one, counted exactly once (the legacy scoped
    /// pool sized this same way — see `fanout_limit`).
    max_helpers: usize,
    helpers: AtomicUsize,
    state: Mutex<FanoutState>,
    finished: Condvar,
}

impl FanoutBatch {
    /// Claim and execute one part. `false` when every part is claimed
    /// (the batch may still be finishing on other workers).
    fn claim_and_run(&self) -> bool {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        let Some(range) = self.ranges.get(i) else {
            return false;
        };
        // Per-part panics become that part's protocol error inside
        // `handle_part_caught`, so `done` always reaches `len` and the
        // owner can never wait forever.
        let resp = self.tenant.handle_part_caught(&self.payload[range.clone()]);
        let mut st = self.state.lock();
        st.results[i] = resp;
        st.done += 1;
        if st.done == self.ranges.len() {
            drop(st);
            self.finished.notify_all();
        }
        true
    }

    fn has_unclaimed(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.ranges.len()
    }

    fn wait_done(&self) -> Vec<Vec<u8>> {
        let mut st = self.state.lock();
        while st.done < self.ranges.len() {
            st = self.finished.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        std::mem::take(&mut st.results)
    }
}

/// The persistent fan-out executor: `SEARCH_MANY` batches are published
/// here by the worker that dequeued them, and *idle* pool workers (no
/// runnable job anywhere) pick up parts — replacing the per-request
/// `std::thread::scope` spawns with a spawn-free steady state.
pub(crate) struct SearchFanout {
    sched: Arc<Scheduler<Job>>,
    active: Mutex<Vec<Arc<FanoutBatch>>>,
    counters: Arc<SchedCounters>,
}

impl SearchFanout {
    pub(crate) fn new(sched: Arc<Scheduler<Job>>) -> SearchFanout {
        let counters = sched.counters();
        SearchFanout {
            sched,
            active: Mutex::new(Vec::new()),
            counters,
        }
    }

    /// Serve one `SEARCH_MANY` payload on the calling worker, drawing
    /// idle pool workers in as helpers. Returns the position-aligned
    /// response batch, or `None` for a malformed batch envelope.
    pub(crate) fn search_many(&self, tenant: &TenantHandle, payload: PooledBuf) -> Option<Vec<u8>> {
        let ranges = crate::proto::decode_batch_ranges(&payload)?;
        // Participants are pool workers (the owner plus idle helpers),
        // not fresh threads, so the pool size — not the machine's core
        // count — is the honest cap: a 4-worker daemon on one core still
        // interleaves helpers, and the legacy spawn path's core cap
        // would wrongly serialize it.
        let fanout = fanout_limit(ranges.len(), self.sched.workers());
        if fanout <= 1 {
            // Single part (or single core): no parallelism to win, skip
            // the publish/claim machinery entirely.
            let responses: Vec<Vec<u8>> = ranges
                .iter()
                .map(|r| tenant.handle_part_caught(&payload[r.clone()]))
                .collect();
            return Some(crate::proto::encode_batch(&responses));
        }
        let len = ranges.len();
        let batch = Arc::new(FanoutBatch {
            tenant: tenant.clone(),
            payload: Arc::new(payload),
            ranges,
            next: AtomicUsize::new(0),
            max_helpers: fanout - 1,
            helpers: AtomicUsize::new(0),
            state: Mutex::new(FanoutState {
                results: vec![Vec::new(); len],
                done: 0,
            }),
            finished: Condvar::new(),
        });
        self.counters.fanout_batches.fetch_add(1, Ordering::Relaxed);
        self.active.lock().push(batch.clone());
        // Wake parked workers so they find the batch via `try_help`.
        self.sched.notify_all();
        // The owner participates in its own claim loop — one of the
        // `fanout` slots, occupied exactly once.
        while batch.claim_and_run() {}
        self.retire(&batch);
        let results = batch.wait_done();
        Some(crate::proto::encode_batch(&results))
    }

    /// Called by an idle worker (empty queues, nothing stealable): claim
    /// parts of the neediest active batch until none remain. `true` if
    /// any part was executed.
    pub(crate) fn try_help(&self) -> bool {
        let batch = {
            let active = self.active.lock();
            active
                .iter()
                .find(|b| b.has_unclaimed() && b.helpers.load(Ordering::Relaxed) < b.max_helpers)
                .cloned()
        };
        let Some(batch) = batch else {
            return false;
        };
        // Re-check the helper cap under a real reservation: the owner's
        // slot plus `max_helpers` concurrent helpers never exceeds the
        // batch's sized fan-out.
        if batch.helpers.fetch_add(1, Ordering::AcqRel) >= batch.max_helpers {
            batch.helpers.fetch_sub(1, Ordering::AcqRel);
            return false;
        }
        let mut helped = false;
        while batch.claim_and_run() {
            helped = true;
            self.counters
                .fanout_parts_helped
                .fetch_add(1, Ordering::Relaxed);
        }
        batch.helpers.fetch_sub(1, Ordering::AcqRel);
        helped
    }

    fn retire(&self, batch: &Arc<FanoutBatch>) {
        self.active.lock().retain(|b| !Arc::ptr_eq(b, batch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic tagging: each token remembers the route it was
    /// submitted under, so tests can verify affinity by worker id.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Tok {
        route: u64,
        seq: u32,
    }

    fn send(tx: &JobSender<Tok>, route: u64, seq: u32) {
        tx.try_send(route, Tok { route, seq }).expect("queue room");
    }

    #[test]
    fn affinity_routes_a_tenant_to_one_worker() {
        let (sched, tx) = Scheduler::new(4, 64, true);
        // Worker-id tagging: route r lands on queue r % 4, and only
        // that worker sees it as a local pop.
        for r in 0..4u64 {
            send(&tx, r, 1);
        }
        for me in 0..4usize {
            let tok = sched.try_next(me).expect("one job per worker");
            assert_eq!(tok.route as usize % 4, me, "job served by its home");
        }
        assert_eq!(sched.counters().local_hits(), 4);
        assert_eq!(sched.counters().stolen(), 0);
        assert_eq!(sched.counters().routed(), 4);
    }

    #[test]
    fn no_affinity_round_robins_across_queues() {
        let (sched, tx) = Scheduler::new(4, 64, false);
        // Same route every time; round-robin spreads it anyway.
        for seq in 0..8 {
            send(&tx, 7, seq);
        }
        for me in 0..4usize {
            assert_eq!(
                sched.shards[me].depth.load(Ordering::Relaxed),
                2,
                "round-robin balanced the single-tenant stream"
            );
        }
    }

    #[test]
    fn stalled_worker_has_its_backlog_stolen() {
        let (sched, tx) = Scheduler::new(4, 64, true);
        // Scripted stall: worker 1 never calls try_next. Route six jobs
        // home to it, then let worker 3 run.
        for seq in 0..6 {
            send(&tx, 1, seq);
        }
        let mut got = Vec::new();
        while let Some(tok) = sched.try_next(3) {
            got.push(tok.seq);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5], "stolen in FIFO order");
        assert_eq!(sched.counters().stolen(), 6);
        assert_eq!(sched.counters().local_hits(), 0);
    }

    #[test]
    fn steal_prefers_the_busiest_queue() {
        let (sched, tx) = Scheduler::new(3, 64, true);
        send(&tx, 0, 0); // one job home to worker 0
        for seq in 0..4 {
            send(&tx, 1, seq); // four jobs home to worker 1
        }
        // Worker 2 is idle: its first steal must come from queue 1.
        let tok = sched.try_next(2).expect("stealable work");
        assert_eq!(tok.route, 1, "stole from the deepest backlog");
    }

    #[test]
    fn overflow_spills_before_busy_and_busy_only_when_all_full() {
        // 2 workers, total depth 4 => per-queue bound 2.
        let (sched, tx) = Scheduler::new(2, 4, true);
        // Four jobs all routed to worker 0: two fit at home, two spill.
        for seq in 0..4 {
            send(&tx, 0, seq);
        }
        assert_eq!(sched.counters().spilled(), 2);
        assert_eq!(sched.queued(), 4);
        // Fifth: every queue full => BUSY, and the item comes back.
        let back = tx.try_send(0, Tok { route: 0, seq: 4 }).unwrap_err();
        assert_eq!(back.seq, 4);
        // Capacity matches the old global queue: drain one, room returns.
        assert!(sched.try_next(0).is_some());
        assert!(tx.try_send(0, Tok { route: 0, seq: 5 }).is_ok());
        assert_eq!(sched.counters().queue_depth_hw(), 2);
    }

    #[test]
    fn spilled_jobs_are_steal_eligible_and_fifo_per_queue() {
        let (sched, tx) = Scheduler::new(2, 4, true);
        for seq in 0..4 {
            send(&tx, 0, seq);
        }
        // Worker 1 drains its spill queue (seqs 2,3 in order), then
        // steals worker 0's backlog (seqs 0,1 in order).
        let order: Vec<u32> = std::iter::from_fn(|| sched.try_next(1).map(|t| t.seq)).collect();
        assert_eq!(order, vec![2, 3, 0, 1]);
        // Spill pops are neither local hits (home was 0) nor steals.
        assert_eq!(sched.counters().stolen(), 2);
        assert_eq!(sched.counters().local_hits(), 0);
    }

    #[test]
    fn close_drains_then_signals_empty() {
        let (sched, tx) = Scheduler::new(2, 8, true);
        send(&tx, 0, 0);
        send(&tx, 1, 1);
        let tx2 = tx.clone();
        drop(tx);
        assert!(!sched.is_closed(), "a clone still holds the scheduler open");
        drop(tx2);
        assert!(sched.is_closed());
        // Closed but not drained: the backlog is still served.
        assert_eq!(sched.queued(), 2);
        assert!(sched.try_next(0).is_some());
        assert!(sched.try_next(1).is_some());
        assert_eq!(sched.queued(), 0);
        assert!(sched.try_next(0).is_none());
    }

    #[test]
    fn park_returns_immediately_when_epoch_moved() {
        let (sched, tx) = Scheduler::new(1, 8, true);
        let seen = sched.idle_epoch();
        send(&tx, 0, 0); // bumps the epoch
        let started = std::time::Instant::now();
        sched.park(seen, Duration::from_secs(10));
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "stale epoch must not block"
        );
    }

    #[test]
    fn route_hash_is_stable_and_scheme_sensitive() {
        let a = route_hash("tenant-a", SchemeId::Scheme2);
        assert_eq!(a, route_hash("tenant-a", SchemeId::Scheme2));
        assert_ne!(a, route_hash("tenant-a", SchemeId::Scheme1));
        assert_ne!(a, route_hash("tenant-b", SchemeId::Scheme2));
    }

    proptest! {
        /// Tenant-affinity routing never reorders one connection's seq
        /// stream: under any interleaving of worker pops (own-queue pops
        /// and steals alike) with ample capacity (no spills), each
        /// connection's jobs are dispatched in submit order. Responses
        /// are additionally seq-matched on the wire; this pins down the
        /// stronger dispatch-order property.
        #[test]
        fn affinity_routing_preserves_per_connection_dispatch_order(
            conn_routes in proptest::collection::vec(0u64..6, 1..5),
            submits in proptest::collection::vec(0usize..5, 1..60),
            pops in proptest::collection::vec(0usize..4, 0..200),
        ) {
            let (sched, tx) = Scheduler::new(4, 1024, true);
            let mut next_seq = vec![0u32; conn_routes.len()];
            #[derive(Clone, Debug)]
            struct Item { conn: usize, seq: u32 }
            let mut submitted = 0usize;
            for &c in &submits {
                let conn = c % conn_routes.len();
                let seq = next_seq[conn];
                next_seq[conn] += 1;
                prop_assert!(tx
                    .try_send(conn_routes[conn], Item { conn, seq })
                    .is_ok());
                submitted += 1;
            }
            prop_assert_eq!(sched.counters().spilled(), 0);
            // Random worker interleaving, then a full drain so every
            // job's dispatch position is observed.
            let mut dispatched: Vec<Item> = Vec::new();
            for &w in &pops {
                if let Some(item) = sched.try_next(w) {
                    dispatched.push(item);
                }
            }
            for w in 0..4 {
                while let Some(item) = sched.try_next(w) {
                    dispatched.push(item);
                }
            }
            prop_assert_eq!(dispatched.len(), submitted);
            let mut last_seen = vec![None::<u32>; conn_routes.len()];
            for item in &dispatched {
                if let Some(prev) = last_seen[item.conn] {
                    prop_assert!(
                        item.seq > prev,
                        "conn {} dispatched seq {} after {}",
                        item.conn, item.seq, prev
                    );
                }
                last_seen[item.conn] = Some(item.seq);
            }
        }
    }
}
