//! Multi-tenant routing: one scheme server per `(tenant, scheme)` pair.
//!
//! The hello frame names a tenant; the registry lazily creates that
//! tenant's server-side state on first use and hands out a shared handle.
//! Requests for the same tenant serialize on the tenant's mutex (the
//! scheme servers are sequential state machines); requests for different
//! tenants run on different worker threads concurrently.
//!
//! With a data directory the registry becomes **durable**: each
//! `(tenant, scheme)` database lives under
//! `data_dir/<encoded-tenant>/s1|s2/`, is opened via
//! `open_durable_with_vfs` (replaying any WAL left by a crash), is
//! re-opened eagerly on daemon restart ([`TenantRegistry::preopen_existing`])
//! and is checkpointed by [`TenantRegistry::checkpoint_all`] on graceful
//! shutdown. Tenant names are arbitrary UTF-8; directory names use a
//! reversible percent-encoding restricted to `[A-Za-z0-9_-]`.

use crate::proto::SchemeId;
use parking_lot::Mutex;
use sse_core::commit::CommitCounters;
use sse_core::error::SseError;
use sse_core::health::{HealthState, ScrubFindings, TenantHealth};
use sse_core::journal::ServerRecovery;
use sse_core::scheme1::Scheme1Server;
use sse_core::scheme2::{Scheme2Config, Scheme2Server};
use sse_net::link::Service;
use sse_storage::{BackendCounters, BackendKind, RealVfs, Vfs};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Upper bound on workers serving one `SEARCH_MANY` batch, the calling
/// worker included. Small batches use one participant per part; larger
/// batches share.
const SEARCH_FANOUT: usize = 8;

/// Size the fan-out for a `SEARCH_MANY` batch of `parts` parts on
/// `cores` cores: the number of *participants*, with the calling worker
/// counted exactly once as participant number one. Helpers beyond the
/// caller are therefore `fanout_limit(..) - 1` — both the legacy scoped
/// pool below and the persistent executor in [`crate::sched`] size from
/// this single definition, so the caller's slot can no longer be
/// double-counted by capping helpers and participants independently.
pub(crate) fn fanout_limit(parts: usize, cores: usize) -> usize {
    parts.min(SEARCH_FANOUT).min(cores.max(1))
}

/// Cached core count. `std::thread::available_parallelism` re-reads the
/// cgroup filesystem on every call (tens of microseconds — more than a
/// memo-hit search), so resolve it once per process.
pub(crate) fn machine_parallelism() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES
        .get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// Search-memo counters summed over one tenant database (or, via
/// [`TenantRegistry::search_cache_counters`], over all of them).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchCacheCounters {
    /// Repeat searches answered from the per-shard chain-key memo.
    pub hits: u64,
    /// Memo-eligible searches that took the cold path.
    pub misses: u64,
    /// Forward hash-chain steps avoided by memo hits.
    pub walk_steps_saved: u64,
}

impl SearchCacheCounters {
    /// Element-wise accumulate.
    pub fn merge(&mut self, other: &SearchCacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.walk_steps_saved += other.walk_steps_saved;
    }
}

/// Health transition counts and current-state tallies summed over one
/// registry's open tenant databases (the STATS health block).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthCounters {
    /// `Healthy → Degraded` transitions.
    pub degradations: u64,
    /// `Degraded → Healthy` scrub recoveries.
    pub recoveries: u64,
    /// `→ Quarantined` transitions.
    pub quarantines: u64,
    /// Tenants currently `Degraded`.
    pub tenants_degraded: u64,
    /// Tenants currently `Quarantined`.
    pub tenants_quarantined: u64,
}

/// One tenant's scheme server — the concrete state behind a handle, kept
/// as an enum (not `Box<dyn Service>`) so the registry can reach
/// scheme-specific operations like checkpointing.
pub enum TenantDb {
    /// A Scheme 1 (XOR-masked bit-array index) server.
    S1(Scheme1Server),
    /// A Scheme 2 (hash-chain generation list) server.
    S2(Scheme2Server),
}

impl TenantDb {
    /// Checkpoint to the database's home directory (no-op for in-memory
    /// tenants, which have no home).
    ///
    /// # Errors
    /// Storage errors from the snapshot write.
    pub fn checkpoint_home(&self) -> Result<(), SseError> {
        match self {
            TenantDb::S1(s) => s.checkpoint_home(),
            TenantDb::S2(s) => s.checkpoint_home(),
        }
    }

    /// What recovery work the open performed.
    #[must_use]
    pub fn recovery(&self) -> ServerRecovery {
        match self {
            TenantDb::S1(s) => s.recovery(),
            TenantDb::S2(s) => s.recovery(),
        }
    }

    /// This database's health cell (shared with the scheme server's
    /// mutation error sites and the scrub thread).
    #[must_use]
    pub fn health(&self) -> &Arc<TenantHealth> {
        match self {
            TenantDb::S1(s) => s.health(),
            TenantDb::S2(s) => s.health(),
        }
    }

    /// Repair a degraded database under quiescence: checkpoint the
    /// current applied state and start fresh journals, then probe-promote
    /// back to `Healthy`. See the scheme servers' `repair` docs.
    ///
    /// # Errors
    /// Storage errors if the underlying fault persists (the database
    /// stays `Degraded`; the next scrub pass retries).
    pub fn repair(&self) -> Result<(), SseError> {
        match self {
            TenantDb::S1(s) => s.repair(),
            TenantDb::S2(s) => s.repair(),
        }
    }

    /// Checksum-verify every on-disk artifact of this database (scrub
    /// integrity pass). See the scheme servers' `verify_files` docs.
    ///
    /// # Errors
    /// `StorageError::Corrupt` on confirmed corruption (the scrub
    /// quarantines); other storage errors are transient.
    pub fn verify_files(&self) -> Result<ScrubFindings, SseError> {
        match self {
            TenantDb::S1(s) => s.verify_files(),
            TenantDb::S2(s) => s.verify_files(),
        }
    }

    /// Whether an envelope request would mutate this database — the
    /// routing predicate for degraded (read-only) serving. `UPDATE_MANY`
    /// is always a mutation and `SEARCH_MANY` never is; for `DATA` the
    /// scheme request tag (first payload byte) decides. Unknown and empty
    /// payloads classify as mutations: the scheme server will reject them
    /// anyway, and a degraded tenant must fail closed, not execute a
    /// request the classifier could not read.
    #[must_use]
    pub fn is_mutation(&self, kind: u8, payload: &[u8]) -> bool {
        match kind {
            crate::proto::KIND_UPDATE_MANY => true,
            crate::proto::KIND_SEARCH_MANY => false,
            crate::proto::KIND_DATA => {
                let Some(&tag) = payload.first() else {
                    return true;
                };
                match self {
                    TenantDb::S1(_) => {
                        use sse_core::scheme1::REQ_TAGS as t1;
                        !matches!(
                            tag,
                            t1::GET_NONCES
                                | t1::SEARCH_FIND
                                | t1::SEARCH_REVEAL
                                | t1::SEARCH_REVEAL_MANY
                                | t1::EXPORT_INDEX
                        )
                    }
                    TenantDb::S2(_) => {
                        use sse_core::scheme2::protocol::req as t2;
                        !matches!(tag, t2::SEARCH | t2::SEARCH_MANY)
                    }
                }
            }
            _ => true,
        }
    }

    /// Serve one scheme request. Safe to call from many worker threads at
    /// once: the scheme servers lock per index shard internally, so
    /// requests touching distinct shards genuinely run in parallel.
    #[must_use]
    pub fn handle_shared(&self, request: &[u8]) -> Vec<u8> {
        match self {
            TenantDb::S1(s) => s.handle_shared(request),
            TenantDb::S2(s) => s.handle_shared(request),
        }
    }

    /// [`Self::handle_shared`] with a recycled response buffer: the
    /// scheme's hot search branch encodes into `scratch` (capacity
    /// reused, contents discarded), so a pool-acquired buffer makes the
    /// steady-state search response allocation-free.
    #[must_use]
    pub fn handle_shared_with(&self, request: &[u8], scratch: Vec<u8>) -> Vec<u8> {
        match self {
            TenantDb::S1(s) => s.handle_shared_with(request, scratch),
            TenantDb::S2(s) => s.handle_shared_with(request, scratch),
        }
    }

    /// Apply an `UPDATE_MANY` batch of mutation parts all-or-nothing (one
    /// journal append per affected shard; racing searches see either none
    /// or all of the batch). Returns a single scheme response valid for
    /// every part.
    #[must_use]
    pub fn apply_batch(&self, parts: &[&[u8]]) -> Vec<u8> {
        match self {
            TenantDb::S1(s) => s.apply_batch(parts),
            TenantDb::S2(s) => s.apply_batch(parts),
        }
    }

    /// Serve a `SEARCH_MANY` batch: fan the parts out across a small
    /// scoped worker pool (at most [`SEARCH_FANOUT`] participants, the
    /// caller included), each part an independent scheme request resolved
    /// against the shard snapshots. Work is claimed by atomic counter so
    /// uneven per-keyword costs balance, and the response batch is
    /// position-aligned with the request parts.
    ///
    /// This is the legacy spawn-per-batch path, kept for callers outside
    /// the daemon worker pool (thread-per-connection mode has no pool to
    /// draw helpers from). The daemon routes `SEARCH_MANY` through the
    /// spawn-free [`crate::sched::SearchFanout`] executor instead.
    #[must_use]
    pub fn search_batch(&self, parts: &[&[u8]]) -> Vec<u8> {
        let mut responses: Vec<Vec<u8>> = vec![Vec::new(); parts.len()];
        // Snapshot searches are pure CPU (no blocking I/O), so threads
        // beyond the machine's cores only add spawn and switch overhead —
        // on a single-core host the whole batch stays on this thread and
        // the win is purely the amortized round trip.
        let fanout = fanout_limit(parts.len(), machine_parallelism());
        if fanout <= 1 {
            for (slot, part) in responses.iter_mut().zip(parts) {
                *slot = self.handle_part_caught(part);
            }
            return crate::proto::encode_batch(&responses);
        }
        let next = AtomicUsize::new(0);
        let claim = |next: &AtomicUsize| {
            let mut mine: Vec<(usize, Vec<u8>)> = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(part) = parts.get(i) else { break };
                mine.push((i, self.handle_part_caught(part)));
            }
            mine
        };
        std::thread::scope(|s| {
            // The calling thread is participant one of `fanout`, so a
            // batch costs exactly `fanout - 1` spawns — counted so the
            // sched bench can prove the daemon path spawns none.
            let handles: Vec<_> = (1..fanout)
                .map(|_| {
                    allocmeter::note_thread_spawn();
                    let next = &next;
                    s.spawn(move || claim(next))
                })
                .collect();
            for (i, resp) in claim(&next) {
                responses[i] = resp;
            }
            for handle in handles {
                // A panic that escaped the per-part catch (e.g. in the
                // claim loop's own bookkeeping) must not take down the
                // connection: its claimed slots are healed below.
                if let Ok(list) = handle.join() {
                    for (i, resp) in list {
                        responses[i] = resp;
                    }
                }
            }
        });
        // Every legitimate scheme response starts with a tag byte, so an
        // empty slot can only mean its worker died before reporting.
        for slot in &mut responses {
            if slot.is_empty() {
                *slot = self.scheme_error("internal error: search fan-out worker panicked");
            }
        }
        crate::proto::encode_batch(&responses)
    }

    /// Serve one fan-out part, converting a scheme-server panic into that
    /// part's protocol error instead of unwinding through the pool — one
    /// poisoned part must not kill the other parts or the connection.
    /// Shared with the persistent executor in [`crate::sched`], whose
    /// owner-waits rely on every claimed part reporting a result.
    pub(crate) fn handle_part_caught(&self, part: &[u8]) -> Vec<u8> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.handle_shared(part)))
            .unwrap_or_else(|_| self.scheme_error("internal error: search fan-out worker panicked"))
    }

    /// Encode `msg` as this scheme's wire error response.
    fn scheme_error(&self, msg: &str) -> Vec<u8> {
        match self {
            TenantDb::S1(_) => sse_core::scheme1::protocol::encode_error(msg),
            TenantDb::S2(_) => sse_core::proto_common::encode_error(msg),
        }
    }

    /// Search-memo counters (hits, misses, chain steps saved). Scheme 1
    /// has no server-side search cache, so its counters are always zero.
    #[must_use]
    pub fn search_cache_counters(&self) -> SearchCacheCounters {
        match self {
            TenantDb::S1(_) => SearchCacheCounters::default(),
            TenantDb::S2(s) => {
                let stats = s.stats();
                SearchCacheCounters {
                    hits: stats.cache_hits,
                    misses: stats.cache_misses,
                    walk_steps_saved: stats.walk_steps_saved,
                }
            }
        }
    }

    /// Per-shard contended lock acquisitions.
    #[must_use]
    pub fn shard_contention(&self) -> Vec<u64> {
        match self {
            TenantDb::S1(s) => s.shard_contention(),
            TenantDb::S2(s) => s.shard_contention(),
        }
    }

    /// Group-commit pipeline counters for this database.
    #[must_use]
    pub fn commit_counters(&self) -> CommitCounters {
        match self {
            TenantDb::S1(s) => s.commit_counters(),
            TenantDb::S2(s) => s.commit_counters(),
        }
    }

    /// The storage backend persisting this database.
    #[must_use]
    pub fn backend(&self) -> BackendKind {
        match self {
            TenantDb::S1(s) => s.backend(),
            TenantDb::S2(s) => s.backend(),
        }
    }

    /// Per-backend storage counters (runs, compactions, bloom hit rates;
    /// all zero under the btree backend).
    #[must_use]
    pub fn backend_counters(&self) -> BackendCounters {
        match self {
            TenantDb::S1(s) => s.backend_counters(),
            TenantDb::S2(s) => s.backend_counters(),
        }
    }
}

impl Service for TenantDb {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        self.handle_shared(request)
    }

    fn on_shutdown(&mut self) {
        match self {
            TenantDb::S1(s) => s.on_shutdown(),
            TenantDb::S2(s) => s.on_shutdown(),
        }
    }
}

/// Shared handle to one tenant's scheme server. No outer mutex: the scheme
/// servers synchronize internally per index shard, which is what lets the
/// daemon's workers execute requests for one tenant concurrently.
pub type TenantHandle = Arc<TenantDb>;

/// Server-side parameters for newly created tenant databases.
#[derive(Clone, Copy, Debug)]
pub struct TenantParams {
    /// Scheme 1 bit-array capacity in documents (fixed at setup by the
    /// paper's design; clients must encode against the same capacity).
    pub scheme1_capacity: u64,
    /// Scheme 2 hash-chain length `l`.
    pub scheme2_chain_length: u64,
    /// Index shards per tenant database (fixed at directory creation for
    /// durable tenants; see the shard manifest).
    pub shards: usize,
    /// Whether durable tenants batch concurrent journal records into
    /// shared-fsync commit groups (`false` ⇒ one fsync per mutation, the
    /// benchmark's baseline arm). Durability semantics are identical.
    pub group_commit: bool,
    /// Storage backend for durable tenants (fixed per tenant directory at
    /// creation, recorded in `backend.meta`; reopening an existing
    /// directory under a different backend is a clean error). Ignored in
    /// in-memory mode.
    pub backend: BackendKind,
}

impl Default for TenantParams {
    fn default() -> Self {
        TenantParams {
            scheme1_capacity: 4096,
            scheme2_chain_length: 4096,
            shards: 1,
            group_commit: true,
            backend: BackendKind::Btree,
        }
    }
}

/// Lazily populated map from `(tenant, scheme)` to server state.
pub struct TenantRegistry {
    params: TenantParams,
    /// `Some` ⇒ durable mode: tenants live on disk under this directory.
    data_dir: Option<PathBuf>,
    vfs: Arc<dyn Vfs>,
    tenants: Mutex<HashMap<(String, SchemeId), TenantHandle>>,
    /// Tenant opens that had to replay WAL records or truncate torn tails.
    wal_recoveries: AtomicU64,
    /// Total bytes of torn log tails truncated across all tenant opens.
    torn_tails_truncated: AtomicU64,
}

impl TenantRegistry {
    /// Empty in-memory registry creating tenants with `params`.
    #[must_use]
    pub fn new(params: TenantParams) -> Self {
        TenantRegistry {
            params,
            data_dir: None,
            vfs: RealVfs::arc(),
            tenants: Mutex::new(HashMap::new()),
            wal_recoveries: AtomicU64::new(0),
            torn_tails_truncated: AtomicU64::new(0),
        }
    }

    /// Durable registry: tenants are opened from / persisted to
    /// `data_dir`, with all file I/O routed through `vfs` (pass a
    /// `FaultVfs` to torture-test the serving stack).
    #[must_use]
    pub fn durable(params: TenantParams, data_dir: PathBuf, vfs: Arc<dyn Vfs>) -> Self {
        TenantRegistry {
            params,
            data_dir: Some(data_dir),
            vfs,
            tenants: Mutex::new(HashMap::new()),
            wal_recoveries: AtomicU64::new(0),
            torn_tails_truncated: AtomicU64::new(0),
        }
    }

    /// Whether tenants persist to disk.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.data_dir.is_some()
    }

    /// Fetch a tenant's server, creating it (in-memory mode) or opening it
    /// from disk (durable mode, replaying any crash-left WAL) on first
    /// reference.
    ///
    /// # Errors
    /// Durable mode only: storage errors from the open/recovery path.
    pub fn get_or_create(&self, tenant: &str, scheme: SchemeId) -> Result<TenantHandle, SseError> {
        let mut map = self.tenants.lock();
        if let Some(handle) = map.get(&(tenant.to_string(), scheme)) {
            return Ok(handle.clone());
        }
        let db = self.open_tenant(tenant, scheme)?;
        self.note_recovery(&db.recovery());
        let handle = Arc::new(db);
        map.insert((tenant.to_string(), scheme), handle.clone());
        Ok(handle)
    }

    fn open_tenant(&self, tenant: &str, scheme: SchemeId) -> Result<TenantDb, SseError> {
        let shards = self.params.shards.max(1);
        match &self.data_dir {
            None => Ok(match scheme {
                SchemeId::Scheme1 => TenantDb::S1(Scheme1Server::new_in_memory_sharded(
                    self.params.scheme1_capacity,
                    shards,
                )),
                SchemeId::Scheme2 => TenantDb::S2(Scheme2Server::new_in_memory_sharded(
                    Scheme2Config::standard().with_chain_length(self.params.scheme2_chain_length),
                    shards,
                )),
            }),
            Some(root) => {
                let dir = tenant_dir(root, tenant, scheme);
                self.vfs.create_dir_all(&dir)?;
                Ok(match scheme {
                    SchemeId::Scheme1 => TenantDb::S1(Scheme1Server::open_durable_with_backend(
                        Arc::clone(&self.vfs),
                        self.params.scheme1_capacity,
                        &dir,
                        shards,
                        self.params.group_commit,
                        self.params.backend,
                    )?),
                    SchemeId::Scheme2 => TenantDb::S2(Scheme2Server::open_durable_with_backend(
                        Arc::clone(&self.vfs),
                        Scheme2Config::standard()
                            .with_chain_length(self.params.scheme2_chain_length),
                        &dir,
                        shards,
                        self.params.group_commit,
                        self.params.backend,
                    )?),
                })
            }
        }
    }

    fn note_recovery(&self, recovery: &ServerRecovery) {
        if recovery.recovered_anything() {
            self.wal_recoveries.fetch_add(1, Ordering::Relaxed);
        }
        self.torn_tails_truncated
            .fetch_add(recovery.torn_bytes(), Ordering::Relaxed);
    }

    /// Durable mode: eagerly re-open every tenant database already present
    /// under the data directory, so recovery (and its cost) happens at
    /// daemon startup rather than on a client's first request. Returns how
    /// many databases were opened.
    ///
    /// # Errors
    /// Directory-scan I/O errors or storage errors from any open.
    pub fn preopen_existing(&self) -> Result<usize, SseError> {
        let Some(root) = self.data_dir.clone() else {
            return Ok(0);
        };
        let mut opened = 0;
        let entries = match std::fs::read_dir(&root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let entry = entry.map_err(SseError::from)?;
            if !entry.file_type().map_err(SseError::from)?.is_dir() {
                continue;
            }
            let Some(tenant) = entry.file_name().to_str().and_then(decode_tenant_dir_name) else {
                continue; // not a name we wrote; skip
            };
            for scheme in [SchemeId::Scheme1, SchemeId::Scheme2] {
                if tenant_dir(&root, &tenant, scheme).is_dir() {
                    self.get_or_create(&tenant, scheme)?;
                    opened += 1;
                }
            }
        }
        Ok(opened)
    }

    /// Checkpoint every open tenant database to its home directory, so a
    /// graceful shutdown leaves no WAL to replay. In-memory tenants are
    /// no-ops. Returns how many databases checkpointed.
    ///
    /// # Errors
    /// The first storage error encountered (remaining tenants are still
    /// attempted — a failure on one tenant must not strand the others'
    /// unflushed WALs).
    pub fn checkpoint_all(&self) -> Result<usize, SseError> {
        let handles: Vec<TenantHandle> = self.tenants.lock().values().cloned().collect();
        let mut checkpointed = 0;
        let mut first_err = None;
        for handle in handles {
            match handle.checkpoint_home() {
                Ok(()) => checkpointed += 1,
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            None => Ok(checkpointed),
            Some(e) => Err(e),
        }
    }

    /// Whether a tenant database is already open.
    #[must_use]
    pub fn contains(&self, tenant: &str, scheme: SchemeId) -> bool {
        self.tenants
            .lock()
            .contains_key(&(tenant.to_string(), scheme))
    }

    /// Number of live tenant databases.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.lock().len()
    }

    /// Tenant opens that performed WAL replay or torn-tail truncation.
    #[must_use]
    pub fn wal_recoveries(&self) -> u64 {
        self.wal_recoveries.load(Ordering::Relaxed)
    }

    /// Total torn log-tail bytes truncated across tenant opens.
    #[must_use]
    pub fn torn_tails_truncated(&self) -> u64 {
        self.torn_tails_truncated.load(Ordering::Relaxed)
    }

    /// Group-commit pipeline counters merged over every open tenant
    /// database (the STATS commit block).
    #[must_use]
    pub fn commit_counters(&self) -> CommitCounters {
        let handles: Vec<TenantHandle> = self.tenants.lock().values().cloned().collect();
        let mut out = CommitCounters::default();
        for handle in handles {
            out.merge(&handle.commit_counters());
        }
        out
    }

    /// Search-memo counters summed over every open tenant database (the
    /// STATS search-cache block).
    #[must_use]
    pub fn search_cache_counters(&self) -> SearchCacheCounters {
        let handles: Vec<TenantHandle> = self.tenants.lock().values().cloned().collect();
        let mut out = SearchCacheCounters::default();
        for handle in handles {
            out.merge(&handle.search_cache_counters());
        }
        out
    }

    /// Per-backend storage counters merged over every open tenant
    /// database (the STATS backend block).
    #[must_use]
    pub fn backend_counters(&self) -> BackendCounters {
        let handles: Vec<TenantHandle> = self.tenants.lock().values().cloned().collect();
        let mut out = BackendCounters::default();
        for handle in handles {
            out.merge(&handle.backend_counters());
        }
        out
    }

    /// Every open tenant database with its routing key — the scrub
    /// thread's work list. Handles are clones; the registry lock is not
    /// held while the caller verifies or repairs.
    #[must_use]
    pub fn open_tenants(&self) -> Vec<((String, SchemeId), TenantHandle)> {
        self.tenants
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// On-disk directory of an open durable tenant (`None` in-memory).
    #[must_use]
    pub fn tenant_dir(&self, tenant: &str, scheme: SchemeId) -> Option<PathBuf> {
        self.data_dir
            .as_ref()
            .map(|root| tenant_dir(root, tenant, scheme))
    }

    /// The VFS all tenant file I/O routes through.
    #[must_use]
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        Arc::clone(&self.vfs)
    }

    /// Health transition counts and current-state tallies over every open
    /// tenant database (the STATS health block).
    #[must_use]
    pub fn health_counters(&self) -> HealthCounters {
        let handles: Vec<TenantHandle> = self.tenants.lock().values().cloned().collect();
        let mut out = HealthCounters::default();
        for handle in handles {
            let health = handle.health();
            let (d, r, q) = health.transition_counts();
            out.degradations += d;
            out.recoveries += r;
            out.quarantines += q;
            match health.state() {
                HealthState::Healthy => {}
                HealthState::Degraded => out.tenants_degraded += 1,
                HealthState::Quarantined => out.tenants_quarantined += 1,
            }
        }
        out
    }

    /// Per-shard contended lock acquisitions summed element-wise over
    /// every open tenant database (the STATS contention vector).
    #[must_use]
    pub fn shard_contention(&self) -> Vec<u64> {
        let handles: Vec<TenantHandle> = self.tenants.lock().values().cloned().collect();
        let mut out: Vec<u64> = Vec::new();
        for handle in handles {
            let per_tenant = handle.shard_contention();
            if per_tenant.len() > out.len() {
                out.resize(per_tenant.len(), 0);
            }
            for (acc, c) in out.iter_mut().zip(per_tenant) {
                *acc += c;
            }
        }
        out
    }
}

/// On-disk directory for one `(tenant, scheme)` database.
fn tenant_dir(root: &Path, tenant: &str, scheme: SchemeId) -> PathBuf {
    let sub = match scheme {
        SchemeId::Scheme1 => "s1",
        SchemeId::Scheme2 => "s2",
    };
    root.join(encode_tenant_dir_name(tenant)).join(sub)
}

/// Reversible filesystem-safe encoding of a tenant name: `[A-Za-z0-9_-]`
/// pass through, everything else (including `%` itself) becomes `%XX`.
#[must_use]
pub fn encode_tenant_dir_name(tenant: &str) -> String {
    let mut out = String::with_capacity(tenant.len());
    for b in tenant.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'-' => out.push(b as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Inverse of [`encode_tenant_dir_name`]; `None` for names this daemon
/// could not have written (stray directories are skipped, not trusted).
#[must_use]
pub fn decode_tenant_dir_name(name: &str) -> Option<String> {
    let mut bytes = Vec::with_capacity(name.len());
    let mut chars = name.bytes();
    while let Some(b) = chars.next() {
        match b {
            b'%' => {
                let hi = chars.next()?;
                let lo = chars.next()?;
                let hex = [hi, lo];
                let hex = std::str::from_utf8(&hex).ok()?;
                bytes.push(u8::from_str_radix(hex, 16).ok()?);
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'-' => bytes.push(b),
            _ => return None,
        }
    }
    String::from_utf8(bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_limit_counts_the_caller_exactly_once() {
        // `fanout_limit` returns total participants, caller included:
        // helpers are always `limit - 1`, never `limit` (which would
        // double-count the caller's slot against the core budget).
        assert_eq!(fanout_limit(4, 16), 4, "one participant per part");
        assert_eq!(fanout_limit(16, 4), 4, "core-capped: caller + 3 helpers");
        assert_eq!(fanout_limit(100, 64), SEARCH_FANOUT, "hard batch cap");
        assert_eq!(fanout_limit(8, 1), 1, "single core: caller alone, 0 spawns");
        assert_eq!(fanout_limit(1, 8), 1, "single part stays inline");
        assert_eq!(fanout_limit(3, 0), 1, "a zero core count cannot size to 0");
    }

    #[test]
    fn same_key_shares_state_different_key_does_not() {
        let reg = TenantRegistry::new(TenantParams::default());
        let a1 = reg.get_or_create("alice", SchemeId::Scheme2).unwrap();
        let a2 = reg.get_or_create("alice", SchemeId::Scheme2).unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        let b = reg.get_or_create("bob", SchemeId::Scheme2).unwrap();
        assert!(!Arc::ptr_eq(&a1, &b));
        let a_s1 = reg.get_or_create("alice", SchemeId::Scheme1).unwrap();
        assert!(!Arc::ptr_eq(&a1, &a_s1));
        assert_eq!(reg.tenant_count(), 3);
    }

    #[test]
    fn tenant_dir_names_round_trip() {
        for name in ["alice", "weird name/with:stuff", "100%-sure", "著者", ""] {
            let encoded = encode_tenant_dir_name(name);
            assert!(
                encoded
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'%'),
                "unsafe byte in {encoded:?}"
            );
            assert_eq!(decode_tenant_dir_name(&encoded).as_deref(), Some(name));
        }
        // Names we did not write are rejected, not guessed at.
        assert_eq!(decode_tenant_dir_name("has space"), None);
        assert_eq!(decode_tenant_dir_name("trailing%4"), None);
        assert_eq!(decode_tenant_dir_name("bad%zz"), None);
    }

    #[test]
    fn durable_registry_recovers_tenants_across_reopen() {
        let dir = tempdir();
        let reg = TenantRegistry::durable(
            TenantParams::default(),
            dir.clone(),
            sse_storage::RealVfs::arc(),
        );
        assert_eq!(reg.preopen_existing().unwrap(), 0);
        reg.get_or_create("alice", SchemeId::Scheme2).unwrap();
        reg.get_or_create("bob", SchemeId::Scheme1).unwrap();
        assert_eq!(reg.checkpoint_all().unwrap(), 2);
        drop(reg);

        let reg2 = TenantRegistry::durable(
            TenantParams::default(),
            dir.clone(),
            sse_storage::RealVfs::arc(),
        );
        assert_eq!(reg2.preopen_existing().unwrap(), 2);
        assert_eq!(reg2.tenant_count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sse-tenant-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
