//! Multi-tenant routing: one scheme server per `(tenant, scheme)` pair.
//!
//! The hello frame names a tenant; the registry lazily creates that
//! tenant's server-side state on first use and hands out a shared handle.
//! Requests for the same tenant serialize on the tenant's mutex (the
//! scheme servers are sequential state machines); requests for different
//! tenants run on different worker threads concurrently.

use crate::proto::SchemeId;
use parking_lot::Mutex;
use sse_core::scheme1::Scheme1Server;
use sse_core::scheme2::{Scheme2Config, Scheme2Server};
use sse_net::link::Service;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared handle to one tenant's scheme server.
pub type TenantHandle = Arc<Mutex<Box<dyn Service>>>;

/// Server-side parameters for newly created tenant databases.
#[derive(Clone, Copy, Debug)]
pub struct TenantParams {
    /// Scheme 1 bit-array capacity in documents (fixed at setup by the
    /// paper's design; clients must encode against the same capacity).
    pub scheme1_capacity: u64,
    /// Scheme 2 hash-chain length `l`.
    pub scheme2_chain_length: u64,
}

impl Default for TenantParams {
    fn default() -> Self {
        TenantParams {
            scheme1_capacity: 4096,
            scheme2_chain_length: 4096,
        }
    }
}

/// Lazily populated map from `(tenant, scheme)` to server state.
pub struct TenantRegistry {
    params: TenantParams,
    tenants: Mutex<HashMap<(String, SchemeId), TenantHandle>>,
}

impl TenantRegistry {
    /// Empty registry creating tenants with `params`.
    #[must_use]
    pub fn new(params: TenantParams) -> Self {
        TenantRegistry {
            params,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// Fetch a tenant's server, creating it on first reference.
    pub fn get_or_create(&self, tenant: &str, scheme: SchemeId) -> TenantHandle {
        let mut map = self.tenants.lock();
        map.entry((tenant.to_string(), scheme))
            .or_insert_with(|| {
                let service: Box<dyn Service> = match scheme {
                    SchemeId::Scheme1 => {
                        Box::new(Scheme1Server::new_in_memory(self.params.scheme1_capacity))
                    }
                    SchemeId::Scheme2 => Box::new(Scheme2Server::new_in_memory(
                        Scheme2Config::standard()
                            .with_chain_length(self.params.scheme2_chain_length),
                    )),
                };
                Arc::new(Mutex::new(service))
            })
            .clone()
    }

    /// Number of live tenant databases.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_shares_state_different_key_does_not() {
        let reg = TenantRegistry::new(TenantParams::default());
        let a1 = reg.get_or_create("alice", SchemeId::Scheme2);
        let a2 = reg.get_or_create("alice", SchemeId::Scheme2);
        assert!(Arc::ptr_eq(&a1, &a2));
        let b = reg.get_or_create("bob", SchemeId::Scheme2);
        assert!(!Arc::ptr_eq(&a1, &b));
        let a_s1 = reg.get_or_create("alice", SchemeId::Scheme1);
        assert!(!Arc::ptr_eq(&a1, &a_s1));
        assert_eq!(reg.tenant_count(), 3);
    }
}
