//! `sse-load` — closed-loop load generator for `sse-serverd`.
//!
//! ```text
//! sse-load [--addr HOST:PORT | --spawn] [--clients N] [--tenants N]
//!          [--scheme 1|2|both] [--profile gp|traveler] [--events N]
//!          [--seed N] [--shutdown]
//! sse-load --bench-json PATH
//!          [--bench-mode serving|groupcommit|search|update|idle|hotpath|sched]
//!          [--shards N] [--clients N] [--seed N] [--bench-ms N]
//!          [--idle-conns N] [--depth N] [--tenants N] [--batch-parts N]
//! ```
//!
//! Drives N concurrent clients, each replaying a §6 PHR workload (Zipf
//! over medical codes) through a real scheme client over TCP, and prints
//! ops/sec plus client-observed p50/p95/p99 latency. `--spawn` starts an
//! in-process daemon on an ephemeral port (a one-command demo);
//! `--shutdown` sends `ADMIN_SHUTDOWN` to the target daemon after the run.
//!
//! `--bench-json PATH` switches to benchmark mode: spawn two durable
//! daemons, run the same search+update workload against both, and write
//! the comparison to PATH (see [`sse_server::bench`]). The default
//! `serving` mode compares 1 shard vs `--shards` shards; `groupcommit`
//! compares group commit off vs on at a fixed shard count (`--shards`,
//! default 1 — concurrent updaters must share a shard journal for flush
//! groups to form); `search` measures the search hot path on one
//! in-memory daemon (cold walks vs memo-served repeats, and `SEARCH_MANY`
//! batches vs the same searches one round trip at a time); `update`
//! compares the `btree` vs `lsm` storage backends under an update-heavy
//! workload with periodic mid-run checkpoints (`BENCH_backend.json`);
//! `idle` holds `--idle-conns` silent tenant connections on the epoll
//! reactor and measures per-idle-connection memory plus hot-path latency
//! before and under that load (`BENCH_reactor.json`); `hotpath` replays
//! a captured warm search against the owned-buffer fallback, the pooled
//! pipeline, and the pooled pipeline under a `--depth`-request pipelined
//! burst, reporting server-thread allocations per op, bytes memcpy'd per
//! op, and the mean `writev` syscall batch (`BENCH_hotpath.json`);
//! `sched` drives `--tenants` tenants with pipelined bursts mixing plain
//! searches and `SEARCH_MANY` fan-out batches, under uniform and skewed
//! weights, against affinity routing and its round-robin baseline —
//! reporting the scheduler counters, the queue-wait/service-time latency
//! split, and the steady-state thread-spawn count (`BENCH_sched.json`).

use sse_server::bench::{
    run_bench, run_group_commit_bench, run_hotpath_bench, run_idle_bench, run_sched_bench,
    run_search_bench, run_update_bench, BenchOptions, HotpathOptions, IdleBenchOptions,
    SchedOptions,
};
use sse_server::chaos::{run_chaos, ChaosOptions};
use sse_server::daemon::{Daemon, ServerConfig};
use sse_server::load::{run_load, LoadOptions, Profile};
use sse_server::proto::SchemeId;
use sse_server::transport::TcpTransport;
use std::process::ExitCode;

/// The counting allocator that makes the hotpath benchmark's allocs/op
/// numbers real: tracked server threads (the daemon's reactor and
/// workers opt in) bump global counters; everything else — including the
/// bench's own client threads — falls straight through to the system
/// allocator.
#[global_allocator]
static ALLOC: allocmeter::CountingAlloc = allocmeter::CountingAlloc;

fn usage() -> ! {
    eprintln!(
        "usage: sse-load [--addr HOST:PORT | --spawn] [--clients N] [--tenants N] \
         [--scheme 1|2|both] [--profile gp|traveler] [--events N] [--seed N] [--shutdown]\n\
         \x20      sse-load --bench-json PATH \
         [--bench-mode serving|groupcommit|search|update|idle|hotpath|sched] \
         [--shards N] [--clients N] [--seed N] [--bench-ms N] [--idle-conns N] [--depth N] \
         [--tenants N] [--batch-parts N]\n\
         \x20      sse-load --chaos [--seed N] [--clients N] [--tenants N] \
         [--backend btree|lsm] [--chaos-ms N] [--chaos-report PATH]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad numeric value: {s}");
        usage()
    })
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum BenchMode {
    Serving,
    GroupCommit,
    Search,
    Update,
    Idle,
    Hotpath,
    Sched,
}

struct Cli {
    opts: LoadOptions,
    spawn: bool,
    shutdown: bool,
    bench_json: Option<std::path::PathBuf>,
    bench: BenchOptions,
    bench_mode: BenchMode,
    idle: IdleBenchOptions,
    hotpath: HotpathOptions,
    sched: SchedOptions,
    chaos: bool,
    chaos_opts: ChaosOptions,
    chaos_report: std::path::PathBuf,
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        opts: LoadOptions::default(),
        spawn: false,
        shutdown: false,
        bench_json: None,
        bench: BenchOptions::default(),
        bench_mode: BenchMode::Serving,
        idle: IdleBenchOptions::default(),
        hotpath: HotpathOptions::default(),
        sched: SchedOptions::default(),
        chaos: false,
        chaos_opts: ChaosOptions::default(),
        chaos_report: std::path::PathBuf::from("CHAOS_report.json"),
    };
    let mut shards_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => cli.opts.addr = value(),
            "--spawn" => cli.spawn = true,
            "--shutdown" => cli.shutdown = true,
            "--clients" => {
                cli.opts.clients = parse(&value());
                cli.bench.clients = cli.opts.clients;
                cli.chaos_opts.clients = cli.opts.clients;
            }
            "--tenants" => {
                cli.opts.tenants = parse(&value());
                cli.chaos_opts.tenants = cli.opts.tenants;
                cli.sched.tenants = cli.opts.tenants;
            }
            "--events" => cli.opts.events = parse(&value()),
            "--seed" => {
                cli.opts.seed = parse(&value());
                cli.bench.seed = cli.opts.seed;
                cli.chaos_opts.seed = cli.opts.seed;
                cli.idle.seed = cli.opts.seed;
                cli.hotpath.seed = cli.opts.seed;
                cli.sched.seed = cli.opts.seed;
            }
            "--chaos" => cli.chaos = true,
            "--chaos-ms" => {
                cli.chaos_opts.duration = std::time::Duration::from_millis(parse(&value()));
            }
            "--chaos-report" => cli.chaos_report = std::path::PathBuf::from(value()),
            "--backend" => {
                cli.chaos_opts.backend = value().parse().unwrap_or_else(|e| {
                    eprintln!("bad backend: {e}");
                    usage()
                })
            }
            "--bench-json" => cli.bench_json = Some(std::path::PathBuf::from(value())),
            "--bench-mode" => {
                cli.bench_mode = match value().as_str() {
                    "serving" => BenchMode::Serving,
                    "groupcommit" => BenchMode::GroupCommit,
                    "search" => BenchMode::Search,
                    "update" => BenchMode::Update,
                    "idle" => BenchMode::Idle,
                    "hotpath" => BenchMode::Hotpath,
                    "sched" => BenchMode::Sched,
                    other => {
                        eprintln!("unknown bench mode: {other}");
                        usage();
                    }
                }
            }
            "--shards" => {
                cli.bench.shards = parse(&value());
                shards_set = true;
            }
            "--bench-ms" => {
                cli.bench.duration = std::time::Duration::from_millis(parse(&value()));
                cli.idle.duration = cli.bench.duration;
                cli.hotpath.duration = cli.bench.duration;
                cli.sched.duration = cli.bench.duration;
            }
            "--idle-conns" => cli.idle.idle_conns = parse(&value()),
            "--depth" => {
                cli.hotpath.depth = parse(&value());
                cli.sched.depth = cli.hotpath.depth;
            }
            "--batch-parts" => cli.sched.batch_parts = parse(&value()),
            "--scheme" => {
                cli.opts.schemes = match value().as_str() {
                    "1" => vec![SchemeId::Scheme1],
                    "2" => vec![SchemeId::Scheme2],
                    "both" => vec![SchemeId::Scheme1, SchemeId::Scheme2],
                    other => {
                        eprintln!("unknown scheme: {other}");
                        usage();
                    }
                }
            }
            "--profile" => {
                cli.opts.profile = match value().as_str() {
                    "gp" => Profile::Gp,
                    "traveler" => Profile::Traveler,
                    other => {
                        eprintln!("unknown profile: {other}");
                        usage();
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    // The group-commit comparison defaults to one shard: flush groups only
    // form when concurrent updaters land on the same shard journal.
    if cli.bench_mode == BenchMode::GroupCommit && !shards_set {
        cli.bench.shards = 1;
    }
    cli
}

/// Run the search-path benchmark and write `BENCH_search.json`.
fn run_search_mode(path: &std::path::Path, bench: &BenchOptions) -> ExitCode {
    println!(
        "sse-load: search-path benchmark: {} shard(s), {} keyword(s)",
        bench.shards, bench.keywords
    );
    let report = match run_search_bench(bench) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sse-load: benchmark failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (name, arm) in [
        ("cold", &report.cold),
        ("repeat", &report.repeat),
        ("single_group", &report.single_group),
        ("batch", &report.batch),
    ] {
        println!(
            "sse-load: {name}: {} op(s), mean {} ns, median {} ns, p95 {} ns, p99 {} ns",
            arm.ops, arm.mean_ns, arm.median_ns, arm.p95_ns, arm.p99_ns
        );
    }
    println!(
        "sse-load: repeat-search speedup {:.2}x (memo), batch-of-8 speedup {:.2}x (SEARCH_MANY)",
        report.repeat_speedup, report.batch_speedup
    );
    println!(
        "sse-load: search cache: {} hit(s) / {} miss(es), {} chain step(s) saved",
        report.cache_hits, report.cache_misses, report.walk_steps_saved
    );
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("sse-load: writing {} failed: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("sse-load: wrote {}", path.display());
    ExitCode::SUCCESS
}

/// Run the group-commit A/B benchmark and write `BENCH_groupcommit.json`.
fn run_group_commit_mode(path: &std::path::Path, bench: &BenchOptions) -> ExitCode {
    println!(
        "sse-load: group-commit benchmark: {} clients, {} shard(s), {:?} window per arm",
        bench.clients, bench.shards, bench.duration
    );
    let report = match run_group_commit_bench(bench) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sse-load: benchmark failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for arm in [&report.ungrouped, &report.grouped] {
        println!(
            "sse-load: group_commit={}: {:.1} update ops/sec, {:.1} search ops/sec \
             (search p50 {} ns, p99 {} ns), mean group {:.2} (max {}), \
             {:.3} fsyncs/op, {} fsync(s) saved, {} snapshot swap(s)",
            arm.group_commit,
            arm.update_ops_per_sec,
            arm.search_ops_per_sec,
            arm.p50_ns,
            arm.p99_ns,
            arm.mean_group_size,
            arm.max_group_size,
            arm.fsyncs_per_op,
            arm.fsyncs_saved,
            arm.snapshot_swaps
        );
    }
    println!(
        "sse-load: update throughput speedup {:.2}x, search p99 ratio {:.2}",
        report.speedup_update_ops_per_sec, report.search_p99_ratio
    );
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("sse-load: writing {} failed: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("sse-load: wrote {}", path.display());
    ExitCode::SUCCESS
}

/// Run the backend A/B benchmark and write `BENCH_backend.json`.
fn run_update_mode(path: &std::path::Path, bench: &BenchOptions) -> ExitCode {
    println!(
        "sse-load: backend benchmark: {} clients, {} shard(s), {:?} window per arm",
        bench.clients, bench.shards, bench.duration
    );
    let report = match run_update_bench(bench) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sse-load: benchmark failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for arm in [&report.btree, &report.lsm] {
        println!(
            "sse-load: backend={}: {:.1} update ops/sec, {:.1} search ops/sec \
             (search p50 {} ns, p99 {} ns), {} checkpoint(s), {} run(s) flushed \
             ({} live), {} compaction(s), bloom {} check(s) / {} skip(s)",
            arm.backend,
            arm.update_ops_per_sec,
            arm.search_ops_per_sec,
            arm.p50_ns,
            arm.p99_ns,
            arm.checkpoints,
            arm.runs_flushed,
            arm.runs_live,
            arm.compactions,
            arm.bloom_checks,
            arm.bloom_skips
        );
    }
    println!(
        "sse-load: lsm vs btree update throughput: {:.2}x",
        report.lsm_vs_btree_update_ratio
    );
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("sse-load: writing {} failed: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("sse-load: wrote {}", path.display());
    ExitCode::SUCCESS
}

/// Run the idle-connection reactor benchmark and write
/// `BENCH_reactor.json`. Exits nonzero if the run itself fails (thresholds
/// are gated downstream, in CI, so a laptop run always produces a report).
fn run_idle_mode(path: &std::path::Path, idle: &IdleBenchOptions) -> ExitCode {
    println!(
        "sse-load: idle-connection benchmark: {} idle conn(s), {:?} hot window per arm",
        idle.idle_conns, idle.duration
    );
    let report = match run_idle_bench(idle) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sse-load: benchmark failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "sse-load: held {} of {} idle conn(s); RSS {} kB -> {} kB -> {} kB \
         ({:.0} B/conn first half, {:.0} B/conn second half)",
        report.idle_conns_held,
        report.options.idle_conns,
        report.rss_start_kb,
        report.rss_half_kb,
        report.rss_full_kb,
        report.per_idle_conn_bytes_first_half,
        report.per_idle_conn_bytes_second_half
    );
    for (name, arm) in [
        ("hot baseline", &report.baseline),
        ("hot under idle load", &report.loaded),
    ] {
        println!(
            "sse-load: {name}: {} op(s), median {} ns, p95 {} ns, p99 {} ns",
            arm.ops, arm.median_ns, arm.p95_ns, arm.p99_ns
        );
    }
    println!(
        "sse-load: hot p99 ratio {:.2}, median ratio {:.2}; {} reaped, \
         {} slow-reader cut(s), {} rejected; drained in {} ms (clean: {})",
        report.hot_p99_ratio,
        report.hot_median_ratio,
        report.idle_reaped,
        report.slow_reader_disconnects,
        report.conns_rejected,
        report.drain_ms,
        report.drain_clean
    );
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("sse-load: writing {} failed: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("sse-load: wrote {}", path.display());
    ExitCode::SUCCESS
}

/// Run the zero-copy hot-path benchmark and write `BENCH_hotpath.json`.
/// The per-op allocation numbers are real here because this binary
/// installs the counting allocator (see `ALLOC` above).
fn run_hotpath_mode(path: &std::path::Path, opts: &HotpathOptions) -> ExitCode {
    println!(
        "sse-load: hot-path benchmark: {:?} window per arm, pipeline depth {}",
        opts.duration, opts.depth
    );
    let report = match run_hotpath_bench(opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sse-load: benchmark failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for arm in [&report.legacy, &report.pooled, &report.pipelined] {
        println!(
            "sse-load: {}: {:.1} ops/sec, {:.2} alloc(s)/op ({:.0} B/op), \
             {:.0} byte(s) copied/op, pool hit rate {:.2}, \
             writev batch {:.2} ({} call(s) / {} frame(s)), \
             {} wakeup(s) coalesced, p50 {} ns, p99 {} ns",
            arm.name,
            arm.ops_per_sec,
            arm.allocs_per_op,
            arm.alloc_bytes_per_op,
            arm.bytes_copied_per_op,
            arm.pool_hit_rate,
            arm.mean_writev_batch,
            arm.writev_calls,
            arm.writev_frames,
            arm.wakeups_coalesced,
            arm.p50_ns,
            arm.p99_ns
        );
    }
    println!(
        "sse-load: alloc reduction {:.1}%, copy reduction {:.1}%, p99 ratio {:.2}, \
         pipelined writev batch {:.2}",
        report.alloc_reduction * 100.0,
        report.copy_reduction * 100.0,
        report.p99_ratio,
        report.pipelined_mean_writev_batch
    );
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("sse-load: writing {} failed: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("sse-load: wrote {}", path.display());
    ExitCode::SUCCESS
}

/// Run the scheduler/affinity benchmark and write `BENCH_sched.json`.
/// The thread-spawn count needs no special allocator — `allocmeter`
/// counts spawns process-wide — but the in-process daemon is required
/// (the counter lives in this process).
fn run_sched_mode(path: &std::path::Path, opts: &SchedOptions) -> ExitCode {
    println!(
        "sse-load: scheduler benchmark: {} tenant(s), depth {}, {} part(s) per batch, \
         {:?} window per arm",
        opts.tenants, opts.depth, opts.batch_parts, opts.duration
    );
    let report = match run_sched_bench(opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sse-load: benchmark failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for arm in [
        &report.affinity_uniform,
        &report.global_uniform,
        &report.affinity_skewed,
        &report.global_skewed,
    ] {
        println!(
            "sse-load: {}: {:.1} ops/sec (round p50 {} ns, p99 {} ns), \
             queue p99 {} ns, service p99 {} ns, {} local / {} stolen / {} spilled \
             (hw depth {}), {} fan-out batch(es), {} part(s) helped, {} spawn(s)",
            arm.name,
            arm.ops_per_sec,
            arm.p50_ns,
            arm.p99_ns,
            arm.queue_p99_ns,
            arm.service_p99_ns,
            arm.sched_local_hits,
            arm.sched_stolen,
            arm.sched_spilled,
            arm.sched_queue_depth_hw,
            arm.fanout_batches,
            arm.fanout_parts_helped,
            arm.thread_spawns
        );
    }
    println!(
        "sse-load: affinity vs global throughput: {:.2}x uniform, {:.2}x skewed; \
         skew p99 ratio {:.2} (queue-wait {:.2}); {} steal(s) under skew, \
         {} steady-state thread spawn(s)",
        report.uniform_throughput_ratio,
        report.skew_throughput_ratio,
        report.skew_p99_ratio,
        report.skew_queue_p99_ratio,
        report.steals_under_skew,
        report.steady_state_thread_spawns
    );
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("sse-load: writing {} failed: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("sse-load: wrote {}", path.display());
    ExitCode::SUCCESS
}

/// Run the chaos-soak harness and write `CHAOS_report.json`. Exits
/// nonzero if any invariant was violated.
fn run_chaos_mode(path: &std::path::Path, opts: &ChaosOptions) -> ExitCode {
    println!(
        "sse-load: chaos soak: seed {}, {} clients x {} tenant(s), backend {}, {:?} storm",
        opts.seed, opts.clients, opts.tenants, opts.backend, opts.duration
    );
    let report = match run_chaos(opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sse-load: chaos setup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "sse-load: chaos: {} ops ({} stores acked, {} in doubt, {} searches), \
         {} socket drop(s), {} fault(s) injected",
        report.ops_attempted,
        report.stores_acked,
        report.stores_in_doubt,
        report.searches_ok,
        report.disconnects_injected,
        report.faults_injected
    );
    println!(
        "sse-load: health: {} degradation(s) / {} recover(ies) / {} quarantine(s), \
         {} scrub pass(es), {} repair(s), {} degraded retry(ies) absorbed client-side",
        report.degradations,
        report.recoveries,
        report.quarantines,
        report.scrub_passes,
        report.scrub_repairs,
        report.degraded_retries
    );
    for v in &report.violations {
        eprintln!("sse-load: INVARIANT VIOLATION: {v}");
    }
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("sse-load: writing {} failed: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("sse-load: wrote {}", path.display());
    if report.passed() {
        println!("sse-load: chaos soak PASSED (all three invariants held)");
        ExitCode::SUCCESS
    } else {
        eprintln!("sse-load: chaos soak FAILED");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut cli = parse_args();
    if cli.chaos {
        return run_chaos_mode(&cli.chaos_report, &cli.chaos_opts);
    }
    if let Some(path) = &cli.bench_json {
        if cli.bench_mode == BenchMode::GroupCommit {
            return run_group_commit_mode(path, &cli.bench);
        }
        if cli.bench_mode == BenchMode::Search {
            return run_search_mode(path, &cli.bench);
        }
        if cli.bench_mode == BenchMode::Update {
            return run_update_mode(path, &cli.bench);
        }
        if cli.bench_mode == BenchMode::Idle {
            return run_idle_mode(path, &cli.idle);
        }
        if cli.bench_mode == BenchMode::Hotpath {
            return run_hotpath_mode(path, &cli.hotpath);
        }
        if cli.bench_mode == BenchMode::Sched {
            return run_sched_mode(path, &cli.sched);
        }
        println!(
            "sse-load: benchmark mode: {} clients, 1 vs {} shard(s), {:?} window per arm",
            cli.bench.clients, cli.bench.shards, cli.bench.duration
        );
        let report = match run_bench(&cli.bench) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("sse-load: benchmark failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "sse-load: shards=1: {:.1} search ops/sec (p50 {} ns, p99 {} ns), {} update ops",
            report.baseline.search_ops_per_sec,
            report.baseline.p50_ns,
            report.baseline.p99_ns,
            report.baseline.update_ops
        );
        println!(
            "sse-load: shards={}: {:.1} search ops/sec (p50 {} ns, p99 {} ns), {} update ops, \
             contention {:?}",
            report.sharded.shards,
            report.sharded.search_ops_per_sec,
            report.sharded.p50_ns,
            report.sharded.p99_ns,
            report.sharded.update_ops,
            report.sharded.shard_contention
        );
        println!(
            "sse-load: search throughput speedup: {:.2}x",
            report.speedup_search_ops_per_sec
        );
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("sse-load: writing {} failed: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("sse-load: wrote {}", path.display());
        return ExitCode::SUCCESS;
    }
    let daemon = if cli.spawn {
        match Daemon::spawn(ServerConfig::default()) {
            Ok(d) => {
                cli.opts.addr = d.local_addr().to_string();
                println!("sse-load: spawned in-process daemon on {}", cli.opts.addr);
                Some(d)
            }
            Err(e) => {
                eprintln!("sse-load: failed to spawn daemon: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    println!(
        "sse-load: {} clients x {:?} profile over {:?} scheme(s), {} tenant(s), target {}",
        cli.opts.clients, cli.opts.profile, cli.opts.schemes, cli.opts.tenants, cli.opts.addr
    );
    let report = match run_load(&cli.opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sse-load: run failed: {e}");
            if let Some(d) = daemon {
                d.shutdown();
            }
            return ExitCode::FAILURE;
        }
    };
    println!("sse-load: {report}");

    // Pull the server-side view over the ADMIN protocol.
    match TcpTransport::connect(&cli.opts.addr, "admin", SchemeId::Scheme2).and_then(|mut t| {
        let stats = t.admin_stats()?;
        if cli.shutdown && daemon.is_none() {
            t.admin_shutdown()?;
        }
        Ok(stats)
    }) {
        Ok(stats) => {
            println!(
                "sse-load: server stats: {} ok / {} busy / {} err, {} bytes in, {} bytes out, \
                 server-side p50 {} ns p95 {} ns p99 {} ns",
                stats.requests_ok,
                stats.requests_busy,
                stats.requests_err,
                stats.bytes_in,
                stats.bytes_out,
                stats.p50_ns,
                stats.p95_ns,
                stats.p99_ns
            );
            println!(
                "sse-load: server robustness: {} fault(s) injected, {} WAL recover(ies), \
                 {} torn byte(s) truncated, {} client re-attach(es)",
                stats.faults_injected,
                stats.wal_recoveries,
                stats.torn_tails_truncated,
                stats.reconnects
            );
            println!(
                "sse-load: group commit: {} op(s) in {} flush group(s) \
                 (mean {:.2}, max {}), {} fsync(s) saved ({:.3} fsyncs/op), \
                 {} snapshot swap(s)",
                stats.ops_committed,
                stats.groups_committed,
                stats.mean_group_size(),
                stats.max_group_size,
                stats.fsyncs_saved,
                stats.fsyncs_per_op(),
                stats.snapshot_swaps
            );
            println!(
                "sse-load: search cache: {} hit(s) / {} miss(es), {} chain step(s) saved",
                stats.search_cache_hits, stats.search_cache_misses, stats.walk_steps_saved
            );
        }
        Err(e) => eprintln!("sse-load: stats query failed: {e}"),
    }

    if let Some(d) = daemon {
        let report = d.shutdown();
        println!(
            "sse-load: daemon drained ({} workers, {} connections joined)",
            report.workers_joined, report.connections_joined
        );
    }
    ExitCode::SUCCESS
}
