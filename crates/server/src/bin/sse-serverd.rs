//! `sse-serverd` — the multi-tenant SSE TCP daemon.
//!
//! ```text
//! sse-serverd [--addr HOST:PORT] [--workers N] [--queue N]
//!             [--scheme1-capacity N] [--scheme2-chain N] [--shards N]
//!             [--data-dir DIR] [--backend btree|lsm] [--idle-timeout-ms N]
//!             [--scrub-interval-ms N] [--reactor | --threaded]
//!             [--max-conns N] [--write-queue-limit BYTES] [--no-pool]
//!             [--no-affinity]
//! ```
//!
//! By default every socket is owned by the non-blocking epoll reactor
//! (one event-loop thread, bounded per-connection write queues, idle
//! reaping at `--idle-timeout-ms`; see DESIGN.md §4i). `--max-conns`
//! caps concurrent connections (accepts beyond it are dropped at the
//! door) and `--write-queue-limit` bounds the bytes buffered for a
//! client that stops reading before it is disconnected as a slow
//! reader. `--threaded` restores the legacy thread-per-connection
//! accept loop (`--reactor` selects the default explicitly). `--no-pool`
//! disables the zero-copy buffer pool (DESIGN.md §4j) and serves every
//! frame from fresh owned buffers — a diagnostic fallback, also the
//! baseline arm of `sse-load --bench-mode hotpath`. `--no-affinity`
//! disables tenant-hash routing across the per-worker run queues
//! (DESIGN.md §4k) and round-robins jobs instead — the global-queue
//! baseline arm of `sse-load --bench-mode sched`.
//!
//! Serves until an `ADMIN_SHUTDOWN` frame arrives (e.g. `sse-load
//! --shutdown`, or any `TcpTransport::admin_shutdown` call), then drains
//! queued requests and exits, printing final serving stats.
//!
//! With `--data-dir` the daemon is **durable**: tenant databases persist
//! under the directory, WALs left by a crash are replayed before the
//! listener opens, and the drain checkpoints every tenant so a clean
//! restart has nothing to replay. `--backend` picks the storage engine
//! for newly created tenant directories: `btree` (default — monolithic
//! index snapshots rewritten per checkpoint) or `lsm` (append-only
//! sorted runs with bloom-filtered reads; checkpoints flush only the
//! tags mutated since the last one). Each tenant directory remembers its
//! backend and refuses to reopen under the other.
//!
//! A background scrub thread (default every 5000 ms; `--scrub-interval-ms
//! 0` disables it) checksum-verifies every tenant's on-disk artifacts,
//! repairs degraded tenants (storage write failures flip a tenant to
//! read-only serving until the repair's probe write succeeds) and
//! quarantines confirmed corruption. See the `sse_server::scrub` docs.

use sse_server::daemon::{Daemon, ServerConfig};
use sse_server::tenant::TenantParams;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: sse-serverd [--addr HOST:PORT] [--workers N] [--queue N] \
         [--scheme1-capacity N] [--scheme2-chain N] [--shards N] \
         [--data-dir DIR] [--backend btree|lsm] [--idle-timeout-ms N] \
         [--scrub-interval-ms N] [--reactor | --threaded] [--max-conns N] \
         [--write-queue-limit BYTES] [--no-pool] [--no-affinity]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad numeric value: {s}");
        usage()
    })
}

fn parse_args() -> ServerConfig {
    let mut config = ServerConfig {
        addr: "127.0.0.1:4460".to_string(),
        // The daemon default is scrub-off (embedding tests drive passes
        // synchronously); the operator-facing binary scrubs by default.
        scrub_interval: Some(std::time::Duration::from_millis(5000)),
        ..ServerConfig::default()
    };
    let mut params = TenantParams::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value(),
            "--workers" => config.workers = parse(&value()),
            "--queue" => config.queue_depth = parse(&value()),
            "--scheme1-capacity" => params.scheme1_capacity = parse(&value()),
            "--scheme2-chain" => params.scheme2_chain_length = parse(&value()),
            "--shards" => params.shards = parse(&value()),
            "--data-dir" => config.data_dir = Some(std::path::PathBuf::from(value())),
            "--backend" => {
                params.backend = value().parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
            }
            "--idle-timeout-ms" => {
                config.idle_timeout = std::time::Duration::from_millis(parse(&value()));
            }
            "--reactor" => config.reactor = true,
            "--threaded" => config.reactor = false,
            "--no-pool" => config.pool = false,
            "--no-affinity" => config.affinity = false,
            "--max-conns" => config.max_conns = parse(&value()),
            "--write-queue-limit" => config.write_queue_limit = parse(&value()),
            "--scrub-interval-ms" => {
                let ms: u64 = parse(&value());
                config.scrub_interval = if ms == 0 {
                    None
                } else {
                    Some(std::time::Duration::from_millis(ms))
                };
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    config.tenant_params = params;
    config
}

fn main() -> ExitCode {
    let config = parse_args();
    if config.reactor {
        // One fd per connection plus listener/pipe/worker headroom. Best
        // effort: unprivileged processes stop at their hard limit, and
        // connections beyond whatever was granted are refused at accept.
        let want = config.max_conns as u64 + 64;
        match epoll::raise_nofile_limit(want) {
            Ok(got) if got < want => {
                eprintln!(
                    "sse-serverd: fd limit {got} below {want}; connections past it will be refused"
                );
            }
            Ok(_) => {}
            Err(e) => eprintln!("sse-serverd: could not raise fd limit: {e}"),
        }
    }
    let daemon = match Daemon::spawn(config.clone()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sse-serverd: bind {} failed: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "sse-serverd listening on {} ({} mode, {} workers, queue depth {}, \
         {} index shard(s)/tenant, {} backend)",
        daemon.local_addr(),
        if config.reactor {
            "epoll-reactor"
        } else {
            "thread-per-connection"
        },
        config.workers,
        config.queue_depth,
        config.tenant_params.shards.max(1),
        config.tenant_params.backend
    );
    if config.reactor {
        println!(
            "sse-serverd: reactor limits: {} max conn(s), {} byte write queue/conn, \
             idle timeout {:?}, buffer pool {}",
            config.max_conns,
            config.write_queue_limit,
            config.idle_timeout,
            if config.pool { "on" } else { "off (--no-pool)" }
        );
    }
    match &config.data_dir {
        Some(dir) => {
            let startup = daemon.stats();
            println!(
                "sse-serverd: durable mode, data dir {} ({} tenant database(s) recovered; \
                 {} needed WAL replay, {} torn byte(s) truncated)",
                dir.display(),
                daemon.tenant_count(),
                startup.wal_recoveries,
                startup.torn_tails_truncated
            );
        }
        None => {
            println!("sse-serverd: in-memory mode (no --data-dir; state dies with the process)")
        }
    }
    daemon.wait_for_shutdown_request();
    println!("sse-serverd: shutdown requested, draining…");
    let stats = daemon.stats();
    let tenants = daemon.tenant_count();
    let report = daemon.shutdown();
    println!(
        "sse-serverd: served {} requests ({} busy, {} errors) for {} tenant database(s); \
         {} bytes in, {} bytes out; joined {} workers and {} connections; \
         checkpointed {} tenant(s)",
        stats.requests_ok,
        stats.requests_busy,
        stats.requests_err,
        tenants,
        stats.bytes_in,
        stats.bytes_out,
        report.workers_joined,
        report.connections_joined,
        report.tenants_checkpointed
    );
    println!(
        "sse-serverd: robustness: {} fault(s) injected, {} WAL recover(ies), \
         {} torn byte(s) truncated, {} client re-attach(es)",
        stats.faults_injected, stats.wal_recoveries, stats.torn_tails_truncated, stats.reconnects
    );
    println!(
        "sse-serverd: group commit: {} op(s) in {} flush group(s) (mean {:.2}, max {}), \
         {} fsync(s) saved ({:.3} fsyncs/op), {} snapshot swap(s)",
        stats.ops_committed,
        stats.groups_committed,
        stats.mean_group_size(),
        stats.max_group_size,
        stats.fsyncs_saved,
        stats.fsyncs_per_op(),
        stats.snapshot_swaps
    );
    println!(
        "sse-serverd: search cache: {} hit(s) / {} miss(es), {} chain step(s) saved",
        stats.search_cache_hits, stats.search_cache_misses, stats.walk_steps_saved
    );
    println!(
        "sse-serverd: reactor: {} conn(s) accepted ({} rejected at the door), \
         {} idle reap(s), {} slow-reader disconnect(s), {} deferred write(s), \
         {} wakeup(s), {} spurious poll(s)",
        report.final_stats.conns_accepted,
        report.final_stats.conns_rejected,
        report.final_stats.conns_idle_reaped,
        report.final_stats.slow_reader_disconnects,
        report.final_stats.writes_deferred,
        report.final_stats.reactor_wakeups,
        report.final_stats.reactor_spurious_polls
    );
    println!(
        "sse-serverd: hot path: pool {} hit(s) / {} miss(es) / {} recycle(s), \
         {} frame(s) in {} writev call(s) (mean batch {:.2}), \
         {} wakeup(s) coalesced, {} payload byte(s) copied",
        report.final_stats.pool_hits,
        report.final_stats.pool_misses,
        report.final_stats.pool_recycles,
        report.final_stats.writev_frames,
        report.final_stats.writev_calls,
        report.final_stats.writev_frames as f64 / (report.final_stats.writev_calls as f64).max(1.0),
        report.final_stats.wakeups_coalesced,
        report.final_stats.bytes_copied
    );
    println!(
        "sse-serverd: health: {} degradation(s) / {} recover(ies) / {} quarantine(s), \
         {} request(s) rejected degraded, {} scrub pass(es), {} repair(s); \
         {} thread(s) panicked",
        report.final_stats.health_degradations,
        report.final_stats.health_recoveries,
        report.final_stats.health_quarantines,
        report.final_stats.requests_degraded,
        report.final_stats.scrub_passes,
        report.final_stats.scrub_repairs,
        report.threads_panicked
    );
    println!(
        "sse-serverd: scheduler: {} job(s) routed (affinity {}), {} local hit(s), \
         {} stolen, {} spilled, high-water queue depth {}; \
         {} fan-out batch(es), {} part(s) helped; \
         queue-wait p50 {} ns p99 {} ns, service p50 {} ns p99 {} ns",
        report.final_stats.sched_routed,
        if config.affinity {
            "on"
        } else {
            "off, --no-affinity round-robin"
        },
        report.final_stats.sched_local_hits,
        report.final_stats.sched_stolen,
        report.final_stats.sched_spilled,
        report.final_stats.sched_queue_depth_hw,
        report.final_stats.fanout_batches,
        report.final_stats.fanout_parts_helped,
        report.final_stats.queue_p50_ns,
        report.final_stats.queue_p99_ns,
        report.final_stats.service_p50_ns,
        report.final_stats.service_p99_ns
    );
    // Backend counters come from the post-drain snapshot: the drain
    // checkpoint itself flushes lsm runs, which a pre-shutdown snapshot
    // would miss.
    println!(
        "sse-serverd: backend: {} run(s) flushed ({} live), {} compaction(s), \
         {} run read(s), bloom {} check(s) / {} skip(s) / {} false positive(s)",
        report.final_stats.backend_runs_flushed,
        report.final_stats.backend_runs_live,
        report.final_stats.backend_compactions,
        report.final_stats.backend_run_reads,
        report.final_stats.backend_bloom_checks,
        report.final_stats.backend_bloom_skips,
        report.final_stats.backend_bloom_false_positives
    );
    ExitCode::SUCCESS
}
