//! # sse-server
//!
//! A multi-tenant TCP serving layer for the paper's SSE schemes — the
//! step from "protocol implementation" to "system you can run": the same
//! [`sse_net::link::Service`] state machines that tests drive in-process
//! are served here over real sockets to many concurrent clients.
//!
//! * [`daemon`] — the TCP daemon: by default a readiness-driven epoll
//!   [`reactor`] owns every socket on one thread, feeding a bounded
//!   worker pool with explicit `BUSY` backpressure; a legacy
//!   thread-per-connection mode remains behind `ServerConfig::reactor =
//!   false`. Graceful draining shutdown, per-request serving stats.
//! * [`reactor`] — the non-blocking event loop: per-connection state
//!   machines over incremental frame decoding, bounded write queues with
//!   `EPOLLOUT`-driven draining, idle reaping, and a deterministic mock
//!   poller for unit tests (DESIGN.md §4i).
//! * [`proto`] — the connection envelope: a hello frame routes the
//!   connection to a `(tenant, scheme)` database; DATA frames carry the
//!   *unchanged* scheme wire messages; ADMIN frames expose stats and
//!   shutdown.
//! * [`sched`] — the affinity-sharded worker runtime: per-worker run
//!   queues routed by tenant hash, work stealing from the busiest queue,
//!   and the spawn-free `SEARCH_MANY` fan-out executor (DESIGN.md §4k).
//! * [`tenant`] — lazy per-`(tenant, scheme)` server state.
//! * [`transport`] — [`transport::TcpTransport`], the
//!   [`sse_net::link::Transport`] impl that lets every existing scheme
//!   client run over the daemon unmodified.
//! * [`histogram`] / [`stats`] — lock-free latency histogram (p50/p95/p99)
//!   and serving counters.
//! * [`load`] — the closed-loop load generator driving §6 PHR workloads
//!   over N concurrent connections (the `sse-load` binary's engine).
//!
//! Because DATA payloads pass through byte-for-byte, the serving layer
//! changes nothing about what the server *learns*: the leakage profile is
//! that of the underlying scheme (see DESIGN.md §4b).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod chaos;
pub mod daemon;
pub mod histogram;
pub mod load;
pub mod proto;
pub mod reactor;
pub mod sched;
pub mod scrub;
pub mod stats;
pub mod tenant;
pub mod transport;

pub use daemon::{Daemon, ServerConfig, ShutdownReport};
pub use load::{run_load, LoadOptions, LoadReport, Profile};
pub use proto::{SchemeId, StatsSnapshot};
pub use transport::TcpTransport;
