//! Chaos-soak harness: a seeded storm of disk and network faults against
//! a live daemon, checked against three invariants.
//!
//! One durable daemon runs with its file I/O routed through a
//! [`FaultVfs`] whose schedule (derived from the run seed) opens
//! recurring ENOSPC windows — writes fail with `StorageFull` for a few
//! scheduled write points, then succeed again, over and over. A fast
//! background scrub repairs tenants the windows degrade. Meanwhile
//! seeded clients hammer the daemon with stores and searches and
//! periodically sever their own sockets mid-run (the network fault);
//! the transport's reconnect and degraded-backoff machinery absorbs
//! both fault kinds.
//!
//! After a fixed wall-clock load window the harness waits (bounded) for
//! every tenant to scrub back to `Healthy`, then verifies and reports:
//!
//! 1. **The daemon never crashes** — every daemon thread joins cleanly
//!    at shutdown and the admin plane answers to the end.
//! 2. **Acked writes are never lost** — every store the client saw
//!    acknowledged is returned by a later search of its keyword. Ops
//!    that *errored* are in-doubt (their server-side effect is unknown)
//!    and may appear or not; ids that were never written must not.
//! 3. **Degraded tenants recover** — no tenant is left `Degraded` once
//!    the faults stop and the scrub catches up, and nothing was
//!    quarantined (ENOSPC is a clean fault, never corruption).
//!
//! Everything is a pure function of the seed except thread interleaving
//! and wall-clock pacing, so a failing seed reproduces cheaply.

use crate::daemon::{Daemon, ServerConfig};
use crate::proto::SchemeId;
use crate::tenant::TenantParams;
use crate::transport::TcpTransport;
use sse_core::scheme::SseClientApi;
use sse_core::scheme1::{Scheme1Client, Scheme1Config};
use sse_core::scheme2::{Scheme2Client, Scheme2Config};
use sse_core::types::{Document, Keyword, MasterKey};
use sse_storage::{BackendKind, FaultConfig};
use std::collections::BTreeSet;
use std::io::Result;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Scrub cadence during a chaos run: fast enough that a degraded window
/// resolves within a client's retry budget.
const SCRUB_INTERVAL: Duration = Duration::from_millis(25);
/// Keywords each client writes under (its private, namespaced universe).
const KEYWORDS_PER_CLIENT: usize = 4;
/// Poll cadence while waiting for tenants to recover.
const RECOVERY_POLL: Duration = Duration::from_millis(20);

/// Chaos-run parameters.
#[derive(Clone, Debug)]
pub struct ChaosOptions {
    /// Seed for the fault schedule and the client workloads.
    pub seed: u64,
    /// Wall-clock load window (faults fire throughout).
    pub duration: Duration,
    /// How long after the load stops the tenants get to scrub back to
    /// `Healthy` before invariant 3 counts as violated.
    pub recovery_deadline: Duration,
    /// Concurrent closed-loop chaos clients.
    pub clients: usize,
    /// Tenants the clients are spread across (round-robin).
    pub tenants: usize,
    /// Storage backend for the daemon's durable tenants.
    pub backend: BackendKind,
    /// Daemon data directory; `None` picks a fresh temp directory that is
    /// removed after a clean run.
    pub data_dir: Option<PathBuf>,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seed: 1,
            duration: Duration::from_millis(2000),
            recovery_deadline: Duration::from_secs(20),
            clients: 4,
            tenants: 2,
            backend: BackendKind::Btree,
            data_dir: None,
        }
    }
}

/// Outcome of one chaos run — counters plus the three invariant verdicts.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Seed the run used.
    pub seed: u64,
    /// Storage backend the daemon ran.
    pub backend: BackendKind,
    /// Load-window length in milliseconds.
    pub duration_ms: u64,
    /// Client operations attempted (stores + searches).
    pub ops_attempted: u64,
    /// Stores the clients saw acknowledged.
    pub stores_acked: u64,
    /// Stores that errored — effect unknown, tracked as in-doubt.
    pub stores_in_doubt: u64,
    /// Searches that completed.
    pub searches_ok: u64,
    /// Client-injected socket drops (the network fault).
    pub disconnects_injected: u64,
    /// `DEGRADED` rejections the transports absorbed by backoff-and-retry.
    pub degraded_retries: u64,
    /// `BUSY` rejections absorbed by backoff-and-retry.
    pub busy_retries: u64,
    /// Connections the transports re-dialed.
    pub reconnects: u64,
    /// Faults the storage layer injected.
    pub faults_injected: u64,
    /// `Healthy → Degraded` transitions across all tenants.
    pub degradations: u64,
    /// `Degraded → Healthy` scrub recoveries.
    pub recoveries: u64,
    /// `→ Quarantined` transitions (must be 0: ENOSPC never corrupts).
    pub quarantines: u64,
    /// Scrub passes completed.
    pub scrub_passes: u64,
    /// Successful scrub repairs.
    pub scrub_repairs: u64,
    /// Daemon threads that panicked (invariant 1 demands 0).
    pub threads_panicked: u64,
    /// Invariant 1: the daemon survived to a clean shutdown.
    pub invariant_daemon_alive: bool,
    /// Invariant 2: every acked store was found by a post-recovery search.
    pub invariant_no_acked_loss: bool,
    /// Invariant 3: every degraded tenant recovered; nothing quarantined.
    pub invariant_degraded_recovered: bool,
    /// Human-readable descriptions of every violation observed.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Did all three invariants hold?
    #[must_use]
    pub fn passed(&self) -> bool {
        self.invariant_daemon_alive
            && self.invariant_no_acked_loss
            && self.invariant_degraded_recovered
    }

    /// Serialize as the `CHAOS_report.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        format!(
            "{{\n\"harness\":\"sse-chaos-soak\",\n\"seed\":{},\n\"backend\":\"{}\",\n\
             \"duration_ms\":{},\n\"ops_attempted\":{},\n\"stores_acked\":{},\n\
             \"stores_in_doubt\":{},\n\"searches_ok\":{},\n\"disconnects_injected\":{},\n\
             \"degraded_retries\":{},\n\"busy_retries\":{},\n\"reconnects\":{},\n\
             \"faults_injected\":{},\n\"degradations\":{},\n\"recoveries\":{},\n\
             \"quarantines\":{},\n\"scrub_passes\":{},\n\"scrub_repairs\":{},\n\
             \"threads_panicked\":{},\n\"invariant_daemon_alive\":{},\n\
             \"invariant_no_acked_loss\":{},\n\"invariant_degraded_recovered\":{},\n\
             \"passed\":{},\n\"violations\":[{}]\n}}\n",
            self.seed,
            self.backend,
            self.duration_ms,
            self.ops_attempted,
            self.stores_acked,
            self.stores_in_doubt,
            self.searches_ok,
            self.disconnects_injected,
            self.degraded_retries,
            self.busy_retries,
            self.reconnects,
            self.faults_injected,
            self.degradations,
            self.recoveries,
            self.quarantines,
            self.scrub_passes,
            self.scrub_repairs,
            self.threads_panicked,
            self.invariant_daemon_alive,
            self.invariant_no_acked_loss,
            self.invariant_degraded_recovered,
            self.passed(),
            violations.join(","),
        )
    }
}

/// SplitMix64 — the harness's only randomness source (seeded, portable).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seeded fault schedule: a recurring ENOSPC window. `start` leaves
/// room for tenant creation to succeed; `period` is much wider than
/// `len`, so scrub repairs (which write) land in good windows and
/// eventually succeed.
fn fault_schedule(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        enospc_start: Some(40 + splitmix64(seed) % 80),
        enospc_len: 2 + splitmix64(seed ^ 1) % 4,
        enospc_period: 80 + splitmix64(seed ^ 2) % 120,
        ..FaultConfig::default()
    }
}

/// One chaos client's scheme client, kept as an enum so the object can
/// move back to the coordinating thread for the verification phase.
enum ChaosClient {
    S1(Scheme1Client<TcpTransport>),
    S2(Scheme2Client<TcpTransport>),
}

impl ChaosClient {
    fn store(&mut self, docs: &[Document]) -> sse_core::error::Result<()> {
        match self {
            ChaosClient::S1(c) => c.add_documents(docs),
            ChaosClient::S2(c) => c.add_documents(docs),
        }
    }

    fn search(&mut self, kw: &Keyword) -> sse_core::error::Result<Vec<(u64, Vec<u8>)>> {
        match self {
            ChaosClient::S1(c) => c.search(kw),
            ChaosClient::S2(c) => c.search(kw),
        }
    }

    fn transport(&mut self) -> &mut TcpTransport {
        match self {
            ChaosClient::S1(c) => c.transport_mut(),
            ChaosClient::S2(c) => c.transport_mut(),
        }
    }
}

/// Everything one client thread brings home: its live scheme client (for
/// the verification phase) and its oracle of what was acked vs in-doubt.
struct ClientOutcome {
    client: ChaosClient,
    /// Keyword → ids whose store was acknowledged.
    acked: Vec<BTreeSet<u64>>,
    /// Keyword → ids whose store errored (effect unknown).
    in_doubt: Vec<BTreeSet<u64>>,
    keywords: Vec<Keyword>,
    ops_attempted: u64,
    stores_acked: u64,
    stores_in_doubt: u64,
    searches_ok: u64,
    disconnects_injected: u64,
    /// Mid-run search-consistency violations.
    violations: Vec<String>,
}

/// The per-keyword consistency check: a search must return every acked
/// id and nothing outside acked ∪ in-doubt.
fn check_hits(
    who: &str,
    kw_ix: usize,
    hits: &[(u64, Vec<u8>)],
    acked: &BTreeSet<u64>,
    in_doubt: &BTreeSet<u64>,
    violations: &mut Vec<String>,
) {
    let found: BTreeSet<u64> = hits.iter().map(|(id, _)| *id).collect();
    for id in acked {
        if !found.contains(id) {
            violations.push(format!(
                "{who}: acked doc {id} missing from keyword {kw_ix}"
            ));
        }
    }
    for id in &found {
        if !acked.contains(id) && !in_doubt.contains(id) {
            violations.push(format!("{who}: phantom doc {id} under keyword {kw_ix}"));
        }
    }
}

/// One client's load loop: seeded stores, searches and socket drops until
/// the deadline.
fn drive_client(
    mut client: ChaosClient,
    who: &str,
    seed: u64,
    stride: u64,
    offset: u64,
    capacity: u64,
    deadline: Instant,
) -> ClientOutcome {
    let keywords: Vec<Keyword> = (0..KEYWORDS_PER_CLIENT)
        .map(|j| Keyword::new(format!("{who}-kw{j}")))
        .collect();
    let mut acked = vec![BTreeSet::new(); KEYWORDS_PER_CLIENT];
    let mut in_doubt = vec![BTreeSet::new(); KEYWORDS_PER_CLIENT];
    let mut violations = Vec::new();
    let (mut ops_attempted, mut stores_acked, mut stores_in_doubt) = (0u64, 0u64, 0u64);
    let (mut searches_ok, mut disconnects_injected) = (0u64, 0u64);
    let mut next_doc = 0u64;
    let mut step = 0u64;
    while Instant::now() < deadline {
        step += 1;
        let roll = splitmix64(seed ^ step.wrapping_mul(0xA076_1D64_78BD_642F));
        let doc_id = next_doc * stride + offset;
        match roll % 10 {
            // ~10%: network fault — sever the socket between ops.
            0 => {
                client.transport().inject_disconnect();
                disconnects_injected += 1;
            }
            // ~30%: search a seeded keyword, checking consistency.
            1..=3 => {
                ops_attempted += 1;
                let kw_ix = usize::try_from(roll >> 8).unwrap_or(0) % KEYWORDS_PER_CLIENT;
                if let Ok(hits) = client.search(&keywords[kw_ix]) {
                    searches_ok += 1;
                    check_hits(
                        who,
                        kw_ix,
                        &hits,
                        &acked[kw_ix],
                        &in_doubt[kw_ix],
                        &mut violations,
                    );
                }
            }
            // ~60%: store one document under 1–2 seeded keywords.
            _ => {
                if doc_id >= capacity {
                    continue; // scheme-1 bit-array is full; keep searching
                }
                ops_attempted += 1;
                next_doc += 1;
                let k1 = usize::try_from(roll >> 8).unwrap_or(0) % KEYWORDS_PER_CLIENT;
                let k2 = usize::try_from(roll >> 24).unwrap_or(0) % KEYWORDS_PER_CLIENT;
                let mut kws = vec![keywords[k1].as_str()];
                if k2 != k1 {
                    kws.push(keywords[k2].as_str());
                }
                let doc = Document::new(doc_id, format!("doc-{doc_id}").into_bytes(), kws);
                let targets: Vec<usize> = if k2 == k1 { vec![k1] } else { vec![k1, k2] };
                match client.store(std::slice::from_ref(&doc)) {
                    Ok(()) => {
                        stores_acked += 1;
                        for t in targets {
                            acked[t].insert(doc_id);
                        }
                    }
                    Err(_) => {
                        stores_in_doubt += 1;
                        for t in targets {
                            in_doubt[t].insert(doc_id);
                        }
                    }
                }
            }
        }
    }
    ClientOutcome {
        client,
        acked,
        in_doubt,
        keywords,
        ops_attempted,
        stores_acked,
        stores_in_doubt,
        searches_ok,
        disconnects_injected,
        violations,
    }
}

/// Run one chaos soak. Blocks for roughly `duration + recovery wait +
/// verification`.
///
/// # Errors
/// Setup failures only (bind, tenant pre-open, client connect): once the
/// storm starts, faults are recorded in the report, never returned.
pub fn run_chaos(opts: &ChaosOptions) -> Result<ChaosReport> {
    let data_dir = opts.data_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("sse-chaos-{}-{}", std::process::id(), opts.seed))
    });
    let _ = std::fs::remove_dir_all(&data_dir);
    let params = TenantParams {
        backend: opts.backend,
        shards: 2,
        ..TenantParams::default()
    };
    let capacity = params.scheme1_capacity;
    let daemon = Daemon::spawn(ServerConfig {
        tenant_params: params,
        data_dir: Some(data_dir.clone()),
        fault: Some(fault_schedule(opts.seed)),
        scrub_interval: Some(SCRUB_INTERVAL),
        ..ServerConfig::default()
    })?;
    let addr = daemon.local_addr().to_string();

    let clients = opts.clients.max(1);
    let tenants = opts.tenants.max(1);
    let deadline = Instant::now() + opts.duration;
    let joins: Vec<_> = (0..clients)
        .map(|i| {
            let addr = addr.clone();
            let seed = opts.seed;
            std::thread::spawn(move || -> Result<ClientOutcome> {
                let tenant = format!("chaos-{}", i % tenants);
                let scheme = if i % 2 == 0 {
                    SchemeId::Scheme1
                } else {
                    SchemeId::Scheme2
                };
                // Tenant creation itself can land in an ENOSPC window and
                // reject the hello; retry until the window passes.
                let transport = loop {
                    match TcpTransport::connect(&addr, &tenant, scheme) {
                        Ok(t) => break t,
                        Err(e) if Instant::now() >= deadline => return Err(e),
                        Err(_) => std::thread::sleep(RECOVERY_POLL),
                    }
                };
                let key = MasterKey::from_seed(seed ^ ((i as u64) << 32) ^ 0xC4A05);
                let rng_seed = seed.wrapping_add(i as u64);
                let client = match scheme {
                    SchemeId::Scheme1 => ChaosClient::S1(Scheme1Client::new_seeded(
                        transport,
                        key,
                        Scheme1Config::fast_profile(capacity),
                        rng_seed,
                    )),
                    SchemeId::Scheme2 => ChaosClient::S2(Scheme2Client::new_seeded(
                        transport,
                        key,
                        Scheme2Config::standard(),
                        rng_seed,
                    )),
                };
                let who = format!("client-{i}");
                Ok(drive_client(
                    client,
                    &who,
                    seed.wrapping_mul(1_000_003).wrapping_add(i as u64),
                    clients as u64,
                    i as u64,
                    capacity,
                    deadline,
                ))
            })
        })
        .collect();

    let mut outcomes: Vec<ClientOutcome> = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    for join in joins {
        match join.join() {
            Ok(Ok(outcome)) => outcomes.push(outcome),
            Ok(Err(e)) => violations.push(format!("client setup failed: {e}")),
            Err(_) => violations.push("chaos client panicked".to_string()),
        }
    }

    // Recovery phase: the faults keep firing (the schedule is recurring),
    // but the windows are narrow — scrub repairs retry until one lands on
    // a good window. Drive extra synchronous passes to converge faster.
    let recovery_deadline = Instant::now() + opts.recovery_deadline;
    let mut recovered = false;
    while Instant::now() < recovery_deadline {
        let snap = daemon.stats();
        if snap.tenants_degraded == 0 && snap.tenants_quarantined == 0 {
            recovered = true;
            break;
        }
        daemon.scrub_now();
        std::thread::sleep(RECOVERY_POLL);
    }
    if !recovered {
        violations.push("tenants still degraded or quarantined after the recovery deadline".into());
    }

    // Verification phase: every acked store must be findable now that the
    // tenants are healthy again.
    let (mut ops_attempted, mut stores_acked, mut stores_in_doubt) = (0u64, 0u64, 0u64);
    let (mut searches_ok, mut disconnects_injected) = (0u64, 0u64);
    let mut degraded_retries = 0;
    let mut busy_retries = 0;
    let mut reconnects = 0;
    for (i, outcome) in outcomes.iter_mut().enumerate() {
        let who = format!("client-{i}");
        for kw_ix in 0..KEYWORDS_PER_CLIENT {
            let kw = outcome.keywords[kw_ix].clone();
            match outcome.client.search(&kw) {
                Ok(hits) => check_hits(
                    &who,
                    kw_ix,
                    &hits,
                    &outcome.acked[kw_ix],
                    &outcome.in_doubt[kw_ix],
                    &mut violations,
                ),
                Err(e) => {
                    violations.push(format!("{who}: verification search {kw_ix} failed: {e}"));
                }
            }
        }
        violations.append(&mut outcome.violations);
        ops_attempted += outcome.ops_attempted;
        stores_acked += outcome.stores_acked;
        stores_in_doubt += outcome.stores_in_doubt;
        searches_ok += outcome.searches_ok;
        disconnects_injected += outcome.disconnects_injected;
        let t = outcome.client.transport();
        degraded_retries += t.degraded_retries();
        busy_retries += t.busy_retries();
        reconnects += t.reconnects();
    }
    drop(outcomes); // hang up the client connections before the drain

    let final_stats = daemon.stats();
    let shutdown = daemon.shutdown();
    let threads_panicked = shutdown.threads_panicked as u64;
    #[allow(clippy::cast_possible_truncation)]
    let duration_ms = opts.duration.as_millis() as u64;
    if threads_panicked > 0 {
        violations.push(format!("{threads_panicked} daemon thread(s) panicked"));
    }
    if final_stats.health_quarantines > 0 {
        violations.push(format!(
            "{} tenant(s) quarantined on a clean-fault schedule",
            final_stats.health_quarantines
        ));
    }

    let invariant_no_acked_loss = !violations.iter().any(|v| {
        v.contains("acked doc") || v.contains("phantom doc") || v.contains("verification search")
    });
    let report = ChaosReport {
        seed: opts.seed,
        backend: opts.backend,
        duration_ms,
        ops_attempted,
        stores_acked,
        stores_in_doubt,
        searches_ok,
        disconnects_injected,
        degraded_retries,
        busy_retries,
        reconnects,
        faults_injected: final_stats.faults_injected,
        degradations: final_stats.health_degradations,
        recoveries: final_stats.health_recoveries,
        quarantines: final_stats.health_quarantines,
        scrub_passes: final_stats.scrub_passes,
        scrub_repairs: final_stats.scrub_repairs,
        threads_panicked,
        invariant_daemon_alive: threads_panicked == 0,
        invariant_no_acked_loss,
        invariant_degraded_recovered: recovered && final_stats.health_quarantines == 0,
        violations,
    };
    if report.passed() && opts.data_dir.is_none() {
        let _ = std::fs::remove_dir_all(&data_dir);
    }
    Ok(report)
}
