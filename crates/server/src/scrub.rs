//! Background integrity scrub: the daemon thread that walks every open
//! tenant database, checksum-verifies its on-disk artifacts, repairs what
//! is repairable, and drives the health state machine
//! ([`sse_core::health::TenantHealth`]) from the evidence:
//!
//! * `Healthy` tenants get a verify pass (WAL segments, index snapshots,
//!   LSM runs). Confirmed corruption — a bad-CRC record *followed by valid
//!   records*, a snapshot checksum mismatch — quarantines the tenant; torn
//!   WAL tails are normal crash/in-flight residue and are merely counted.
//! * `Degraded` tenants get a repair attempt: checkpoint the applied
//!   state under quiescence, start fresh journals (the probe write), and
//!   promote back to `Healthy` on success. If the disk is still bad the
//!   tenant stays `Degraded` and the next pass retries; if the repair
//!   trips over confirmed corruption the tenant is quarantined.
//! * `Quarantined` tenants are skipped — terminal until operator
//!   intervention.
//!
//! The scrub runs with no locks held across tenants (the registry hands
//! out clones of the handles), so a slow repair on one tenant never
//! stalls serving — or scrubbing — of the others.

use crate::tenant::TenantRegistry;
use sse_core::error::SseError;
use sse_core::health::HealthState;
use sse_net::shutdown::ShutdownSignal;
use sse_storage::StorageError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How often the sleeping scrub loop re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Scrub observability counters (surfaced in `ADMIN_STATS`).
#[derive(Default)]
pub struct ScrubCounters {
    passes: AtomicU64,
    repairs: AtomicU64,
}

impl ScrubCounters {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Completed scrub passes over the full tenant list.
    #[must_use]
    pub fn passes(&self) -> u64 {
        self.passes.load(Ordering::Relaxed)
    }

    /// Successful degraded-tenant repairs (each one is a
    /// `Degraded → Healthy` promotion).
    #[must_use]
    pub fn repairs(&self) -> u64 {
        self.repairs.load(Ordering::Relaxed)
    }
}

/// Is this confirmed corruption (quarantine) rather than a transient
/// fault (retry next pass)?
fn is_corruption(e: &SseError) -> bool {
    matches!(e, SseError::Storage(StorageError::Corrupt { .. }))
}

/// One scrub pass over every open tenant database. Verification and
/// repair errors never propagate — they *are* the signal, recorded as
/// health transitions; the pass always completes over the full list.
pub fn scrub_pass(registry: &TenantRegistry, counters: &ScrubCounters) {
    for ((tenant, scheme), handle) in registry.open_tenants() {
        let health = handle.health().clone();
        match health.state() {
            HealthState::Quarantined => {}
            HealthState::Degraded => match handle.repair() {
                Ok(()) => {
                    // repair() probe-promoted the tenant itself.
                    counters.repairs.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if is_corruption(&e) => {
                    health.note_corruption(&format!("scrub repair of {tenant}/{scheme:?}: {e}"));
                }
                Err(_) => {
                    // Transient (the disk is still bad): stay Degraded,
                    // retry on the next pass.
                }
            },
            HealthState::Healthy => match handle.verify_files() {
                Ok(_findings) => {}
                Err(e) if is_corruption(&e) => {
                    health.note_corruption(&format!("scrub verify of {tenant}/{scheme:?}: {e}"));
                }
                Err(_) => {
                    // Transient read error: inconclusive, not corruption.
                }
            },
        }
    }
    counters.passes.fetch_add(1, Ordering::Relaxed);
}

/// The scrub thread body: one [`scrub_pass`] every `interval`, polling
/// the shutdown flag between sleeps so a drain is never delayed by a
/// long interval.
pub fn scrub_loop(
    registry: &TenantRegistry,
    counters: &ScrubCounters,
    shutdown: &ShutdownSignal,
    interval: Duration,
) {
    let mut next = Instant::now() + interval;
    while !shutdown.is_requested() {
        if Instant::now() >= next {
            scrub_pass(registry, counters);
            next = Instant::now() + interval;
        }
        std::thread::sleep(POLL_INTERVAL.min(interval));
    }
}
