//! Serving benchmark: sharded vs single-shard search throughput.
//!
//! Spawns two durable daemons on ephemeral ports — one with a single index
//! shard per tenant, one with `shards` — loads an identical seeded corpus
//! into each, then drives the same mixed workload against both: half the
//! clients search in a closed loop, half issue durable index writes
//! (Scheme 2 fake updates through the `UPDATE_MANY` envelope). Every index
//! write fsyncs its shard journal, so with one shard every search queues
//! behind every in-flight fsync; with many shards searches and writes on
//! different shards overlap even on a single core (the fsync is blocking
//! I/O, not CPU). The report is written as `BENCH_serving.json` for CI.
//!
//! The updaters run Optimization 2 (`CtrPolicy::OnSearchOnly`) and never
//! search, so their chain counter never advances past 1 and the workload
//! cannot exhaust the chain regardless of duration.

use crate::daemon::{Daemon, ServerConfig};
use crate::histogram::LatencyHistogram;
use crate::proto::SchemeId;
use crate::tenant::TenantParams;
use crate::transport::TcpTransport;
use sse_core::scheme2::{Scheme2Client, Scheme2Config};
use sse_core::types::{Document, Keyword, MasterKey};
use std::io::{Error, Result};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Benchmark parameters.
#[derive(Clone, Debug)]
pub struct BenchOptions {
    /// Concurrent clients per arm (half search, half update).
    pub clients: usize,
    /// Shard count of the sharded arm (the baseline arm always runs 1).
    pub shards: usize,
    /// Workload seed (corpus content and search order derive from it).
    pub seed: u64,
    /// Distinct keywords per searcher corpus.
    pub keywords: usize,
    /// Documents per searcher corpus.
    pub docs: usize,
    /// Measured window per arm.
    pub duration: Duration,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            clients: 8,
            shards: 8,
            seed: 7,
            keywords: 32,
            docs: 32,
            duration: Duration::from_millis(1500),
        }
    }
}

/// One arm's measurements.
#[derive(Clone, Debug)]
pub struct BenchArm {
    /// Shards per tenant database in this arm.
    pub shards: usize,
    /// Searches completed inside the measured window.
    pub search_ops: u64,
    /// Search throughput (searcher clients only).
    pub search_ops_per_sec: f64,
    /// Index writes completed inside the measured window.
    pub update_ops: u64,
    /// Client-observed search latency quantiles (ns).
    pub p50_ns: u64,
    /// 95th percentile (ns).
    pub p95_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// Per-shard lock-contention counters from `ADMIN_STATS` (a slot is
    /// bumped each time a request found its shard lock held).
    pub shard_contention: Vec<u64>,
    /// `BUSY` responses absorbed by transport backoff.
    pub busy_retries: u64,
}

/// Full benchmark report (both arms plus the headline ratio).
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Parameters the run used.
    pub options: BenchOptions,
    /// Single-shard baseline.
    pub baseline: BenchArm,
    /// Sharded arm.
    pub sharded: BenchArm,
    /// `sharded.search_ops_per_sec / baseline.search_ops_per_sec`.
    pub speedup_search_ops_per_sec: f64,
}

impl BenchReport {
    /// Serialize as the `BENCH_serving.json` document. Hand-rolled (the
    /// workspace carries no JSON dependency); all fields are numeric so no
    /// string escaping is needed.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn arm(a: &BenchArm) -> String {
            let contention: Vec<String> = a.shard_contention.iter().map(u64::to_string).collect();
            format!(
                "{{\"shards\":{},\"search_ops\":{},\"search_ops_per_sec\":{:.2},\
                 \"update_ops\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\
                 \"shard_contention\":[{}],\"busy_retries\":{}}}",
                a.shards,
                a.search_ops,
                a.search_ops_per_sec,
                a.update_ops,
                a.p50_ns,
                a.p95_ns,
                a.p99_ns,
                contention.join(","),
                a.busy_retries,
            )
        }
        format!(
            "{{\n\"benchmark\":\"sse-serving-sharded\",\n\"seed\":{},\n\"clients\":{},\n\
             \"keywords\":{},\n\"docs\":{},\n\"duration_ms\":{},\n\
             \"arms\":[\n{},\n{}\n],\n\"speedup_search_ops_per_sec\":{:.3}\n}}\n",
            self.options.seed,
            self.options.clients,
            self.options.keywords,
            self.options.docs,
            self.options.duration.as_millis(),
            arm(&self.baseline),
            arm(&self.sharded),
            self.speedup_search_ops_per_sec,
        )
    }
}

/// Tiny deterministic generator for corpus/search-order decisions (the
/// workspace's `rand` shim lives elsewhere; splitmix64 is plenty here).
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn keyword(i: usize) -> Keyword {
    Keyword::new(format!("bench-kw-{i}"))
}

/// Build one searcher's corpus: `docs` documents spread over `keywords`
/// distinct keywords, ids strided per client so clients sharing the tenant
/// document store never collide.
fn corpus(opts: &BenchOptions, client: usize) -> Vec<Document> {
    let mut rng = SplitMix(opts.seed ^ ((client as u64) << 17) ^ 0xBE7C);
    (0..opts.docs)
        .map(|d| {
            let kw = keyword((rng.next() as usize) % opts.keywords.max(1));
            let id = (d * opts.clients.max(1) + client) as u64;
            Document::new(
                id,
                format!("record-{client}-{d}").into_bytes(),
                [kw.as_str()],
            )
        })
        .collect()
}

fn connect_scheme2(
    addr: &str,
    seed: u64,
    client: usize,
    config: Scheme2Config,
) -> Result<Scheme2Client<TcpTransport>> {
    let transport = TcpTransport::connect(addr, "bench-tenant", SchemeId::Scheme2)?;
    let key = MasterKey::from_seed(seed ^ ((client as u64) << 32) ^ 0xBEBC);
    Ok(Scheme2Client::new_seeded(
        transport,
        key,
        config,
        seed.wrapping_add(client as u64),
    ))
}

/// Run one arm: spawn a durable daemon with `shards` shards per tenant,
/// load the corpus, drive the mixed workload for the measured window.
fn run_arm(opts: &BenchOptions, shards: usize, data_dir: &Path) -> Result<BenchArm> {
    let config = ServerConfig {
        workers: opts.clients.max(2),
        queue_depth: (opts.clients * 8).max(64),
        tenant_params: TenantParams {
            shards,
            ..TenantParams::default()
        },
        data_dir: Some(data_dir.to_path_buf()),
        ..ServerConfig::default()
    };
    let daemon = Daemon::spawn(config).map_err(|e| Error::other(format!("spawn: {e}")))?;
    let addr = daemon.local_addr().to_string();

    let searchers = (opts.clients / 2).max(1);
    let updaters = opts.clients.saturating_sub(searchers).max(1);

    let stop = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(searchers + updaters + 1));
    let search_ops = Arc::new(AtomicU64::new(0));
    let update_ops = Arc::new(AtomicU64::new(0));
    let busy_retries = Arc::new(AtomicU64::new(0));
    let histogram = Arc::new(LatencyHistogram::new());

    let mut joins = Vec::new();
    for client in 0..searchers {
        let addr = addr.clone();
        let opts = opts.clone();
        let stop = stop.clone();
        let start = start.clone();
        let search_ops = search_ops.clone();
        let busy_retries = busy_retries.clone();
        let histogram = histogram.clone();
        joins.push(std::thread::spawn(move || -> Result<()> {
            // Setup before the barrier: each searcher loads its own corpus
            // (distinct master keys give disjoint tags, so clients share
            // the tenant without coordination) and keeps the client — its
            // chain counter state must carry into the searches.
            // Short chains keep the client-side hash work per operation
            // trivial; the benchmark measures serving, not chain building.
            let mut c = connect_scheme2(
                &addr,
                opts.seed,
                client,
                Scheme2Config::standard().with_chain_length(64),
            )?;
            c.store_batch(&corpus(&opts, client))
                .map_err(|e| Error::other(format!("setup store: {e}")))?;
            let mut rng = SplitMix(opts.seed ^ ((client as u64) << 9) ^ 0x5EA7);
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                let kw = keyword((rng.next() as usize) % opts.keywords.max(1));
                let started = Instant::now();
                c.search(&kw).map_err(|e| Error::other(e.to_string()))?;
                histogram.record(started.elapsed());
                search_ops.fetch_add(1, Ordering::Relaxed);
            }
            busy_retries.fetch_add(c.transport_mut().busy_retries(), Ordering::Relaxed);
            Ok(())
        }));
    }
    for updater in 0..updaters {
        let addr = addr.clone();
        let opts = opts.clone();
        let stop = stop.clone();
        let start = start.clone();
        let update_ops = update_ops.clone();
        let busy_retries = busy_retries.clone();
        joins.push(std::thread::spawn(move || -> Result<()> {
            // Updater keys are offset past the searcher range so their tags
            // (and shard placement) are independent of the searchers'.
            // Updaters never search, so their chains never advance past
            // counter 1 (Opt. 2) and a short chain is all they need — each
            // operation is then dominated by the server-side journal fsync,
            // not by client hashing.
            let mut c = connect_scheme2(
                &addr,
                opts.seed,
                1000 + updater,
                Scheme2Config::standard().with_chain_length(16),
            )?;
            let mut rng = SplitMix(opts.seed ^ ((updater as u64) << 5) ^ 0x0bda);
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                // One single-keyword group per envelope: one shard locked,
                // one journal fsync — the minimal durable index write (the
                // multi-part paths are covered by the test suites). A small
                // keyword universe keeps every chain cached after the first
                // few operations.
                let pick = |rng: &mut SplitMix| keyword((rng.next() as usize) % 64);
                let groups = vec![vec![pick(&mut rng)]];
                c.fake_update_many(&groups)
                    .map_err(|e| Error::other(e.to_string()))?;
                update_ops.fetch_add(1, Ordering::Relaxed);
            }
            busy_retries.fetch_add(c.transport_mut().busy_retries(), Ordering::Relaxed);
            Ok(())
        }));
    }

    start.wait();
    let measured = Instant::now();
    std::thread::sleep(opts.duration);
    stop.store(true, Ordering::Relaxed);
    let mut first_error = None;
    for join in joins {
        match join.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                first_error.get_or_insert(e);
            }
            Err(_) => {
                first_error.get_or_insert_with(|| Error::other("bench client panicked"));
            }
        }
    }
    let elapsed = measured.elapsed();
    if let Some(e) = first_error {
        daemon.shutdown();
        return Err(e);
    }

    let mut admin = TcpTransport::connect(&addr, "bench-tenant", SchemeId::Scheme2)?;
    let stats = admin.admin_stats()?;
    drop(admin);
    daemon.shutdown();

    let search_ops = search_ops.load(Ordering::Relaxed);
    #[allow(clippy::cast_precision_loss)]
    let search_ops_per_sec = search_ops as f64 / elapsed.as_secs_f64().max(1e-9);
    Ok(BenchArm {
        shards,
        search_ops,
        search_ops_per_sec,
        update_ops: update_ops.load(Ordering::Relaxed),
        p50_ns: histogram.quantile_ns(0.50),
        p95_ns: histogram.quantile_ns(0.95),
        p99_ns: histogram.quantile_ns(0.99),
        shard_contention: stats.shard_contention,
        busy_retries: busy_retries.load(Ordering::Relaxed),
    })
}

/// Fresh scratch directory for one arm (removed by [`run_bench`]).
fn scratch_dir(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("sse-bench-{tag}-{}-{seed}", std::process::id()))
}

/// Run both arms (1 shard, then `opts.shards`) on identical seeded
/// corpora and workloads.
///
/// # Errors
/// Daemon spawn, connection, or scheme errors from either arm.
pub fn run_bench(opts: &BenchOptions) -> Result<BenchReport> {
    assert!(
        opts.clients >= 2,
        "need at least one searcher and one updater"
    );
    let mut arms = Vec::with_capacity(2);
    for shards in [1, opts.shards.max(1)] {
        let dir = scratch_dir(&format!("s{shards}"), opts.seed);
        let _ = std::fs::remove_dir_all(&dir); // stale state from a crashed run
        std::fs::create_dir_all(&dir)?;
        let result = run_arm(opts, shards, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        arms.push(result?);
    }
    let sharded = arms.pop().expect("two arms");
    let baseline = arms.pop().expect("two arms");
    let speedup = sharded.search_ops_per_sec / baseline.search_ops_per_sec.max(1e-9);
    Ok(BenchReport {
        options: opts.clone(),
        baseline,
        sharded,
        speedup_search_ops_per_sec: speedup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_has_required_fields() {
        let arm = |shards: usize| BenchArm {
            shards,
            search_ops: 10,
            search_ops_per_sec: 100.0,
            update_ops: 5,
            p50_ns: 1,
            p95_ns: 2,
            p99_ns: 3,
            shard_contention: vec![0, 4],
            busy_retries: 0,
        };
        let report = BenchReport {
            options: BenchOptions::default(),
            baseline: arm(1),
            sharded: arm(8),
            speedup_search_ops_per_sec: 2.5,
        };
        let json = report.to_json();
        for field in [
            "\"benchmark\"",
            "\"arms\"",
            "\"shards\"",
            "\"search_ops_per_sec\"",
            "\"p50_ns\"",
            "\"p95_ns\"",
            "\"p99_ns\"",
            "\"shard_contention\"",
            "\"speedup_search_ops_per_sec\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }
}
