//! Serving benchmarks: sharding and group-commit A/B comparisons.
//!
//! Both benchmarks spawn two durable daemons on ephemeral ports, load an
//! identical seeded corpus into each, and drive the same mixed workload
//! against both — some clients search in a closed loop, the rest issue
//! durable index writes (Scheme 2 fake updates through the `UPDATE_MANY`
//! envelope).
//!
//! * [`run_bench`] compares 1 shard vs `shards` shards per tenant
//!   (`BENCH_serving.json`). Since searches moved to immutable snapshots
//!   they never queue behind a journal fsync on any shard count, so this
//!   arm now measures write-path parallelism rather than a search-path
//!   collapse (the pre-group-commit servers showed 2x+ search speedups
//!   here purely from fsync queueing).
//! * [`run_group_commit_bench`] fixes the shard count and toggles
//!   `TenantParams::group_commit` (`BENCH_groupcommit.json`): the grouped
//!   arm amortizes one fsync over every mutation staged while the leader
//!   flushed, which is where the fsyncs-per-op and update-throughput
//!   deltas come from.
//! * [`run_search_bench`] measures the search hot path on one in-memory
//!   daemon (`BENCH_search.json`): cold first searches vs memo-served
//!   repeats, and `SEARCH_MANY` batches vs the same searches one round
//!   trip at a time.
//! * [`run_update_bench`] fixes shards and group commit and toggles the
//!   storage backend (`BENCH_backend.json`): an update-heavy workload
//!   with periodic mid-run checkpoints, where the btree arm rewrites
//!   every shard snapshot per checkpoint and the lsm arm flushes only
//!   the tags dirtied since the last one.
//! * [`run_idle_bench`] measures the epoll reactor's idle-connection
//!   scaling (`BENCH_reactor.json`): one in-memory `sse-serverd` child
//!   process holds thousands of idle tenant connections while a hot
//!   search client measures latency before and under that load. Running
//!   the daemon in its own process keeps the herd's client sockets out
//!   of its fd budget and its RSS — `/proc/<pid>/status` then reports
//!   exactly what the server pays per idle connection, sampled at the
//!   halfway mark and at full strength so growth (which must stay flat)
//!   is visible. The final graceful drain — with every idle connection
//!   still open — is timed and must exit clean.
//! * [`run_hotpath_bench`] measures the zero-copy serving pipeline
//!   (`BENCH_hotpath.json`): a captured warm search replayed over a raw
//!   socket against three in-process daemons — the owned-buffer fallback
//!   (`pool: false`), the pooled default, and the pooled daemon under a
//!   pipelined burst of requests per round. The allocation meter counts
//!   server-thread heap traffic per op (the binary installs the counting
//!   allocator; the daemon's reactor and worker threads opt in), and the
//!   `ADMIN_STATS` deltas report bytes memcpy'd, pool hit rates, and the
//!   mean `writev` syscall batch.
//! * [`run_sched_bench`] measures the affinity-sharded worker runtime
//!   (`BENCH_sched.json`): multi-tenant pipelined bursts mixing plain
//!   searches with `SEARCH_MANY` batches, under uniform and skewed
//!   tenant weights, against affinity routing and its round-robin
//!   (global-queue) baseline. The `ADMIN_STATS` deltas expose the
//!   scheduler counters (local hits, steals, spills, fan-out parts
//!   helped) plus the queue-wait/service-time latency decomposition,
//!   and the `allocmeter` spawn counter proves the measured window
//!   served every request — fan-out parts included — without spawning
//!   a single thread.
//!
//! The updaters run Optimization 2 (`CtrPolicy::OnSearchOnly`) and never
//! search, so their chain counter never advances past 1 and the workload
//! cannot exhaust the chain regardless of duration.

use crate::daemon::{Daemon, ServerConfig};
use crate::histogram::LatencyHistogram;
use crate::proto::{self, Hello, SchemeId, HELLO_SEQ, KIND_DATA, KIND_SEARCH_MANY, STATUS_OK};
use crate::tenant::TenantParams;
use crate::transport::TcpTransport;
use sse_core::scheme2::{CtrPolicy, Scheme2Client, Scheme2Config};
use sse_core::types::{Document, Keyword, MasterKey};
use sse_net::frame::encode_frame;
use sse_net::link::Transport;
use sse_storage::BackendKind;
use std::io::{Error, Read, Result, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Benchmark parameters.
#[derive(Clone, Debug)]
pub struct BenchOptions {
    /// Concurrent clients per arm (half search, half update).
    pub clients: usize,
    /// Shard count of the sharded arm (the baseline arm always runs 1).
    pub shards: usize,
    /// Workload seed (corpus content and search order derive from it).
    pub seed: u64,
    /// Distinct keywords per searcher corpus.
    pub keywords: usize,
    /// Documents per searcher corpus.
    pub docs: usize,
    /// Measured window per arm.
    pub duration: Duration,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            clients: 8,
            shards: 8,
            seed: 7,
            keywords: 32,
            docs: 32,
            duration: Duration::from_millis(1500),
        }
    }
}

/// One arm's measurements.
#[derive(Clone, Debug)]
pub struct BenchArm {
    /// Shards per tenant database in this arm.
    pub shards: usize,
    /// Whether shard journals group-committed concurrent mutations.
    pub group_commit: bool,
    /// Searches completed inside the measured window.
    pub search_ops: u64,
    /// Search throughput (searcher clients only).
    pub search_ops_per_sec: f64,
    /// Index writes completed inside the measured window.
    pub update_ops: u64,
    /// Index write throughput (updater clients only).
    pub update_ops_per_sec: f64,
    /// Client-observed search latency quantiles (ns).
    pub p50_ns: u64,
    /// 95th percentile (ns).
    pub p95_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// Per-shard lock-contention counters from `ADMIN_STATS` (a slot is
    /// bumped each time a request found its shard lock held).
    pub shard_contention: Vec<u64>,
    /// `BUSY` responses absorbed by transport backoff.
    pub busy_retries: u64,
    /// Journal flush groups committed (one fsync each).
    pub groups_committed: u64,
    /// Mutations made durable across those groups.
    pub ops_committed: u64,
    /// `ops_committed / groups_committed` (0 when idle).
    pub mean_group_size: f64,
    /// Largest single flush group.
    pub max_group_size: u64,
    /// `groups_committed / ops_committed` — the headline amortization
    /// ratio (1.0 means every mutation paid its own fsync).
    pub fsyncs_per_op: f64,
    /// Fsyncs avoided versus one-per-mutation.
    pub fsyncs_saved: u64,
    /// Immutable shard snapshots published for the lock-free search path.
    pub snapshot_swaps: u64,
    /// Storage backend serving this arm.
    pub backend: BackendKind,
    /// Mid-run checkpoints issued by the checkpointer client (0 when the
    /// arm runs without one; graceful-shutdown checkpoints not counted).
    pub checkpoints: u64,
    /// LSM sorted runs written (flushes + compaction outputs); 0 on btree.
    pub runs_flushed: u64,
    /// LSM runs live at snapshot time; 0 on btree.
    pub runs_live: u64,
    /// LSM full-merge compactions; 0 on btree.
    pub compactions: u64,
    /// Bloom filters consulted on reads; 0 on btree.
    pub bloom_checks: u64,
    /// Run reads skipped because a bloom filter ruled the key out.
    pub bloom_skips: u64,
}

/// Full benchmark report (both arms plus the headline ratio).
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Parameters the run used.
    pub options: BenchOptions,
    /// Single-shard baseline.
    pub baseline: BenchArm,
    /// Sharded arm.
    pub sharded: BenchArm,
    /// `sharded.search_ops_per_sec / baseline.search_ops_per_sec`.
    pub speedup_search_ops_per_sec: f64,
}

/// Serialize one arm as a JSON object. Hand-rolled (the workspace carries
/// no JSON dependency); all fields are numeric so no string escaping is
/// needed.
fn arm_json(a: &BenchArm) -> String {
    let contention: Vec<String> = a.shard_contention.iter().map(u64::to_string).collect();
    format!(
        "{{\"shards\":{},\"group_commit\":{},\"backend\":\"{}\",\"search_ops\":{},\
         \"search_ops_per_sec\":{:.2},\"update_ops\":{},\
         \"update_ops_per_sec\":{:.2},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\
         \"shard_contention\":[{}],\"busy_retries\":{},\
         \"groups_committed\":{},\"ops_committed\":{},\
         \"mean_group_size\":{:.3},\"max_group_size\":{},\
         \"fsyncs_per_op\":{:.4},\"fsyncs_saved\":{},\"snapshot_swaps\":{},\
         \"checkpoints\":{},\"runs_flushed\":{},\"runs_live\":{},\
         \"compactions\":{},\"bloom_checks\":{},\"bloom_skips\":{}}}",
        a.shards,
        a.group_commit,
        a.backend,
        a.search_ops,
        a.search_ops_per_sec,
        a.update_ops,
        a.update_ops_per_sec,
        a.p50_ns,
        a.p95_ns,
        a.p99_ns,
        contention.join(","),
        a.busy_retries,
        a.groups_committed,
        a.ops_committed,
        a.mean_group_size,
        a.max_group_size,
        a.fsyncs_per_op,
        a.fsyncs_saved,
        a.snapshot_swaps,
        a.checkpoints,
        a.runs_flushed,
        a.runs_live,
        a.compactions,
        a.bloom_checks,
        a.bloom_skips,
    )
}

impl BenchReport {
    /// Serialize as the `BENCH_serving.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n\"benchmark\":\"sse-serving-sharded\",\n\"seed\":{},\n\"clients\":{},\n\
             \"keywords\":{},\n\"docs\":{},\n\"duration_ms\":{},\n\
             \"arms\":[\n{},\n{}\n],\n\"speedup_search_ops_per_sec\":{:.3}\n}}\n",
            self.options.seed,
            self.options.clients,
            self.options.keywords,
            self.options.docs,
            self.options.duration.as_millis(),
            arm_json(&self.baseline),
            arm_json(&self.sharded),
            self.speedup_search_ops_per_sec,
        )
    }
}

/// Group-commit A/B report: both arms run the same shard count and mixed
/// workload; only `TenantParams::group_commit` differs.
#[derive(Clone, Debug)]
pub struct GroupCommitReport {
    /// Parameters the run used (`options.shards` is the fixed shard count
    /// both arms share).
    pub options: BenchOptions,
    /// Baseline arm: one journal fsync per mutation.
    pub ungrouped: BenchArm,
    /// Group-commit arm: concurrent mutations share a flush group.
    pub grouped: BenchArm,
    /// `grouped.update_ops_per_sec / ungrouped.update_ops_per_sec`.
    pub speedup_update_ops_per_sec: f64,
    /// `grouped.p99_ns / ungrouped.p99_ns` for searches — below 1.0 when
    /// grouping keeps searches from queueing behind fsyncing workers.
    pub search_p99_ratio: f64,
}

impl GroupCommitReport {
    /// Serialize as the `BENCH_groupcommit.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n\"benchmark\":\"sse-group-commit\",\n\"seed\":{},\n\"clients\":{},\n\
             \"shards\":{},\n\"keywords\":{},\n\"docs\":{},\n\"duration_ms\":{},\n\
             \"arms\":[\n{},\n{}\n],\n\"speedup_update_ops_per_sec\":{:.3},\n\
             \"search_p99_ratio\":{:.3}\n}}\n",
            self.options.seed,
            self.options.clients,
            self.options.shards,
            self.options.keywords,
            self.options.docs,
            self.options.duration.as_millis(),
            arm_json(&self.ungrouped),
            arm_json(&self.grouped),
            self.speedup_update_ops_per_sec,
            self.search_p99_ratio,
        )
    }
}

/// Tiny deterministic generator for corpus/search-order decisions (the
/// workspace's `rand` shim lives elsewhere; splitmix64 is plenty here).
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn keyword(i: usize) -> Keyword {
    Keyword::new(format!("bench-kw-{i}"))
}

/// Build one searcher's corpus: `docs` documents spread over `keywords`
/// distinct keywords, ids strided per client so clients sharing the tenant
/// document store never collide.
fn corpus(opts: &BenchOptions, client: usize) -> Vec<Document> {
    let mut rng = SplitMix(opts.seed ^ ((client as u64) << 17) ^ 0xBE7C);
    (0..opts.docs)
        .map(|d| {
            let kw = keyword((rng.next() as usize) % opts.keywords.max(1));
            let id = (d * opts.clients.max(1) + client) as u64;
            Document::new(
                id,
                format!("record-{client}-{d}").into_bytes(),
                [kw.as_str()],
            )
        })
        .collect()
}

fn connect_scheme2(
    addr: &str,
    seed: u64,
    client: usize,
    config: Scheme2Config,
) -> Result<Scheme2Client<TcpTransport>> {
    let transport = TcpTransport::connect(addr, "bench-tenant", SchemeId::Scheme2)?;
    let key = MasterKey::from_seed(seed ^ ((client as u64) << 32) ^ 0xBEBC);
    Ok(Scheme2Client::new_seeded(
        transport,
        key,
        config,
        seed.wrapping_add(client as u64),
    ))
}

/// Everything that distinguishes one benchmark arm from another: the
/// tenant geometry, the backend, and the optional checkpoint/preload
/// pressure. The workload itself (clients, duration, corpus) comes from
/// the shared [`BenchOptions`].
struct ArmSpec {
    shards: usize,
    group_commit: bool,
    backend: BackendKind,
    searchers: usize,
    /// With this set, a dedicated client issues a wire `CHECKPOINT` on
    /// the period throughout the window, so the arm also measures how
    /// checkpoint cost (full snapshot rewrite on btree, dirty-tag run
    /// flush on lsm) interferes with foreground throughput.
    checkpoint_every: Option<Duration>,
    /// Cold keywords indexed and checkpointed before the window opens —
    /// resident state the workload never touches, which a btree
    /// checkpoint must nonetheless rewrite.
    preload_keywords: usize,
}

/// Run one arm: spawn a durable daemon per `spec`, load the corpus, and
/// drive the mixed workload for the measured window.
fn run_arm(opts: &BenchOptions, spec: &ArmSpec, data_dir: &Path) -> Result<BenchArm> {
    let ArmSpec {
        shards,
        group_commit,
        backend,
        searchers,
        checkpoint_every,
        preload_keywords,
    } = *spec;
    let config = ServerConfig {
        workers: opts.clients.max(2),
        queue_depth: (opts.clients * 8).max(64),
        tenant_params: TenantParams {
            shards,
            group_commit,
            backend,
            ..TenantParams::default()
        },
        data_dir: Some(data_dir.to_path_buf()),
        ..ServerConfig::default()
    };
    let daemon = Daemon::spawn(config).map_err(|e| Error::other(format!("spawn: {e}")))?;
    let addr = daemon.local_addr().to_string();

    if preload_keywords > 0 {
        // Build the cold resident index: tags the measured window never
        // touches again. The settling checkpoint folds them into each
        // backend's durable form, so the mid-run checkpoints price only
        // the window's churn — which on btree still means rewriting this
        // entire snapshot, while lsm flushes just the dirty tags.
        let mut c = connect_scheme2(
            &addr,
            opts.seed,
            8000,
            Scheme2Config::standard().with_chain_length(16),
        )?;
        let kws: Vec<Keyword> = (0..preload_keywords).map(keyword).collect();
        for chunk in kws.chunks(2048) {
            let groups: Vec<Vec<Keyword>> = chunk.chunks(64).map(<[Keyword]>::to_vec).collect();
            c.fake_update_many(&groups)
                .map_err(|e| Error::other(format!("preload: {e}")))?;
        }
        c.request_checkpoint()
            .map_err(|e| Error::other(format!("preload checkpoint: {e}")))?;
    }

    let searchers = searchers.clamp(1, opts.clients.saturating_sub(1).max(1));
    let updaters = opts.clients.saturating_sub(searchers).max(1);
    let checkpointers = usize::from(checkpoint_every.is_some());

    let stop = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(searchers + updaters + checkpointers + 1));
    let search_ops = Arc::new(AtomicU64::new(0));
    let update_ops = Arc::new(AtomicU64::new(0));
    let checkpoints = Arc::new(AtomicU64::new(0));
    let busy_retries = Arc::new(AtomicU64::new(0));
    let histogram = Arc::new(LatencyHistogram::new());

    let mut joins = Vec::new();
    for client in 0..searchers {
        let addr = addr.clone();
        let opts = opts.clone();
        let stop = stop.clone();
        let start = start.clone();
        let search_ops = search_ops.clone();
        let busy_retries = busy_retries.clone();
        let histogram = histogram.clone();
        joins.push(std::thread::spawn(move || -> Result<()> {
            // Setup before the barrier: each searcher loads its own corpus
            // (distinct master keys give disjoint tags, so clients share
            // the tenant without coordination) and keeps the client — its
            // chain counter state must carry into the searches.
            // Short chains keep the client-side hash work per operation
            // trivial; the benchmark measures serving, not chain building.
            let mut c = connect_scheme2(
                &addr,
                opts.seed,
                client,
                Scheme2Config::standard().with_chain_length(64),
            )?;
            c.store_batch(&corpus(&opts, client))
                .map_err(|e| Error::other(format!("setup store: {e}")))?;
            let mut rng = SplitMix(opts.seed ^ ((client as u64) << 9) ^ 0x5EA7);
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                let kw = keyword((rng.next() as usize) % opts.keywords.max(1));
                let started = Instant::now();
                c.search(&kw).map_err(|e| Error::other(e.to_string()))?;
                histogram.record(started.elapsed());
                search_ops.fetch_add(1, Ordering::Relaxed);
            }
            busy_retries.fetch_add(c.transport_mut().busy_retries(), Ordering::Relaxed);
            Ok(())
        }));
    }
    for updater in 0..updaters {
        let addr = addr.clone();
        let opts = opts.clone();
        let stop = stop.clone();
        let start = start.clone();
        let update_ops = update_ops.clone();
        let busy_retries = busy_retries.clone();
        joins.push(std::thread::spawn(move || -> Result<()> {
            // Updater keys are offset past the searcher range so their tags
            // (and shard placement) are independent of the searchers'.
            // Updaters never search, so their chains never advance past
            // counter 1 (Opt. 2) and a short chain is all they need — each
            // operation is then dominated by the server-side journal fsync,
            // not by client hashing.
            let mut c = connect_scheme2(
                &addr,
                opts.seed,
                1000 + updater,
                Scheme2Config::standard().with_chain_length(16),
            )?;
            let mut rng = SplitMix(opts.seed ^ ((updater as u64) << 5) ^ 0x0bda);
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                // One single-keyword group per envelope: one shard locked,
                // one journal fsync — the minimal durable index write (the
                // multi-part paths are covered by the test suites). A small
                // keyword universe keeps every chain cached after the first
                // few operations.
                let pick = |rng: &mut SplitMix| keyword((rng.next() as usize) % 64);
                let groups = vec![vec![pick(&mut rng)]];
                c.fake_update_many(&groups)
                    .map_err(|e| Error::other(e.to_string()))?;
                update_ops.fetch_add(1, Ordering::Relaxed);
            }
            busy_retries.fetch_add(c.transport_mut().busy_retries(), Ordering::Relaxed);
            Ok(())
        }));
    }
    if let Some(period) = checkpoint_every {
        let addr = addr.clone();
        let seed = opts.seed;
        let stop = stop.clone();
        let start = start.clone();
        let checkpoints = checkpoints.clone();
        joins.push(std::thread::spawn(move || -> Result<()> {
            // One checkpointer per arm: sleeps in short slices so it
            // notices `stop` promptly, then asks the daemon to persist the
            // doc store and keyword index mid-run. On btree that rewrites
            // every shard snapshot; on lsm it flushes only dirty tags.
            let mut c = connect_scheme2(&addr, seed, 9000, Scheme2Config::standard())?;
            start.wait();
            let slice = Duration::from_millis(10);
            let mut due = Instant::now() + period;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(slice);
                if Instant::now() >= due {
                    c.request_checkpoint()
                        .map_err(|e| Error::other(e.to_string()))?;
                    checkpoints.fetch_add(1, Ordering::Relaxed);
                    due = Instant::now() + period;
                }
            }
            Ok(())
        }));
    }

    start.wait();
    let measured = Instant::now();
    std::thread::sleep(opts.duration);
    stop.store(true, Ordering::Relaxed);
    let mut first_error = None;
    for join in joins {
        match join.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                first_error.get_or_insert(e);
            }
            Err(_) => {
                first_error.get_or_insert_with(|| Error::other("bench client panicked"));
            }
        }
    }
    let elapsed = measured.elapsed();
    if let Some(e) = first_error {
        daemon.shutdown();
        return Err(e);
    }

    let mut admin = TcpTransport::connect(&addr, "bench-tenant", SchemeId::Scheme2)?;
    let stats = admin.admin_stats()?;
    drop(admin);
    daemon.shutdown();

    let search_ops = search_ops.load(Ordering::Relaxed);
    let update_ops = update_ops.load(Ordering::Relaxed);
    #[allow(clippy::cast_precision_loss)]
    let search_ops_per_sec = search_ops as f64 / elapsed.as_secs_f64().max(1e-9);
    #[allow(clippy::cast_precision_loss)]
    let update_ops_per_sec = update_ops as f64 / elapsed.as_secs_f64().max(1e-9);
    let mean_group_size = stats.mean_group_size();
    let fsyncs_per_op = stats.fsyncs_per_op();
    Ok(BenchArm {
        shards,
        group_commit,
        search_ops,
        search_ops_per_sec,
        update_ops,
        update_ops_per_sec,
        p50_ns: histogram.quantile_ns(0.50),
        p95_ns: histogram.quantile_ns(0.95),
        p99_ns: histogram.quantile_ns(0.99),
        shard_contention: stats.shard_contention,
        busy_retries: busy_retries.load(Ordering::Relaxed),
        groups_committed: stats.groups_committed,
        ops_committed: stats.ops_committed,
        mean_group_size,
        max_group_size: stats.max_group_size,
        fsyncs_per_op,
        fsyncs_saved: stats.fsyncs_saved,
        snapshot_swaps: stats.snapshot_swaps,
        backend,
        checkpoints: checkpoints.load(Ordering::Relaxed),
        runs_flushed: stats.backend_runs_flushed,
        runs_live: stats.backend_runs_live,
        compactions: stats.backend_compactions,
        bloom_checks: stats.backend_bloom_checks,
        bloom_skips: stats.backend_bloom_skips,
    })
}

/// Fresh scratch directory for one arm (removed by [`run_bench`]).
fn scratch_dir(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("sse-bench-{tag}-{}-{seed}", std::process::id()))
}

/// Run both arms (1 shard, then `opts.shards`) on identical seeded
/// corpora and workloads.
///
/// # Errors
/// Daemon spawn, connection, or scheme errors from either arm.
pub fn run_bench(opts: &BenchOptions) -> Result<BenchReport> {
    assert!(
        opts.clients >= 2,
        "need at least one searcher and one updater"
    );
    let mut arms = Vec::with_capacity(2);
    for shards in [1, opts.shards.max(1)] {
        let dir = scratch_dir(&format!("s{shards}"), opts.seed);
        let _ = std::fs::remove_dir_all(&dir); // stale state from a crashed run
        std::fs::create_dir_all(&dir)?;
        let result = run_arm(
            opts,
            &ArmSpec {
                shards,
                group_commit: true,
                backend: BackendKind::Btree,
                searchers: (opts.clients / 2).max(1),
                checkpoint_every: None,
                preload_keywords: 0,
            },
            &dir,
        );
        let _ = std::fs::remove_dir_all(&dir);
        arms.push(result?);
    }
    let sharded = arms.pop().expect("two arms");
    let baseline = arms.pop().expect("two arms");
    let speedup = sharded.search_ops_per_sec / baseline.search_ops_per_sec.max(1e-9);
    Ok(BenchReport {
        options: opts.clone(),
        baseline,
        sharded,
        speedup_search_ops_per_sec: speedup,
    })
}

/// Run the group-commit A/B benchmark: both arms use `opts.shards` shards
/// and the same mixed workload; the first arm disables group commit (one
/// journal fsync per mutation), the second enables it. A low shard count
/// is the interesting regime — concurrent updaters must land on the same
/// shard journal for a flush group to form.
///
/// # Errors
/// Daemon spawn, connection, or scheme errors from either arm.
pub fn run_group_commit_bench(opts: &BenchOptions) -> Result<GroupCommitReport> {
    assert!(
        opts.clients >= 2,
        "need at least one searcher and one updater"
    );
    let shards = opts.shards.max(1);
    // Updater-heavy split: flush groups only form from concurrent
    // mutations, so most clients write; a couple of searchers remain to
    // measure the read path under the same mixed load.
    let searchers = (opts.clients / 4).max(1);
    let mut arms = Vec::with_capacity(2);
    for group_commit in [false, true] {
        let tag = if group_commit { "grouped" } else { "ungrouped" };
        let dir = scratch_dir(tag, opts.seed);
        let _ = std::fs::remove_dir_all(&dir); // stale state from a crashed run
        std::fs::create_dir_all(&dir)?;
        let result = run_arm(
            opts,
            &ArmSpec {
                shards,
                group_commit,
                backend: BackendKind::Btree,
                searchers,
                checkpoint_every: None,
                preload_keywords: 0,
            },
            &dir,
        );
        let _ = std::fs::remove_dir_all(&dir);
        arms.push(result?);
    }
    let grouped = arms.pop().expect("two arms");
    let ungrouped = arms.pop().expect("two arms");
    let speedup = grouped.update_ops_per_sec / ungrouped.update_ops_per_sec.max(1e-9);
    #[allow(clippy::cast_precision_loss)]
    let p99_ratio = grouped.p99_ns as f64 / (ungrouped.p99_ns as f64).max(1e-9);
    Ok(GroupCommitReport {
        options: opts.clone(),
        ungrouped,
        grouped,
        speedup_update_ops_per_sec: speedup,
        search_p99_ratio: p99_ratio,
    })
}

/// Cold keywords indexed and checkpointed before the update bench's
/// measured window: resident index state the workload never touches.
/// This is what makes the backend contrast visible — every mid-run btree
/// checkpoint rewrites all of it, every lsm checkpoint skips all of it.
pub const UPDATE_BENCH_PRELOAD_KEYWORDS: usize = 32768;

/// Backend A/B report: both arms run the same shard count, group commit,
/// and update-heavy workload with periodic mid-run checkpoints; only
/// `TenantParams::backend` differs.
#[derive(Clone, Debug)]
pub struct UpdateBenchReport {
    /// Parameters the run used (`options.shards` is the fixed shard count
    /// both arms share).
    pub options: BenchOptions,
    /// Cold resident keywords preloaded before the window (see
    /// [`UPDATE_BENCH_PRELOAD_KEYWORDS`]).
    pub preload_keywords: usize,
    /// Baseline arm on the B+-tree backend (full snapshot rewrite per
    /// checkpoint).
    pub btree: BenchArm,
    /// LSM arm (dirty-tag run flush per checkpoint).
    pub lsm: BenchArm,
    /// Mid-run checkpoint period both arms share.
    pub checkpoint_every: Duration,
    /// `lsm.update_ops_per_sec / btree.update_ops_per_sec` — the CI
    /// bench-smoke gate requires this at or above 1.0.
    pub lsm_vs_btree_update_ratio: f64,
}

impl UpdateBenchReport {
    /// Serialize as the `BENCH_backend.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n\"benchmark\":\"sse-backend-update\",\n\"seed\":{},\n\"clients\":{},\n\
             \"shards\":{},\n\"keywords\":{},\n\"docs\":{},\n\"duration_ms\":{},\n\
             \"checkpoint_every_ms\":{},\n\"preload_keywords\":{},\n\
             \"arms\":[\n{},\n{}\n],\n\"lsm_vs_btree_update_ratio\":{:.3}\n}}\n",
            self.options.seed,
            self.options.clients,
            self.options.shards,
            self.options.keywords,
            self.options.docs,
            self.options.duration.as_millis(),
            self.checkpoint_every.as_millis(),
            self.preload_keywords,
            arm_json(&self.btree),
            arm_json(&self.lsm),
            self.lsm_vs_btree_update_ratio,
        )
    }
}

/// Run the backend A/B benchmark: both arms use `opts.shards` shards,
/// group commit, and an update-heavy workload (GP-style: almost every
/// client issues durable fake updates, a single searcher keeps the read
/// path honest) while a checkpointer client persists the index mid-run.
/// The first arm serves from the `btree` backend, the second from `lsm`;
/// the headline ratio compares update throughput, which is where the
/// lsm backend's dirty-tag checkpoint flush earns its keep.
///
/// # Errors
/// Daemon spawn, connection, or scheme errors from either arm.
pub fn run_update_bench(opts: &BenchOptions) -> Result<UpdateBenchReport> {
    assert!(
        opts.clients >= 2,
        "need at least one searcher and one updater"
    );
    let shards = opts.shards.max(1);
    // Update-heavy split: one searcher in eight. The arm's checkpoint
    // period divides the window so both arms absorb several mid-run
    // checkpoints regardless of the configured duration.
    let searchers = (opts.clients / 8).max(1);
    let checkpoint_every = (opts.duration / 10).max(Duration::from_millis(40));
    let mut arms = Vec::with_capacity(2);
    for backend in [BackendKind::Btree, BackendKind::Lsm] {
        let dir = scratch_dir(backend.as_str(), opts.seed);
        let _ = std::fs::remove_dir_all(&dir); // stale state from a crashed run
        std::fs::create_dir_all(&dir)?;
        let result = run_arm(
            opts,
            &ArmSpec {
                shards,
                group_commit: true,
                backend,
                searchers,
                checkpoint_every: Some(checkpoint_every),
                preload_keywords: UPDATE_BENCH_PRELOAD_KEYWORDS,
            },
            &dir,
        );
        let _ = std::fs::remove_dir_all(&dir);
        arms.push(result?);
    }
    let lsm = arms.pop().expect("two arms");
    let btree = arms.pop().expect("two arms");
    let ratio = lsm.update_ops_per_sec / btree.update_ops_per_sec.max(1e-9);
    Ok(UpdateBenchReport {
        options: opts.clone(),
        preload_keywords: UPDATE_BENCH_PRELOAD_KEYWORDS,
        btree,
        lsm,
        checkpoint_every,
        lsm_vs_btree_update_ratio: ratio,
    })
}

/// Generations appended per keyword before the search arms run. Sets the
/// cold-search cost: the server's first walk unlocks this many generations
/// (one chain step + one commitment + one decrypt each), all of which the
/// memo skips on a repeat search.
const SEARCH_GENERATIONS: usize = 256;
/// Keywords per `SEARCH_MANY` batch (the acceptance criterion's batch-of-8).
const SEARCH_BATCH: usize = 8;
/// Full passes over the keyword set in the repeat arm.
const REPEAT_PASSES: usize = 8;
/// Measured single-group / batch pairs in the batch arm.
const BATCH_ROUNDS: usize = 48;

/// Latency profile of one search-path arm.
#[derive(Clone, Debug)]
pub struct SearchArm {
    /// Operations measured (searches, or groups/batches of
    /// [`SEARCH_BATCH`] for the paired arms).
    pub ops: u64,
    /// Exact mean latency (ns).
    pub mean_ns: u64,
    /// Exact median latency (ns) — the speedup ratios divide these: the
    /// histogram quantiles carry up to 2x bucketing error, and unlike the
    /// mean the median shrugs off the occasional 10x scheduler stall a
    /// loaded single-core host injects into a fixed-work run.
    pub median_ns: u64,
    /// Client-observed p50 (ns, log-bucketed).
    pub p50_ns: u64,
    /// Client-observed p95 (ns, log-bucketed).
    pub p95_ns: u64,
    /// Client-observed p99 (ns, log-bucketed).
    pub p99_ns: u64,
}

/// `BENCH_search.json`: cold vs repeat vs batched search on one daemon.
#[derive(Clone, Debug)]
pub struct SearchBenchReport {
    /// Parameters the run used (`seed`, `shards`, `keywords` apply; the
    /// search bench is fixed-work, so `clients`/`duration` do not).
    pub options: BenchOptions,
    /// Generations per keyword loaded before measuring.
    pub generations: usize,
    /// First search per keyword: full chain walk, memo misses.
    pub cold: SearchArm,
    /// Re-searches of the same keywords: memo hits.
    pub repeat: SearchArm,
    /// Wall clock of [`SEARCH_BATCH`] sequential single searches.
    pub single_group: SearchArm,
    /// Wall clock of one `SEARCH_MANY` batch of the same size.
    pub batch: SearchArm,
    /// `cold.median_ns / repeat.median_ns` — the memo's headline win.
    pub repeat_speedup: f64,
    /// `single_group.median_ns / batch.median_ns` — the envelope's
    /// headline win.
    pub batch_speedup: f64,
    /// Memo hits reported by `ADMIN_STATS` after the run.
    pub cache_hits: u64,
    /// Memo misses reported by `ADMIN_STATS` after the run.
    pub cache_misses: u64,
    /// Forward chain steps the memo avoided, per `ADMIN_STATS`.
    pub walk_steps_saved: u64,
}

fn search_arm_json(name: &str, a: &SearchArm) -> String {
    format!(
        "{{\"arm\":\"{name}\",\"ops\":{},\"mean_ns\":{},\"median_ns\":{},\
         \"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
        a.ops, a.mean_ns, a.median_ns, a.p50_ns, a.p95_ns, a.p99_ns,
    )
}

impl SearchBenchReport {
    /// Serialize as the `BENCH_search.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n\"benchmark\":\"sse-search-path\",\n\"seed\":{},\n\"shards\":{},\n\
             \"keywords\":{},\n\"generations\":{},\n\"batch_size\":{},\n\
             \"arms\":[\n{},\n{},\n{},\n{}\n],\n\
             \"repeat_speedup\":{:.3},\n\"batch_speedup\":{:.3},\n\
             \"search_cache_hits\":{},\n\"search_cache_misses\":{},\n\
             \"walk_steps_saved\":{}\n}}\n",
            self.options.seed,
            self.options.shards,
            self.options.keywords,
            self.generations,
            SEARCH_BATCH,
            search_arm_json("cold", &self.cold),
            search_arm_json("repeat", &self.repeat),
            search_arm_json("single_group", &self.single_group),
            search_arm_json("batch", &self.batch),
            self.repeat_speedup,
            self.batch_speedup,
            self.cache_hits,
            self.cache_misses,
            self.walk_steps_saved,
        )
    }
}

/// Per-arm sample collector: log-bucketed quantiles for the latency
/// profile plus the exact samples for mean and median (the ratio gates
/// divide exact medians — the histogram's 2x bucket error would corrupt
/// them, and a mean lets one scheduler stall skew a fixed-work arm).
struct ArmRecorder {
    hist: LatencyHistogram,
    samples_ns: Vec<u64>,
}

impl ArmRecorder {
    fn new() -> Self {
        ArmRecorder {
            hist: LatencyHistogram::new(),
            samples_ns: Vec::new(),
        }
    }

    fn record(&mut self, sample: Duration) {
        self.hist.record(sample);
        self.samples_ns
            .push(u64::try_from(sample.as_nanos()).unwrap_or(u64::MAX));
    }

    fn finish(&self) -> SearchArm {
        let ops = self.samples_ns.len() as u64;
        let sum: u128 = self.samples_ns.iter().map(|&n| u128::from(n)).sum();
        let mean_ns = u64::try_from(sum / u128::from(ops.max(1))).unwrap_or(u64::MAX);
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        let median_ns = sorted.get(sorted.len() / 2).copied().unwrap_or(0);
        SearchArm {
            ops,
            mean_ns,
            median_ns,
            p50_ns: self.hist.quantile_ns(0.50),
            p95_ns: self.hist.quantile_ns(0.95),
            p99_ns: self.hist.quantile_ns(0.99),
        }
    }
}

/// Run the search-path benchmark: one **in-memory** daemon (searches never
/// touch the journal, and durable corpus loading would dominate the run),
/// one Scheme 2 client on the base counter policy so every one of the
/// [`SEARCH_GENERATIONS`] fake updates advances the chain. Three measured
/// comparisons on the same corpus:
///
/// * **cold** — first search per keyword: the server walks the trapdoor
///   through every generation (memo miss);
/// * **repeat** — the same keywords again: the memo answers from
///   `(tag, applied_seq)` without re-walking the chain;
/// * **single_group vs batch** — [`SEARCH_BATCH`] warm searches issued as
///   sequential rounds vs one `SEARCH_MANY` envelope, measuring the
///   fan-out + round-trip amortization win on identical work.
///
/// # Errors
/// Daemon spawn, connection, or scheme errors.
///
/// # Panics
/// Panics if the daemon returns a position-misaligned batch (the client
/// verifies arity, so this indicates a server bug).
pub fn run_search_bench(opts: &BenchOptions) -> Result<SearchBenchReport> {
    let shards = opts.shards.max(1);
    let keywords = opts.keywords.max(SEARCH_BATCH);
    let config = ServerConfig {
        workers: 4,
        queue_depth: 64,
        tenant_params: TenantParams {
            shards,
            ..TenantParams::default()
        },
        data_dir: None,
        ..ServerConfig::default()
    };
    let daemon = Daemon::spawn(config).map_err(|e| Error::other(format!("spawn: {e}")))?;
    let addr = daemon.local_addr().to_string();

    let scheme = |e: sse_core::error::SseError| Error::other(e.to_string());
    let mut c = connect_scheme2(
        &addr,
        opts.seed,
        0,
        Scheme2Config::standard().with_ctr_policy(CtrPolicy::Always),
    )?;
    let kws: Vec<Keyword> = (0..keywords).map(keyword).collect();
    for _ in 0..SEARCH_GENERATIONS {
        c.fake_update(&kws).map_err(scheme)?;
    }

    let mut cold_rec = ArmRecorder::new();
    for kw in &kws {
        let started = Instant::now();
        c.search(kw).map_err(scheme)?;
        cold_rec.record(started.elapsed());
    }

    let mut repeat_rec = ArmRecorder::new();
    for _ in 0..REPEAT_PASSES {
        for kw in &kws {
            let started = Instant::now();
            c.search(kw).map_err(scheme)?;
            repeat_rec.record(started.elapsed());
        }
    }

    let mut single_rec = ArmRecorder::new();
    let mut batch_rec = ArmRecorder::new();
    for round in 0..BATCH_ROUNDS {
        let window: Vec<Keyword> = (0..SEARCH_BATCH)
            .map(|i| keyword((round * SEARCH_BATCH + i) % keywords))
            .collect();
        let started = Instant::now();
        for kw in &window {
            c.search(kw).map_err(scheme)?;
        }
        single_rec.record(started.elapsed());
        let started = Instant::now();
        let got = c.search_batch(&window).map_err(scheme)?;
        batch_rec.record(started.elapsed());
        assert_eq!(got.len(), SEARCH_BATCH, "batch arity verified by client");
    }

    let mut admin = TcpTransport::connect(&addr, "bench-tenant", SchemeId::Scheme2)?;
    let stats = admin.admin_stats()?;
    drop(admin);
    daemon.shutdown();

    let cold = cold_rec.finish();
    let repeat = repeat_rec.finish();
    let single_group = single_rec.finish();
    let batch = batch_rec.finish();
    #[allow(clippy::cast_precision_loss)]
    let repeat_speedup = cold.median_ns as f64 / (repeat.median_ns as f64).max(1.0);
    #[allow(clippy::cast_precision_loss)]
    let batch_speedup = single_group.median_ns as f64 / (batch.median_ns as f64).max(1.0);
    Ok(SearchBenchReport {
        options: opts.clone(),
        generations: SEARCH_GENERATIONS,
        cold,
        repeat,
        single_group,
        batch,
        repeat_speedup,
        batch_speedup,
        cache_hits: stats.search_cache_hits,
        cache_misses: stats.search_cache_misses,
        walk_steps_saved: stats.walk_steps_saved,
    })
}

/// Parameters for the idle-connection reactor benchmark.
#[derive(Clone, Debug)]
pub struct IdleBenchOptions {
    /// Idle tenant connections to open and hold (each completes a hello
    /// and then goes silent).
    pub idle_conns: usize,
    /// Workload seed (hot corpus content and search order derive from it).
    pub seed: u64,
    /// Distinct keywords in the hot searcher's corpus.
    pub keywords: usize,
    /// Documents in the hot searcher's corpus.
    pub docs: usize,
    /// Measured hot-search window per arm (baseline and under load).
    pub duration: Duration,
}

impl Default for IdleBenchOptions {
    fn default() -> Self {
        IdleBenchOptions {
            idle_conns: 10_000,
            seed: 7,
            keywords: 32,
            docs: 32,
            duration: Duration::from_millis(1500),
        }
    }
}

/// `BENCH_reactor.json`: idle-connection scaling of the epoll reactor.
#[derive(Clone, Debug)]
pub struct IdleBenchReport {
    /// Parameters the run used.
    pub options: IdleBenchOptions,
    /// Idle connections actually held when sampling finished (equals
    /// `options.idle_conns` unless the host ran out of fds or ports).
    pub idle_conns_held: usize,
    /// Daemon-process RSS (kB) before any idle connection was opened.
    pub rss_start_kb: u64,
    /// Daemon-process RSS (kB) with half the idle connections open.
    pub rss_half_kb: u64,
    /// Daemon-process RSS (kB) with every idle connection open.
    pub rss_full_kb: u64,
    /// Daemon RSS growth per connection over the first half (bytes).
    pub per_idle_conn_bytes_first_half: f64,
    /// Daemon RSS growth per connection over the second half (bytes).
    /// Flat scaling means this stays in the same regime as the first
    /// half — superlinear growth here is the failure the benchmark
    /// exists to catch.
    pub per_idle_conn_bytes_second_half: f64,
    /// Hot warm-search latency with no idle connections.
    pub baseline: SearchArm,
    /// The same hot workload while every idle connection is held.
    pub loaded: SearchArm,
    /// `loaded.p99_ns / baseline.p99_ns` — the reactor must not tax the
    /// hot path for connections that never become readable.
    pub hot_p99_ratio: f64,
    /// `loaded.median_ns / baseline.median_ns` (medians shrug off
    /// scheduler stalls that a 1-core CI host injects into p99).
    pub hot_median_ratio: f64,
    /// Connections the daemon accepted over the whole run.
    pub conns_accepted: u64,
    /// Connections open at peak (sampled after the idle herd finished
    /// connecting).
    pub conns_open_peak: u64,
    /// Idle reaps during the run — must be 0 (the bench idle timeout is
    /// far longer than the run).
    pub idle_reaped: u64,
    /// Slow-reader disconnects during the run — must be 0.
    pub slow_reader_disconnects: u64,
    /// Accept-time rejections (`max_conns` cap) — must be 0.
    pub conns_rejected: u64,
    /// Reactor wakeup-pipe notifications over the run.
    pub reactor_wakeups: u64,
    /// Responses that could not be written in one syscall and waited for
    /// `EPOLLOUT`.
    pub writes_deferred: u64,
    /// Wall clock of the graceful drain with every idle connection open.
    pub drain_ms: u64,
    /// Whether the daemon process exited with status 0 after the drain.
    pub drain_clean: bool,
}

impl IdleBenchReport {
    /// Serialize as the `BENCH_reactor.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n\"benchmark\":\"sse-reactor-idle\",\n\"seed\":{},\n\
             \"idle_conns_target\":{},\n\"idle_conns_held\":{},\n\
             \"duration_ms\":{},\n\"rss_start_kb\":{},\n\"rss_half_kb\":{},\n\
             \"rss_full_kb\":{},\n\"per_idle_conn_bytes_first_half\":{:.1},\n\
             \"per_idle_conn_bytes_second_half\":{:.1},\n\
             \"arms\":[\n{},\n{}\n],\n\
             \"hot_p99_ratio\":{:.3},\n\"hot_median_ratio\":{:.3},\n\
             \"conns_accepted\":{},\n\"conns_open_peak\":{},\n\
             \"idle_reaped\":{},\n\"slow_reader_disconnects\":{},\n\
             \"conns_rejected\":{},\n\"reactor_wakeups\":{},\n\
             \"writes_deferred\":{},\n\"drain_ms\":{},\n\"drain_clean\":{}\n}}\n",
            self.options.seed,
            self.options.idle_conns,
            self.idle_conns_held,
            self.options.duration.as_millis(),
            self.rss_start_kb,
            self.rss_half_kb,
            self.rss_full_kb,
            self.per_idle_conn_bytes_first_half,
            self.per_idle_conn_bytes_second_half,
            search_arm_json("hot_baseline", &self.baseline),
            search_arm_json("hot_under_idle_load", &self.loaded),
            self.hot_p99_ratio,
            self.hot_median_ratio,
            self.conns_accepted,
            self.conns_open_peak,
            self.idle_reaped,
            self.slow_reader_disconnects,
            self.conns_rejected,
            self.reactor_wakeups,
            self.writes_deferred,
            self.drain_ms,
            self.drain_clean,
        )
    }
}

/// Resident set size of `pid` in kB from `/proc/<pid>/status`, or 0
/// where that interface does not exist (the report then carries zeros
/// and the CI gate is skipped rather than lying).
fn rss_kb(pid: u32) -> u64 {
    std::fs::read_to_string(format!("/proc/{pid}/status"))
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// The `sse-serverd` child the idle benchmark drives: killed on drop so
/// an error path never leaks a listening daemon. The stdout handle stays
/// open for the child's lifetime (dropping it would turn the daemon's
/// exit summary into a fatal `EPIPE`).
struct BenchDaemon {
    child: std::process::Child,
    _stdout: std::io::BufReader<std::process::ChildStdout>,
    addr: String,
}

impl Drop for BenchDaemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn the sibling `sse-serverd` binary on an ephemeral port and parse
/// the bound address from its startup banner. Both binaries are built
/// into the same directory, so the sibling path needs no configuration.
fn spawn_bench_daemon(max_conns: usize) -> Result<BenchDaemon> {
    use std::io::BufRead;
    let exe = std::env::current_exe()?;
    let serverd = exe
        .parent()
        .map(|d| d.join("sse-serverd"))
        .filter(|p| p.exists())
        .ok_or_else(|| {
            Error::other(format!(
                "sse-serverd not found next to {} (build both binaries)",
                exe.display()
            ))
        })?;
    let mut child = std::process::Command::new(serverd)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue",
            "256",
            // Far beyond the run length: any reap during the bench is a
            // bug in the activity accounting, and the report shows it.
            "--idle-timeout-ms",
            "3600000",
            "--scrub-interval-ms",
            "0",
            "--max-conns",
            &max_conns.to_string(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| Error::other("no stdout pipe from sse-serverd"))?;
    let mut stdout = std::io::BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        if stdout.read_line(&mut line)? == 0 {
            let _ = child.kill();
            let _ = child.wait();
            return Err(Error::other("sse-serverd exited before binding"));
        }
        if let Some(rest) = line.strip_prefix("sse-serverd listening on ") {
            match rest.split_whitespace().next() {
                Some(addr) => break addr.to_string(),
                None => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(Error::other(format!("unparseable banner: {line}")));
                }
            }
        }
    };
    Ok(BenchDaemon {
        child,
        _stdout: stdout,
        addr,
    })
}

/// Open one idle tenant connection: complete the hello round trip, then
/// leave the socket silent for the rest of the run.
fn open_idle_conn(addr: &str, hello: &[u8]) -> Result<TcpStream> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(hello)?;
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut body)?;
    let (status, seq, _) =
        proto::decode_response(&body).ok_or_else(|| Error::other("malformed hello response"))?;
    if (status, seq) != (STATUS_OK, HELLO_SEQ) {
        return Err(Error::other(format!("hello rejected: status {status}")));
    }
    Ok(stream)
}

/// One hot arm: a warm Scheme 2 searcher in a closed loop for the
/// measured window (corpus stored and chains warmed before the clock
/// starts, so every measured operation is a memo-served search).
fn run_hot_arm(addr: &str, opts: &IdleBenchOptions, client: usize) -> Result<SearchArm> {
    let corpus_opts = BenchOptions {
        clients: 1,
        shards: 1,
        seed: opts.seed,
        keywords: opts.keywords,
        docs: opts.docs,
        duration: opts.duration,
    };
    let mut c = connect_scheme2(
        addr,
        opts.seed,
        client,
        Scheme2Config::standard().with_chain_length(64),
    )?;
    c.store_batch(&corpus(&corpus_opts, client))
        .map_err(|e| Error::other(format!("hot corpus store: {e}")))?;
    let kws: Vec<Keyword> = (0..opts.keywords.max(1)).map(keyword).collect();
    for kw in &kws {
        c.search(kw).map_err(|e| Error::other(e.to_string()))?;
    }
    let mut rec = ArmRecorder::new();
    let mut rng = SplitMix(opts.seed ^ ((client as u64) << 9) ^ 0x1d1e);
    let deadline = Instant::now() + opts.duration;
    while Instant::now() < deadline {
        let kw = &kws[(rng.next() as usize) % kws.len()];
        let started = Instant::now();
        c.search(kw).map_err(|e| Error::other(e.to_string()))?;
        rec.record(started.elapsed());
    }
    Ok(rec.finish())
}

/// Run the idle-connection reactor benchmark: spawn an **in-memory**
/// `sse-serverd` child (idle scaling is a memory and scheduling
/// question, not a durability one), measure a hot warm-search baseline,
/// then hold `opts.idle_conns` silent tenant connections open while the
/// same hot workload repeats. The daemon's RSS is sampled before, at
/// half strength, and at full strength; the daemon then drains
/// gracefully — via `ADMIN_SHUTDOWN` with every idle connection still
/// open — and must exit clean.
///
/// This process's fd limit is raised first (the herd holds one client
/// fd per connection; the daemon raises its own limit from `--max-conns`
/// at startup). If a limit cannot be raised the herd stops at the first
/// failed connect and `idle_conns_held` records how far it got.
///
/// # Errors
/// Daemon spawn, hot-workload, or admin-protocol errors. A mid-herd
/// connect failure is not an error — the report simply holds fewer
/// connections.
pub fn run_idle_bench(opts: &IdleBenchOptions) -> Result<IdleBenchReport> {
    let target = opts.idle_conns;
    // One client fd per held connection plus headroom for the hot client
    // and admin connections.
    let wanted = (target as u64) + 1024;
    if let Ok(got) = epoll::raise_nofile_limit(wanted) {
        if got < wanted {
            eprintln!("sse-bench: fd limit {got} below {wanted}; the idle herd may fall short");
        }
    }
    let mut daemon = spawn_bench_daemon(target + 64)?;
    let addr = daemon.addr.clone();
    let pid = daemon.child.id();

    let baseline = run_hot_arm(&addr, opts, 0)?;

    let hello = encode_frame(
        &Hello {
            tenant: "idle-tenant".into(),
            scheme: SchemeId::Scheme1,
        }
        .encode(),
    );
    let rss_start_kb = rss_kb(pid);
    let mut herd = Vec::with_capacity(target);
    let mut rss_half_kb = rss_start_kb;
    while herd.len() < target {
        match open_idle_conn(&addr, &hello) {
            Ok(s) => herd.push(s),
            Err(e) => {
                eprintln!(
                    "sse-bench: idle herd stopped at {} of {target}: {e}",
                    herd.len()
                );
                break;
            }
        }
        if herd.len() == target / 2 {
            rss_half_kb = rss_kb(pid);
        }
    }
    let rss_full_kb = rss_kb(pid);
    let held = herd.len();

    let loaded = run_hot_arm(&addr, opts, 1)?;

    let mut admin = TcpTransport::connect(&addr, "bench-admin", SchemeId::Scheme2)?;
    let stats = admin.admin_stats()?;
    let drain_started = Instant::now();
    admin.admin_shutdown()?;
    drop(admin);
    let status = daemon.child.wait()?;
    let drain_ms = u64::try_from(drain_started.elapsed().as_millis()).unwrap_or(u64::MAX);
    drop(herd);

    let first_half = held / 2;
    let second_half = held - first_half;
    #[allow(clippy::cast_precision_loss)]
    let per_first =
        (rss_half_kb.saturating_sub(rss_start_kb) * 1024) as f64 / (first_half.max(1)) as f64;
    #[allow(clippy::cast_precision_loss)]
    let per_second =
        (rss_full_kb.saturating_sub(rss_half_kb) * 1024) as f64 / (second_half.max(1)) as f64;
    #[allow(clippy::cast_precision_loss)]
    let hot_p99_ratio = loaded.p99_ns as f64 / (baseline.p99_ns as f64).max(1.0);
    #[allow(clippy::cast_precision_loss)]
    let hot_median_ratio = loaded.median_ns as f64 / (baseline.median_ns as f64).max(1.0);
    Ok(IdleBenchReport {
        options: opts.clone(),
        idle_conns_held: held,
        rss_start_kb,
        rss_half_kb,
        rss_full_kb,
        per_idle_conn_bytes_first_half: per_first,
        per_idle_conn_bytes_second_half: per_second,
        baseline,
        loaded,
        hot_p99_ratio,
        hot_median_ratio,
        conns_accepted: stats.conns_accepted,
        conns_open_peak: stats.conns_open,
        idle_reaped: stats.conns_idle_reaped,
        slow_reader_disconnects: stats.slow_reader_disconnects,
        conns_rejected: stats.conns_rejected,
        reactor_wakeups: stats.reactor_wakeups,
        writes_deferred: stats.writes_deferred,
        drain_ms,
        drain_clean: status.success(),
    })
}

/// Parameters for the zero-copy hot-path benchmark.
#[derive(Clone, Debug)]
pub struct HotpathOptions {
    /// Workload seed (corpus content derives from it).
    pub seed: u64,
    /// Distinct keywords in the warmed corpus.
    pub keywords: usize,
    /// Documents in the warmed corpus.
    pub docs: usize,
    /// Measured window per arm.
    pub duration: Duration,
    /// Requests per round in the pipelined arm (the other two arms run
    /// closed-loop, one request in flight).
    pub depth: usize,
}

impl Default for HotpathOptions {
    fn default() -> Self {
        HotpathOptions {
            seed: 7,
            keywords: 32,
            docs: 32,
            duration: Duration::from_millis(1500),
            depth: 16,
        }
    }
}

/// Transport shim recording the scheme-level bytes of the last single
/// round trip, so the measured loop can replay one warm search verbatim
/// over a bare socket — the same bytes every round, which takes the
/// client's crypto out of the measurement and leaves only the serving
/// pipeline. Batch rounds pass through uncaptured (corpus loading).
struct CaptureTransport {
    inner: TcpTransport,
    last_request: Vec<u8>,
}

impl Transport for CaptureTransport {
    fn round_trip(&mut self, request: &[u8]) -> Result<Vec<u8>> {
        self.last_request = request.to_vec();
        self.inner.round_trip(request)
    }

    fn round_trip_batch(&mut self, parts: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        self.inner.round_trip_batch(parts)
    }

    fn round_trip_search_batch(&mut self, parts: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        self.inner.round_trip_search_batch(parts)
    }
}

/// One hot-path arm's measurements. Counter fields are deltas over the
/// measured window only (warm-up traffic excluded); latency quantiles are
/// per *round* — one request for the closed-loop arms, `depth` pipelined
/// requests for the pipelined arm.
#[derive(Clone, Debug)]
pub struct HotpathArm {
    /// Arm label (`legacy`, `pooled`, `pipelined`).
    pub name: &'static str,
    /// Whether the daemon served from pooled buffers.
    pub pool: bool,
    /// Requests in flight per round.
    pub depth: usize,
    /// Search requests completed inside the window.
    pub ops: u64,
    /// Search throughput.
    pub ops_per_sec: f64,
    /// Server-thread heap acquisitions per request (zero unless the
    /// hosting binary installed the counting allocator).
    pub allocs_per_op: f64,
    /// Server-thread heap bytes requested per request.
    pub alloc_bytes_per_op: f64,
    /// Payload bytes memcpy'd on the serving path per request (the
    /// counter the pooled pipeline exists to drive to zero).
    pub bytes_copied_per_op: f64,
    /// Pool acquires served from a recycled buffer.
    pub pool_hits: u64,
    /// Pool acquires that fell through to a fresh allocation.
    pub pool_misses: u64,
    /// Buffers returned to a free list on drop.
    pub pool_recycles: u64,
    /// `hits / (hits + misses)` (0 when the pool is off).
    pub pool_hit_rate: f64,
    /// Gather-write syscalls issued by the reactor.
    pub writev_calls: u64,
    /// Response frames those syscalls finished writing.
    pub writev_frames: u64,
    /// `writev_frames / writev_calls` — above 1.0 means queued responses
    /// coalesced into shared syscalls.
    pub mean_writev_batch: f64,
    /// Worker completions absorbed by an already-pending reactor wakeup.
    pub wakeups_coalesced: u64,
    /// Client-observed p50 per round (ns).
    pub p50_ns: u64,
    /// Client-observed p99 per round (ns).
    pub p99_ns: u64,
}

fn hotpath_arm_json(a: &HotpathArm) -> String {
    format!(
        "{{\"arm\":\"{}\",\"pool\":{},\"depth\":{},\"ops\":{},\
         \"ops_per_sec\":{:.2},\"allocs_per_op\":{:.3},\
         \"alloc_bytes_per_op\":{:.1},\"bytes_copied_per_op\":{:.1},\
         \"pool_hits\":{},\"pool_misses\":{},\"pool_recycles\":{},\
         \"pool_hit_rate\":{:.4},\"writev_calls\":{},\"writev_frames\":{},\
         \"mean_writev_batch\":{:.3},\"wakeups_coalesced\":{},\
         \"p50_ns\":{},\"p99_ns\":{}}}",
        a.name,
        a.pool,
        a.depth,
        a.ops,
        a.ops_per_sec,
        a.allocs_per_op,
        a.alloc_bytes_per_op,
        a.bytes_copied_per_op,
        a.pool_hits,
        a.pool_misses,
        a.pool_recycles,
        a.pool_hit_rate,
        a.writev_calls,
        a.writev_frames,
        a.mean_writev_batch,
        a.wakeups_coalesced,
        a.p50_ns,
        a.p99_ns,
    )
}

/// `BENCH_hotpath.json`: the zero-copy serving pipeline A/B/C.
#[derive(Clone, Debug)]
pub struct HotpathReport {
    /// Parameters the run used.
    pub options: HotpathOptions,
    /// Owned-buffer fallback (`pool: false`), closed loop.
    pub legacy: HotpathArm,
    /// Pooled pipeline (the default), closed loop.
    pub pooled: HotpathArm,
    /// Pooled pipeline under `depth` pipelined requests per round — the
    /// regime where queued responses share `writev` syscalls.
    pub pipelined: HotpathArm,
    /// `1 - pooled.allocs_per_op / legacy.allocs_per_op` — the headline
    /// allocation win (0 when the counting allocator is not installed).
    pub alloc_reduction: f64,
    /// `1 - pooled.bytes_copied_per_op / legacy.bytes_copied_per_op`.
    pub copy_reduction: f64,
    /// `pooled.p99_ns / legacy.p99_ns` (both closed-loop) — pooling must
    /// not tax tail latency.
    pub p99_ratio: f64,
    /// The pipelined arm's mean `writev` batch, pulled up as the CI
    /// gate's headline number.
    pub pipelined_mean_writev_batch: f64,
}

impl HotpathReport {
    /// Serialize as the `BENCH_hotpath.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n\"benchmark\":\"sse-hotpath\",\n\"seed\":{},\n\"keywords\":{},\n\
             \"docs\":{},\n\"duration_ms\":{},\n\"depth\":{},\n\
             \"arms\":[\n{},\n{},\n{}\n],\n\
             \"alloc_reduction\":{:.4},\n\"copy_reduction\":{:.4},\n\
             \"p99_ratio\":{:.3},\n\"pipelined_mean_writev_batch\":{:.3}\n}}\n",
            self.options.seed,
            self.options.keywords,
            self.options.docs,
            self.options.duration.as_millis(),
            self.options.depth,
            hotpath_arm_json(&self.legacy),
            hotpath_arm_json(&self.pooled),
            hotpath_arm_json(&self.pipelined),
            self.alloc_reduction,
            self.copy_reduction,
            self.p99_ratio,
            self.pipelined_mean_writev_batch,
        )
    }
}

/// Read one frame-aligned response off a raw benchmark socket. Pipelined
/// responses arrive as a byte stream; `read_exact` reassembles them
/// regardless of how the kernel segmented the writes.
fn read_raw_response(stream: &mut TcpStream) -> Result<(u8, u32)> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut body)?;
    let (status, seq, _payload) =
        proto::decode_response(&body).ok_or_else(|| Error::other("malformed response frame"))?;
    Ok((status, seq))
}

/// Run one hot-path arm: spawn an **in-memory** daemon (the hot path is a
/// serving question, not a durability one), warm a tenant through the
/// ordinary scheme client while capturing the bytes of one memo-served
/// search, then replay that search over a bare socket — `depth` copies
/// per round in a single write, collecting `depth` responses (workers
/// may finish them out of order; each must be `OK`). Counters are
/// snapshotted on either side of the measured loop so warm-up traffic
/// never pollutes the per-op numbers.
fn run_hotpath_arm(
    opts: &HotpathOptions,
    name: &'static str,
    pool: bool,
    depth: usize,
) -> Result<HotpathArm> {
    let depth = depth.max(1);
    let config = ServerConfig {
        workers: 4,
        queue_depth: (depth * 4).max(64),
        pool,
        data_dir: None,
        ..ServerConfig::default()
    };
    let daemon = Daemon::spawn(config).map_err(|e| Error::other(format!("spawn: {e}")))?;
    let addr = daemon.local_addr().to_string();

    // Warm-up: store the corpus and search every keyword once so the
    // measured replay is a memo-served search (the serving pipeline is
    // the subject here, not the chain walk). Searches are read-only, so
    // replaying the captured bytes any number of times is legal.
    let corpus_opts = BenchOptions {
        clients: 1,
        shards: 1,
        seed: opts.seed,
        keywords: opts.keywords,
        docs: opts.docs,
        duration: opts.duration,
    };
    let transport = CaptureTransport {
        inner: TcpTransport::connect(&addr, "bench-tenant", SchemeId::Scheme2)?,
        last_request: Vec::new(),
    };
    let key = MasterKey::from_seed(opts.seed ^ 0xBEBC);
    let mut c = Scheme2Client::new_seeded(
        transport,
        key,
        Scheme2Config::standard().with_chain_length(64),
        opts.seed,
    );
    let scheme = |e: sse_core::error::SseError| Error::other(e.to_string());
    c.store_batch(&corpus(&corpus_opts, 0))
        .map_err(|e| Error::other(format!("hotpath store: {e}")))?;
    let kws: Vec<Keyword> = (0..opts.keywords.max(1)).map(keyword).collect();
    for kw in &kws {
        c.search(kw).map_err(scheme)?;
    }
    c.search(&kws[0]).map_err(scheme)?;
    let search_request = c.transport_mut().last_request.clone();
    drop(c);
    if search_request.is_empty() {
        return Err(Error::other("no search request captured"));
    }

    // The raw replay socket: hello once, then rounds of `depth` requests
    // shipped in one write. Distinct sequence numbers per slot keep the
    // wire honest, though responses are only checked for status (workers
    // complete pipelined requests in any order).
    let mut stream = TcpStream::connect(&addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.write_all(&encode_frame(
        &Hello {
            tenant: "bench-tenant".into(),
            scheme: SchemeId::Scheme2,
        }
        .encode(),
    ))?;
    let (status, seq) = read_raw_response(&mut stream)?;
    if (status, seq) != (STATUS_OK, HELLO_SEQ) {
        return Err(Error::other(format!("hello rejected: status {status}")));
    }
    let mut burst = Vec::new();
    for slot in 0..depth {
        let seq = 1 + u32::try_from(slot).unwrap_or(0);
        burst.extend_from_slice(&encode_frame(&proto::encode_request(
            KIND_DATA,
            seq,
            &search_request,
        )));
    }

    let mut admin = TcpTransport::connect(&addr, "bench-tenant", SchemeId::Scheme2)?;
    let before = admin.admin_stats()?;
    let alloc_before = allocmeter::counters();

    let mut rec = ArmRecorder::new();
    let mut ops: u64 = 0;
    let window = Instant::now();
    let deadline = window + opts.duration;
    while Instant::now() < deadline {
        let started = Instant::now();
        stream.write_all(&burst)?;
        for _ in 0..depth {
            let (status, _seq) = read_raw_response(&mut stream)?;
            if status != STATUS_OK {
                return Err(Error::other(format!(
                    "hotpath search failed: status {status}"
                )));
            }
        }
        rec.record(started.elapsed());
        ops += depth as u64;
    }
    let elapsed = window.elapsed();

    // Allocation delta first (only server threads are tracked, but the
    // closing admin round trip would otherwise land inside it), stats
    // delta second (which must include every measured op).
    let alloc_delta = allocmeter::counters().since(&alloc_before);
    let after = admin.admin_stats()?;
    drop(admin);
    drop(stream);
    daemon.shutdown();

    let pool_hits = after.pool_hits.saturating_sub(before.pool_hits);
    let pool_misses = after.pool_misses.saturating_sub(before.pool_misses);
    let pool_recycles = after.pool_recycles.saturating_sub(before.pool_recycles);
    let writev_calls = after.writev_calls.saturating_sub(before.writev_calls);
    let writev_frames = after.writev_frames.saturating_sub(before.writev_frames);
    let wakeups_coalesced = after
        .wakeups_coalesced
        .saturating_sub(before.wakeups_coalesced);
    let bytes_copied = after.bytes_copied.saturating_sub(before.bytes_copied);
    let lat = rec.finish();
    #[allow(clippy::cast_precision_loss)]
    let ops_f = (ops.max(1)) as f64;
    #[allow(clippy::cast_precision_loss)]
    let ops_per_sec = ops as f64 / elapsed.as_secs_f64().max(1e-9);
    #[allow(clippy::cast_precision_loss)]
    let pool_hit_rate = pool_hits as f64 / ((pool_hits + pool_misses).max(1)) as f64;
    #[allow(clippy::cast_precision_loss)]
    let mean_writev_batch = writev_frames as f64 / (writev_calls.max(1)) as f64;
    #[allow(clippy::cast_precision_loss)]
    Ok(HotpathArm {
        name,
        pool,
        depth,
        ops,
        ops_per_sec,
        allocs_per_op: alloc_delta.allocs as f64 / ops_f,
        alloc_bytes_per_op: alloc_delta.bytes as f64 / ops_f,
        bytes_copied_per_op: bytes_copied as f64 / ops_f,
        pool_hits,
        pool_misses,
        pool_recycles,
        pool_hit_rate,
        writev_calls,
        writev_frames,
        mean_writev_batch,
        wakeups_coalesced,
        p50_ns: lat.p50_ns,
        p99_ns: lat.p99_ns,
    })
}

/// Run the zero-copy hot-path benchmark: three arms on identical warmed
/// corpora — the owned-buffer fallback, the pooled pipeline, and the
/// pooled pipeline under a pipelined burst (where queued responses share
/// gather-write syscalls). Per-op allocation numbers require the hosting
/// binary to install [`allocmeter::CountingAlloc`] as its global
/// allocator (`sse-load` does); without it they read zero and the
/// reduction headline reads 0.
///
/// # Errors
/// Daemon spawn, connection, scheme, or protocol errors from any arm.
pub fn run_hotpath_bench(opts: &HotpathOptions) -> Result<HotpathReport> {
    let legacy = run_hotpath_arm(opts, "legacy", false, 1)?;
    let pooled = run_hotpath_arm(opts, "pooled", true, 1)?;
    let pipelined = run_hotpath_arm(opts, "pipelined", true, opts.depth)?;
    let alloc_reduction = if legacy.allocs_per_op > 0.0 {
        1.0 - pooled.allocs_per_op / legacy.allocs_per_op
    } else {
        0.0
    };
    let copy_reduction = if legacy.bytes_copied_per_op > 0.0 {
        1.0 - pooled.bytes_copied_per_op / legacy.bytes_copied_per_op
    } else {
        0.0
    };
    #[allow(clippy::cast_precision_loss)]
    let p99_ratio = pooled.p99_ns as f64 / (legacy.p99_ns as f64).max(1.0);
    let pipelined_mean_writev_batch = pipelined.mean_writev_batch;
    Ok(HotpathReport {
        options: opts.clone(),
        legacy,
        pooled,
        pipelined,
        alloc_reduction,
        copy_reduction,
        p99_ratio,
        pipelined_mean_writev_batch,
    })
}

/// Parameters for the scheduler/affinity benchmark.
#[derive(Clone, Debug)]
pub struct SchedOptions {
    /// Workload seed (corpus content derives from it).
    pub seed: u64,
    /// Distinct tenants, each with its own warmed corpus and raw replay
    /// socket. Tenant 0 is the hot tenant in the skewed arms.
    pub tenants: usize,
    /// Distinct keywords per tenant corpus.
    pub keywords: usize,
    /// Documents per tenant corpus.
    pub docs: usize,
    /// Measured window per arm.
    pub duration: Duration,
    /// Pipelined requests per round (one round drives one tenant).
    pub depth: usize,
    /// Scheme searches inside each `SEARCH_MANY` slot.
    pub batch_parts: usize,
}

impl Default for SchedOptions {
    fn default() -> Self {
        SchedOptions {
            seed: 11,
            tenants: 8,
            keywords: 8,
            docs: 8,
            duration: Duration::from_millis(1500),
            depth: 32,
            batch_parts: 4,
        }
    }
}

/// One scheduler arm's measurements. Scheduler counters and thread
/// spawns are deltas over the measured window; the queue/service
/// quantiles come from the daemon's lifetime histograms (the daemon is
/// fresh per arm, so warm-up is the only extra traffic in them).
#[derive(Clone, Debug)]
pub struct SchedArm {
    /// Arm label (`affinity_uniform`, `global_skewed`, ...).
    pub name: &'static str,
    /// Whether jobs routed by tenant hash (vs round-robin baseline).
    pub affinity: bool,
    /// Whether tenant 0 carried the skewed hot weight.
    pub skewed: bool,
    /// Wire requests completed inside the window.
    pub ops: u64,
    /// Wire request throughput.
    pub ops_per_sec: f64,
    /// Client-observed p50 per round of `depth` pipelined requests (ns).
    pub p50_ns: u64,
    /// Client-observed p99 per round (ns).
    pub p99_ns: u64,
    /// Server-side queue-wait p50 (accepted → worker dequeue, ns).
    pub queue_p50_ns: u64,
    /// Server-side queue-wait p99 (ns).
    pub queue_p99_ns: u64,
    /// Server-side service-time p50 (dequeue → response, ns).
    pub service_p50_ns: u64,
    /// Server-side service-time p99 (ns).
    pub service_p99_ns: u64,
    /// Jobs accepted by the scheduler.
    pub sched_routed: u64,
    /// Jobs a worker popped from its own queue with itself as home.
    pub sched_local_hits: u64,
    /// Jobs taken from another worker's queue.
    pub sched_stolen: u64,
    /// Jobs that overflowed their home queue into another on submit.
    pub sched_spilled: u64,
    /// Deepest any single run queue got (high-water mark, not a delta).
    pub sched_queue_depth_hw: u64,
    /// `SEARCH_MANY` batches executed by the fan-out executor.
    pub fanout_batches: u64,
    /// Batch parts claimed by helper workers (not the owning worker).
    pub fanout_parts_helped: u64,
    /// Serving-path OS threads spawned inside the window — the number
    /// the spawn-free executor exists to hold at zero.
    pub thread_spawns: u64,
}

fn sched_arm_json(a: &SchedArm) -> String {
    format!(
        "{{\"arm\":\"{}\",\"affinity\":{},\"skewed\":{},\"ops\":{},\
         \"ops_per_sec\":{:.2},\"p50_ns\":{},\"p99_ns\":{},\
         \"queue_p50_ns\":{},\"queue_p99_ns\":{},\
         \"service_p50_ns\":{},\"service_p99_ns\":{},\
         \"sched_routed\":{},\"sched_local_hits\":{},\"sched_stolen\":{},\
         \"sched_spilled\":{},\"sched_queue_depth_hw\":{},\
         \"fanout_batches\":{},\"fanout_parts_helped\":{},\
         \"thread_spawns\":{}}}",
        a.name,
        a.affinity,
        a.skewed,
        a.ops,
        a.ops_per_sec,
        a.p50_ns,
        a.p99_ns,
        a.queue_p50_ns,
        a.queue_p99_ns,
        a.service_p50_ns,
        a.service_p99_ns,
        a.sched_routed,
        a.sched_local_hits,
        a.sched_stolen,
        a.sched_spilled,
        a.sched_queue_depth_hw,
        a.fanout_batches,
        a.fanout_parts_helped,
        a.thread_spawns,
    )
}

/// `BENCH_sched.json`: the affinity-sharded runtime vs its round-robin
/// baseline, under uniform and skewed tenant load.
#[derive(Clone, Debug)]
pub struct SchedReport {
    /// Parameters the run used.
    pub options: SchedOptions,
    /// Affinity routing, every tenant weighted equally.
    pub affinity_uniform: SchedArm,
    /// Round-robin baseline, every tenant weighted equally.
    pub global_uniform: SchedArm,
    /// Affinity routing, tenant 0 carrying ~75% of rounds.
    pub affinity_skewed: SchedArm,
    /// Round-robin baseline under the same skew.
    pub global_skewed: SchedArm,
    /// `affinity_uniform.ops_per_sec / global_uniform.ops_per_sec` —
    /// affinity must not tax balanced load.
    pub uniform_throughput_ratio: f64,
    /// `affinity_skewed.ops_per_sec / global_skewed.ops_per_sec`.
    pub skew_throughput_ratio: f64,
    /// `affinity_skewed.p99_ns / global_skewed.p99_ns` — stealing must
    /// keep the hot tenant's tail comparable to the spread baseline.
    pub skew_p99_ratio: f64,
    /// Same ratio on the server-side queue-wait p99 — the component the
    /// scheduler actually controls.
    pub skew_queue_p99_ratio: f64,
    /// Steals inside the affinity/skewed window: nonzero proves idle
    /// workers drained the hot queue instead of spinning.
    pub steals_under_skew: u64,
    /// Thread spawns summed across all four measured windows — the CI
    /// gate pins this to exactly zero.
    pub steady_state_thread_spawns: u64,
}

impl SchedReport {
    /// Serialize as the `BENCH_sched.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n\"benchmark\":\"sse-sched\",\n\"seed\":{},\n\"tenants\":{},\n\
             \"keywords\":{},\n\"docs\":{},\n\"duration_ms\":{},\n\
             \"depth\":{},\n\"batch_parts\":{},\n\
             \"arms\":[\n{},\n{},\n{},\n{}\n],\n\
             \"uniform_throughput_ratio\":{:.4},\n\
             \"skew_throughput_ratio\":{:.4},\n\"skew_p99_ratio\":{:.3},\n\
             \"skew_queue_p99_ratio\":{:.3},\n\"steals_under_skew\":{},\n\
             \"steady_state_thread_spawns\":{}\n}}\n",
            self.options.seed,
            self.options.tenants,
            self.options.keywords,
            self.options.docs,
            self.options.duration.as_millis(),
            self.options.depth,
            self.options.batch_parts,
            sched_arm_json(&self.affinity_uniform),
            sched_arm_json(&self.global_uniform),
            sched_arm_json(&self.affinity_skewed),
            sched_arm_json(&self.global_skewed),
            self.uniform_throughput_ratio,
            self.skew_throughput_ratio,
            self.skew_p99_ratio,
            self.skew_queue_p99_ratio,
            self.steals_under_skew,
            self.steady_state_thread_spawns,
        )
    }
}

/// Rounds each tenant receives per schedule cycle: uniform gives every
/// tenant one, skew gives tenant 0 twenty-five (~75% of rounds at the
/// default eight tenants) — hot enough that its home queue backlogs and
/// idle workers must steal, while the cold tenants keep every queue's
/// affinity meaningful.
fn sched_schedule(tenants: usize, skewed: bool) -> Vec<usize> {
    let mut schedule = Vec::new();
    for t in 0..tenants.max(1) {
        let weight = if skewed && t == 0 { 25 } else { 1 };
        schedule.extend(std::iter::repeat_n(t, weight));
    }
    schedule
}

/// Run one scheduler arm: an **in-memory** daemon with four workers,
/// `tenants` corpora warmed through the ordinary scheme client (capturing
/// one memo-served search per tenant), then a weighted round-robin of
/// pipelined bursts over bare sockets. Each burst interleaves plain
/// searches (even slots) with `SEARCH_MANY` batches of `batch_parts`
/// copies (odd slots), so every round exercises both the per-core run
/// queues and the spawn-free fan-out executor. Counters are snapshotted
/// on either side of the measured loop.
fn run_sched_arm(
    opts: &SchedOptions,
    name: &'static str,
    affinity: bool,
    skewed: bool,
) -> Result<SchedArm> {
    let depth = opts.depth.max(2);
    let tenants = opts.tenants.max(1);
    let config = ServerConfig {
        workers: 4,
        queue_depth: (depth * 4).max(64),
        affinity,
        data_dir: None,
        ..ServerConfig::default()
    };
    let daemon = Daemon::spawn(config).map_err(|e| Error::other(format!("spawn: {e}")))?;
    let addr = daemon.local_addr().to_string();

    // Warm every tenant and capture one memo-served search request each
    // (read-only, so the measured loop may replay it freely).
    let corpus_opts = BenchOptions {
        clients: 1,
        shards: 1,
        seed: opts.seed,
        keywords: opts.keywords,
        docs: opts.docs,
        duration: opts.duration,
    };
    let scheme = |e: sse_core::error::SseError| Error::other(e.to_string());
    let mut captured: Vec<Vec<u8>> = Vec::with_capacity(tenants);
    for t in 0..tenants {
        let tenant = format!("sched-tenant-{t}");
        let transport = CaptureTransport {
            inner: TcpTransport::connect(&addr, &tenant, SchemeId::Scheme2)?,
            last_request: Vec::new(),
        };
        let key = MasterKey::from_seed(opts.seed ^ 0xAF1_u64.wrapping_add(t as u64));
        let mut c = Scheme2Client::new_seeded(
            transport,
            key,
            Scheme2Config::standard().with_chain_length(64),
            opts.seed.wrapping_add(t as u64),
        );
        c.store_batch(&corpus(&corpus_opts, t))
            .map_err(|e| Error::other(format!("sched store: {e}")))?;
        let kws: Vec<Keyword> = (0..opts.keywords.max(1)).map(keyword).collect();
        for kw in &kws {
            c.search(kw).map_err(scheme)?;
        }
        c.search(&kws[0]).map_err(scheme)?;
        let req = c.transport_mut().last_request.clone();
        drop(c);
        if req.is_empty() {
            return Err(Error::other("no search request captured"));
        }
        captured.push(req);
    }

    // One raw replay socket per tenant, each with a prebuilt burst:
    // plain searches on even slots, fan-out batches on odd slots.
    let mut sockets = Vec::with_capacity(tenants);
    let mut bursts = Vec::with_capacity(tenants);
    for (t, req) in captured.iter().enumerate() {
        let mut stream = TcpStream::connect(&addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.write_all(&encode_frame(
            &Hello {
                tenant: format!("sched-tenant-{t}"),
                scheme: SchemeId::Scheme2,
            }
            .encode(),
        ))?;
        let (status, seq) = read_raw_response(&mut stream)?;
        if (status, seq) != (STATUS_OK, HELLO_SEQ) {
            return Err(Error::other(format!("hello rejected: status {status}")));
        }
        let batch = proto::encode_batch(&vec![req.clone(); opts.batch_parts.max(1)]);
        let mut burst = Vec::new();
        for slot in 0..depth {
            let seq = 1 + u32::try_from(slot).unwrap_or(0);
            if slot % 2 == 0 {
                burst.extend_from_slice(&encode_frame(&proto::encode_request(KIND_DATA, seq, req)));
            } else {
                burst.extend_from_slice(&encode_frame(&proto::encode_request(
                    KIND_SEARCH_MANY,
                    seq,
                    &batch,
                )));
            }
        }
        sockets.push(stream);
        bursts.push(burst);
    }

    let schedule = sched_schedule(tenants, skewed);
    let mut admin = TcpTransport::connect(&addr, "sched-tenant-0", SchemeId::Scheme2)?;
    let before = admin.admin_stats()?;
    let spawns_before = allocmeter::thread_spawns();

    let mut rec = ArmRecorder::new();
    let mut ops: u64 = 0;
    let mut round = 0usize;
    let window = Instant::now();
    let deadline = window + opts.duration;
    while Instant::now() < deadline {
        let t = schedule[round % schedule.len()];
        round += 1;
        let started = Instant::now();
        sockets[t].write_all(&bursts[t])?;
        for _ in 0..depth {
            let (status, _seq) = read_raw_response(&mut sockets[t])?;
            if status != STATUS_OK {
                return Err(Error::other(format!(
                    "sched search failed: status {status}"
                )));
            }
        }
        rec.record(started.elapsed());
        ops += depth as u64;
    }
    let elapsed = window.elapsed();

    let thread_spawns = allocmeter::thread_spawns().saturating_sub(spawns_before);
    let after = admin.admin_stats()?;
    drop(admin);
    drop(sockets);
    daemon.shutdown();

    let lat = rec.finish();
    #[allow(clippy::cast_precision_loss)]
    let ops_per_sec = ops as f64 / elapsed.as_secs_f64().max(1e-9);
    Ok(SchedArm {
        name,
        affinity,
        skewed,
        ops,
        ops_per_sec,
        p50_ns: lat.p50_ns,
        p99_ns: lat.p99_ns,
        queue_p50_ns: after.queue_p50_ns,
        queue_p99_ns: after.queue_p99_ns,
        service_p50_ns: after.service_p50_ns,
        service_p99_ns: after.service_p99_ns,
        sched_routed: after.sched_routed.saturating_sub(before.sched_routed),
        sched_local_hits: after
            .sched_local_hits
            .saturating_sub(before.sched_local_hits),
        sched_stolen: after.sched_stolen.saturating_sub(before.sched_stolen),
        sched_spilled: after.sched_spilled.saturating_sub(before.sched_spilled),
        sched_queue_depth_hw: after.sched_queue_depth_hw,
        fanout_batches: after.fanout_batches.saturating_sub(before.fanout_batches),
        fanout_parts_helped: after
            .fanout_parts_helped
            .saturating_sub(before.fanout_parts_helped),
        thread_spawns,
    })
}

/// Run the scheduler benchmark: four arms on identically warmed
/// multi-tenant daemons — affinity routing vs the round-robin baseline,
/// each under uniform and skewed tenant weights. Thread spawns are
/// counted process-wide by `allocmeter` with no allocator requirement,
/// so the zero-spawn headline holds in any hosting binary.
///
/// # Errors
/// Daemon spawn, connection, scheme, or protocol errors from any arm.
pub fn run_sched_bench(opts: &SchedOptions) -> Result<SchedReport> {
    let affinity_uniform = run_sched_arm(opts, "affinity_uniform", true, false)?;
    let global_uniform = run_sched_arm(opts, "global_uniform", false, false)?;
    let affinity_skewed = run_sched_arm(opts, "affinity_skewed", true, true)?;
    let global_skewed = run_sched_arm(opts, "global_skewed", false, true)?;
    let ratio = |a: f64, b: f64| a / b.max(1e-9);
    #[allow(clippy::cast_precision_loss)]
    let skew_p99_ratio = affinity_skewed.p99_ns as f64 / (global_skewed.p99_ns as f64).max(1.0);
    #[allow(clippy::cast_precision_loss)]
    let skew_queue_p99_ratio =
        affinity_skewed.queue_p99_ns as f64 / (global_skewed.queue_p99_ns as f64).max(1.0);
    let uniform_throughput_ratio = ratio(affinity_uniform.ops_per_sec, global_uniform.ops_per_sec);
    let skew_throughput_ratio = ratio(affinity_skewed.ops_per_sec, global_skewed.ops_per_sec);
    let steals_under_skew = affinity_skewed.sched_stolen;
    let steady_state_thread_spawns = affinity_uniform.thread_spawns
        + global_uniform.thread_spawns
        + affinity_skewed.thread_spawns
        + global_skewed.thread_spawns;
    Ok(SchedReport {
        options: opts.clone(),
        affinity_uniform,
        global_uniform,
        affinity_skewed,
        global_skewed,
        uniform_throughput_ratio,
        skew_throughput_ratio,
        skew_p99_ratio,
        skew_queue_p99_ratio,
        steals_under_skew,
        steady_state_thread_spawns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arm(shards: usize, group_commit: bool) -> BenchArm {
        BenchArm {
            shards,
            group_commit,
            search_ops: 10,
            search_ops_per_sec: 100.0,
            update_ops: 5,
            update_ops_per_sec: 50.0,
            p50_ns: 1,
            p95_ns: 2,
            p99_ns: 3,
            shard_contention: vec![0, 4],
            busy_retries: 0,
            groups_committed: 2,
            ops_committed: 5,
            mean_group_size: 2.5,
            max_group_size: 3,
            fsyncs_per_op: 0.4,
            fsyncs_saved: 3,
            snapshot_swaps: 5,
            backend: BackendKind::Btree,
            checkpoints: 0,
            runs_flushed: 0,
            runs_live: 0,
            compactions: 0,
            bloom_checks: 0,
            bloom_skips: 0,
        }
    }

    #[test]
    fn report_json_has_required_fields() {
        let report = BenchReport {
            options: BenchOptions::default(),
            baseline: arm(1, true),
            sharded: arm(8, true),
            speedup_search_ops_per_sec: 2.5,
        };
        let json = report.to_json();
        for field in [
            "\"benchmark\"",
            "\"arms\"",
            "\"shards\"",
            "\"search_ops_per_sec\"",
            "\"p50_ns\"",
            "\"p95_ns\"",
            "\"p99_ns\"",
            "\"shard_contention\"",
            "\"speedup_search_ops_per_sec\"",
            "\"fsyncs_per_op\"",
            "\"mean_group_size\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn search_report_json_has_required_fields() {
        let sarm = |p50| SearchArm {
            ops: 32,
            mean_ns: p50,
            median_ns: p50,
            p50_ns: p50,
            p95_ns: p50 * 2,
            p99_ns: p50 * 3,
        };
        let report = SearchBenchReport {
            options: BenchOptions::default(),
            generations: SEARCH_GENERATIONS,
            cold: sarm(400_000),
            repeat: sarm(80_000),
            single_group: sarm(900_000),
            batch: sarm(200_000),
            repeat_speedup: 5.0,
            batch_speedup: 4.5,
            cache_hits: 544,
            cache_misses: 32,
            walk_steps_saved: 140_000,
        };
        let json = report.to_json();
        for field in [
            "\"benchmark\":\"sse-search-path\"",
            "\"arm\":\"cold\"",
            "\"arm\":\"repeat\"",
            "\"arm\":\"single_group\"",
            "\"arm\":\"batch\"",
            "\"generations\"",
            "\"batch_size\"",
            "\"mean_ns\"",
            "\"median_ns\"",
            "\"p50_ns\"",
            "\"p95_ns\"",
            "\"p99_ns\"",
            "\"repeat_speedup\"",
            "\"batch_speedup\"",
            "\"search_cache_hits\"",
            "\"search_cache_misses\"",
            "\"walk_steps_saved\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn group_commit_report_json_has_required_fields() {
        let report = GroupCommitReport {
            options: BenchOptions::default(),
            ungrouped: arm(2, false),
            grouped: arm(2, true),
            speedup_update_ops_per_sec: 3.1,
            search_p99_ratio: 0.8,
        };
        let json = report.to_json();
        for field in [
            "\"benchmark\":\"sse-group-commit\"",
            "\"group_commit\":false",
            "\"group_commit\":true",
            "\"update_ops_per_sec\"",
            "\"fsyncs_per_op\"",
            "\"mean_group_size\"",
            "\"max_group_size\"",
            "\"fsyncs_saved\"",
            "\"snapshot_swaps\"",
            "\"speedup_update_ops_per_sec\"",
            "\"search_p99_ratio\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn idle_report_json_has_required_fields() {
        let sarm = |p50| SearchArm {
            ops: 100,
            mean_ns: p50,
            median_ns: p50,
            p50_ns: p50,
            p95_ns: p50 * 2,
            p99_ns: p50 * 3,
        };
        let report = IdleBenchReport {
            options: IdleBenchOptions::default(),
            idle_conns_held: 10_000,
            rss_start_kb: 20_000,
            rss_half_kb: 60_000,
            rss_full_kb: 100_000,
            per_idle_conn_bytes_first_half: 8192.0,
            per_idle_conn_bytes_second_half: 8192.0,
            baseline: sarm(100_000),
            loaded: sarm(110_000),
            hot_p99_ratio: 1.1,
            hot_median_ratio: 1.1,
            conns_accepted: 10_002,
            conns_open_peak: 10_001,
            idle_reaped: 0,
            slow_reader_disconnects: 0,
            conns_rejected: 0,
            reactor_wakeups: 42,
            writes_deferred: 3,
            drain_ms: 250,
            drain_clean: true,
        };
        let json = report.to_json();
        for field in [
            "\"benchmark\":\"sse-reactor-idle\"",
            "\"idle_conns_target\":10000",
            "\"idle_conns_held\":10000",
            "\"rss_start_kb\"",
            "\"rss_half_kb\"",
            "\"rss_full_kb\"",
            "\"per_idle_conn_bytes_first_half\"",
            "\"per_idle_conn_bytes_second_half\"",
            "\"arm\":\"hot_baseline\"",
            "\"arm\":\"hot_under_idle_load\"",
            "\"hot_p99_ratio\"",
            "\"hot_median_ratio\"",
            "\"idle_reaped\":0",
            "\"slow_reader_disconnects\":0",
            "\"conns_rejected\":0",
            "\"drain_ms\":250",
            "\"drain_clean\":true",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn hotpath_report_json_has_required_fields() {
        let harm = |name, pool, depth, batch| HotpathArm {
            name,
            pool,
            depth,
            ops: 1000,
            ops_per_sec: 5000.0,
            allocs_per_op: if pool { 4.0 } else { 10.0 },
            alloc_bytes_per_op: 512.0,
            bytes_copied_per_op: if pool { 0.0 } else { 300.0 },
            pool_hits: 900,
            pool_misses: 100,
            pool_recycles: 990,
            pool_hit_rate: 0.9,
            writev_calls: 500,
            writev_frames: 1000,
            mean_writev_batch: batch,
            wakeups_coalesced: 42,
            p50_ns: 100_000,
            p99_ns: 300_000,
        };
        let report = HotpathReport {
            options: HotpathOptions::default(),
            legacy: harm("legacy", false, 1, 1.0),
            pooled: harm("pooled", true, 1, 1.0),
            pipelined: harm("pipelined", true, 16, 2.0),
            alloc_reduction: 0.6,
            copy_reduction: 1.0,
            p99_ratio: 0.95,
            pipelined_mean_writev_batch: 2.0,
        };
        let json = report.to_json();
        for field in [
            "\"benchmark\":\"sse-hotpath\"",
            "\"depth\":16",
            "\"arm\":\"legacy\"",
            "\"arm\":\"pooled\"",
            "\"arm\":\"pipelined\"",
            "\"pool\":false",
            "\"pool\":true",
            "\"allocs_per_op\"",
            "\"alloc_bytes_per_op\"",
            "\"bytes_copied_per_op\"",
            "\"pool_hits\"",
            "\"pool_misses\"",
            "\"pool_recycles\"",
            "\"pool_hit_rate\"",
            "\"writev_calls\"",
            "\"writev_frames\"",
            "\"mean_writev_batch\"",
            "\"wakeups_coalesced\"",
            "\"p50_ns\"",
            "\"p99_ns\"",
            "\"alloc_reduction\":0.6000",
            "\"copy_reduction\":1.0000",
            "\"p99_ratio\":0.950",
            "\"pipelined_mean_writev_batch\":2.000",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn sched_report_json_has_required_fields() {
        let sarm = |name, affinity, skewed| SchedArm {
            name,
            affinity,
            skewed,
            ops: 4096,
            ops_per_sec: 20_000.0,
            p50_ns: 200_000,
            p99_ns: 900_000,
            queue_p50_ns: 3_000,
            queue_p99_ns: 40_000,
            service_p50_ns: 90_000,
            service_p99_ns: 400_000,
            sched_routed: 4096,
            sched_local_hits: 3900,
            sched_stolen: 120,
            sched_spilled: 6,
            sched_queue_depth_hw: 31,
            fanout_batches: 2048,
            fanout_parts_helped: 700,
            thread_spawns: 0,
        };
        let report = SchedReport {
            options: SchedOptions::default(),
            affinity_uniform: sarm("affinity_uniform", true, false),
            global_uniform: sarm("global_uniform", false, false),
            affinity_skewed: sarm("affinity_skewed", true, true),
            global_skewed: sarm("global_skewed", false, true),
            uniform_throughput_ratio: 1.02,
            skew_throughput_ratio: 1.1,
            skew_p99_ratio: 0.9,
            skew_queue_p99_ratio: 0.8,
            steals_under_skew: 120,
            steady_state_thread_spawns: 0,
        };
        let json = report.to_json();
        for field in [
            "\"benchmark\":\"sse-sched\"",
            "\"tenants\":8",
            "\"batch_parts\":4",
            "\"arm\":\"affinity_uniform\"",
            "\"arm\":\"global_uniform\"",
            "\"arm\":\"affinity_skewed\"",
            "\"arm\":\"global_skewed\"",
            "\"affinity\":true",
            "\"affinity\":false",
            "\"queue_p50_ns\"",
            "\"queue_p99_ns\"",
            "\"service_p50_ns\"",
            "\"service_p99_ns\"",
            "\"sched_routed\"",
            "\"sched_local_hits\"",
            "\"sched_stolen\"",
            "\"sched_spilled\"",
            "\"sched_queue_depth_hw\"",
            "\"fanout_batches\"",
            "\"fanout_parts_helped\"",
            "\"thread_spawns\":0",
            "\"uniform_throughput_ratio\":1.0200",
            "\"skew_throughput_ratio\":1.1000",
            "\"skew_p99_ratio\":0.900",
            "\"skew_queue_p99_ratio\":0.800",
            "\"steals_under_skew\":120",
            "\"steady_state_thread_spawns\":0",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }

        // The skewed schedule concentrates ~75% of rounds on tenant 0;
        // the uniform one is flat.
        let skew = sched_schedule(8, true);
        assert_eq!(skew.iter().filter(|&&t| t == 0).count(), 25);
        assert_eq!(skew.len(), 32);
        assert_eq!(sched_schedule(8, false), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn update_report_json_has_required_fields() {
        let mut lsm = arm(4, true);
        lsm.backend = BackendKind::Lsm;
        lsm.checkpoints = 6;
        lsm.runs_flushed = 24;
        lsm.runs_live = 4;
        lsm.compactions = 2;
        lsm.bloom_checks = 300;
        lsm.bloom_skips = 250;
        let report = UpdateBenchReport {
            options: BenchOptions::default(),
            preload_keywords: 4096,
            btree: arm(4, true),
            lsm,
            checkpoint_every: Duration::from_millis(250),
            lsm_vs_btree_update_ratio: 1.2,
        };
        let json = report.to_json();
        for field in [
            "\"benchmark\":\"sse-backend-update\"",
            "\"backend\":\"btree\"",
            "\"backend\":\"lsm\"",
            "\"checkpoint_every_ms\":250",
            "\"preload_keywords\":4096",
            "\"update_ops_per_sec\"",
            "\"checkpoints\":6",
            "\"runs_flushed\":24",
            "\"runs_live\":4",
            "\"compactions\":2",
            "\"bloom_checks\":300",
            "\"bloom_skips\":250",
            "\"lsm_vs_btree_update_ratio\":1.200",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }
}
