//! The daemon's envelope protocol, layered over [`sse_net::frame`].
//!
//! Every connection starts with a **hello** frame naming the tenant and the
//! scheme, after which each request frame is an envelope around either a
//! scheme protocol message (DATA — the bytes the existing [`sse_net::link::
//! Service`] implementations already speak, unchanged) or a serving-layer
//! command (ADMIN). Responses carry a one-byte status so the server can
//! signal queue backpressure (`BUSY`) without touching the scheme payload.
//!
//! ## Request/response correlation
//!
//! Each request carries a client-chosen sequence number that the server
//! echoes in the response (including `BUSY` and `ERR`). DATA jobs from one
//! connection may execute on different worker threads, so a client that
//! pipelines several requests can receive the responses **out of order**;
//! the echoed sequence number is the correlation key. The hello response
//! uses the reserved [`HELLO_SEQ`]. [`crate::transport::TcpTransport`] is
//! closed-loop — one outstanding request per connection — and verifies the
//! echo, turning any mismatch into a hard error.
//!
//! Because DATA payloads are passed through byte-for-byte, the daemon adds
//! *no* scheme-visible state: the wire protocol (and therefore the leakage
//! profile analyzed in DESIGN.md) is exactly that of the in-process links.

use sse_net::wire::{WireError, WireReader, WireWriter};

/// Hello-frame magic: "SSE1".
pub const HELLO_MAGIC: u32 = 0x3145_5353;

/// Sequence number echoed in the hello response. Regular requests start
/// numbering above it.
pub const HELLO_SEQ: u32 = 0;

/// Request kind: scheme protocol payload for the tenant's server.
pub const KIND_DATA: u8 = 0;
/// Request kind: serving-layer command.
pub const KIND_ADMIN: u8 = 1;
/// Request kind: a batch of scheme mutation payloads applied atomically
/// (one journal append per affected index shard server-side). The
/// response carries a single scheme response body valid for every part —
/// batched mutations all acknowledge identically.
pub const KIND_UPDATE_MANY: u8 = 2;
/// Request kind: a batch of scheme **search** payloads fanned out across
/// the tenant's shard snapshots on a small worker pool. Unlike
/// `UPDATE_MANY` the parts produce distinct results, so the response is
/// itself a batch ([`encode_batch`]) of per-part scheme response bodies,
/// position-aligned with the request parts.
pub const KIND_SEARCH_MANY: u8 = 3;

/// ADMIN command: return a [`StatsSnapshot`].
pub const ADMIN_STATS: u8 = 0;
/// ADMIN command: begin graceful shutdown (drain and exit).
pub const ADMIN_SHUTDOWN: u8 = 1;

/// Response status: request served; payload is the scheme response (DATA)
/// or the encoded command result (ADMIN).
pub const STATUS_OK: u8 = 0;
/// Response status: the worker queue is full — retry after a backoff. The
/// request was **not** executed.
pub const STATUS_BUSY: u8 = 1;
/// Response status: protocol violation; payload is a UTF-8 message. The
/// connection is closed after an error.
pub const STATUS_ERR: u8 = 2;
/// Response status: the tenant is degraded (read-only after a storage
/// write failure) and this request was a mutation. The payload is
/// `[retry_after_ms u32][reason utf-8]` — clients should back off for the
/// hinted interval and retry; the request was **not** executed. Unlike
/// `ERR`, the connection stays usable.
pub const STATUS_DEGRADED: u8 = 3;

/// Build a `STATUS_DEGRADED` payload: `[retry_after_ms u32][reason]`.
#[must_use]
pub fn encode_degraded(retry_after_ms: u32, reason: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + reason.len());
    out.extend_from_slice(&retry_after_ms.to_le_bytes());
    out.extend_from_slice(reason.as_bytes());
    out
}

/// Split a `STATUS_DEGRADED` payload into `(retry_after_ms, reason)`.
#[must_use]
pub fn decode_degraded(payload: &[u8]) -> Option<(u32, String)> {
    let (ms, reason) = payload.split_first_chunk::<4>()?;
    Some((
        u32::from_le_bytes(*ms),
        String::from_utf8_lossy(reason).into_owned(),
    ))
}

/// Scheme selector carried in the hello frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeId {
    /// The paper's §5.2 computationally efficient scheme.
    Scheme1,
    /// The paper's §5.4 communication efficient scheme.
    Scheme2,
}

impl SchemeId {
    /// Wire byte for this scheme.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            SchemeId::Scheme1 => 1,
            SchemeId::Scheme2 => 2,
        }
    }

    /// Parse the wire byte.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(SchemeId::Scheme1),
            2 => Some(SchemeId::Scheme2),
            _ => None,
        }
    }
}

/// The parsed hello frame: which tenant's database, which scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Tenant identifier (routing key for the per-tenant scheme server).
    pub tenant: String,
    /// Scheme the connection will speak.
    pub scheme: SchemeId,
}

impl Hello {
    /// Encode as a frame body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u32(HELLO_MAGIC)
            .put_u8(self.scheme.as_u8())
            .put_bytes(self.tenant.as_bytes());
        w.finish()
    }

    /// Decode a frame body.
    ///
    /// # Errors
    /// `None` on bad magic, unknown scheme, non-UTF-8 tenant, or trailing
    /// bytes.
    #[must_use]
    pub fn decode(body: &[u8]) -> Option<Hello> {
        let mut r = WireReader::new(body);
        let ok = (|| -> Result<Hello, WireError> {
            let magic = r.get_u32()?;
            if magic != HELLO_MAGIC {
                return Err(WireError::UnknownTag(0));
            }
            let scheme = SchemeId::from_u8(r.get_u8()?).ok_or(WireError::UnknownTag(0))?;
            let tenant =
                String::from_utf8(r.get_bytes()?.to_vec()).map_err(|_| WireError::UnknownTag(0))?;
            Ok(Hello { tenant, scheme })
        })();
        let hello = ok.ok()?;
        r.finish().ok()?;
        Some(hello)
    }
}

/// Build a response frame body: `status ‖ seq ‖ payload`.
#[must_use]
pub fn encode_response(status: u8, seq: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + payload.len());
    out.push(status);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Everything that precedes a response payload on the wire, as one fixed
/// array: the 4-byte frame length prefix (covering the 5-byte envelope
/// header plus `payload_len`) followed by `status ‖ seq`. This is the
/// scatter-gather encode — the prefix and the payload travel as separate
/// iovecs through `writev`, so the payload bytes are never copied into a
/// contiguous `encode_frame(encode_response(..))` buffer.
///
/// # Panics
/// Panics if the envelope would exceed [`sse_net::frame::MAX_FRAME_LEN`].
#[must_use]
pub fn response_prefix(status: u8, seq: u32, payload_len: usize) -> [u8; 9] {
    let header = sse_net::frame::frame_header(5 + payload_len);
    let seq = seq.to_le_bytes();
    [
        header[0], header[1], header[2], header[3], status, seq[0], seq[1], seq[2], seq[3],
    ]
}

/// Split a response frame body into `(status, seq, payload)`.
#[must_use]
pub fn decode_response(body: &[u8]) -> Option<(u8, u32, &[u8])> {
    let (&status, rest) = body.split_first()?;
    let (seq, payload) = rest.split_first_chunk::<4>()?;
    Some((status, u32::from_le_bytes(*seq), payload))
}

/// Envelope header length shared by requests and responses:
/// kind-or-status (1) ‖ seq (4). A request payload is the frame body past
/// this prefix.
pub const REQUEST_HEADER_LEN: usize = 5;

/// Build a request frame body: `kind ‖ seq ‖ payload`.
#[must_use]
pub fn encode_request(kind: u8, seq: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + payload.len());
    out.push(kind);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Split a request frame body into `(kind, seq, payload)`.
#[must_use]
pub fn decode_request(body: &[u8]) -> Option<(u8, u32, &[u8])> {
    let (&kind, rest) = body.split_first()?;
    let (seq, payload) = rest.split_first_chunk::<4>()?;
    Some((kind, u32::from_le_bytes(*seq), payload))
}

/// Encode an `UPDATE_MANY` payload: `[count u32]` then, per part,
/// `[len u32][part bytes]`.
#[must_use]
pub fn encode_batch(parts: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + parts.iter().map(|p| 4 + p.len()).sum::<usize>());
    out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
    for part in parts {
        out.extend_from_slice(&(part.len() as u32).to_le_bytes());
        out.extend_from_slice(part);
    }
    out
}

/// Decode an `UPDATE_MANY` payload into its parts. `None` on any length
/// mismatch (truncated part, trailing bytes, or a forged count).
#[must_use]
pub fn decode_batch(payload: &[u8]) -> Option<Vec<&[u8]>> {
    let (count, mut rest) = payload.split_first_chunk::<4>()?;
    let count = u32::from_le_bytes(*count) as usize;
    // Each part costs at least its 4-byte length prefix.
    if count > rest.len() / 4 + 1 {
        return None;
    }
    let mut parts = Vec::with_capacity(count);
    for _ in 0..count {
        let (len, tail) = rest.split_first_chunk::<4>()?;
        let len = u32::from_le_bytes(*len) as usize;
        if len > tail.len() {
            return None;
        }
        let (part, tail) = tail.split_at(len);
        parts.push(part);
        rest = tail;
    }
    if !rest.is_empty() {
        return None;
    }
    Some(parts)
}

/// [`decode_batch`] without borrowing the parts: the same validation,
/// returning each part's byte range *within* `payload`. The spawn-free
/// search fan-out executor ([`crate::sched`]) shares one pooled request
/// buffer across helper workers via `Arc`, so parts must be positions,
/// not borrows tied to a local slice. `None` exactly when
/// [`decode_batch`] returns `None`.
#[must_use]
pub fn decode_batch_ranges(payload: &[u8]) -> Option<Vec<std::ops::Range<usize>>> {
    let (count, rest) = payload.split_first_chunk::<4>()?;
    let count = u32::from_le_bytes(*count) as usize;
    // Each part costs at least its 4-byte length prefix.
    if count > rest.len() / 4 + 1 {
        return None;
    }
    let mut parts = Vec::with_capacity(count);
    let mut off = 4usize;
    for _ in 0..count {
        let len_bytes = payload.get(off..off + 4)?;
        let len = u32::from_le_bytes(len_bytes.try_into().ok()?) as usize;
        off += 4;
        if payload.len() - off < len {
            return None;
        }
        parts.push(off..off + len);
        off += len;
    }
    if off != payload.len() {
        return None;
    }
    Some(parts)
}

/// Point-in-time serving statistics, as answered to [`ADMIN_STATS`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// DATA requests served successfully.
    pub requests_ok: u64,
    /// DATA requests rejected with `BUSY` (queue full).
    pub requests_busy: u64,
    /// Malformed requests answered with `ERR`.
    pub requests_err: u64,
    /// Request payload bytes received (framing and envelope excluded).
    pub bytes_in: u64,
    /// Response payload bytes sent.
    pub bytes_out: u64,
    /// Median service latency in nanoseconds (queue wait + handler).
    pub p50_ns: u64,
    /// 95th-percentile service latency in nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile service latency in nanoseconds.
    pub p99_ns: u64,
    /// Storage faults injected by a configured fault VFS (0 unless the
    /// daemon was started with fault injection enabled).
    pub faults_injected: u64,
    /// Tenant database opens that performed WAL replay or torn-tail
    /// truncation (crash recoveries observed by this daemon).
    pub wal_recoveries: u64,
    /// Torn log-tail bytes truncated across all tenant opens.
    pub torn_tails_truncated: u64,
    /// Hello frames that re-attached to an already-open tenant database
    /// (client reconnects, as seen from the server).
    pub reconnects: u64,
    /// Contended shard-lock acquisitions per index shard, summed across
    /// all open tenant databases. Empty when no tenant is open.
    pub shard_contention: Vec<u64>,
    /// Journal groups committed (one vectored write + one fsync each),
    /// summed across all open tenant databases.
    pub groups_committed: u64,
    /// Mutations made durable through those groups.
    pub ops_committed: u64,
    /// Largest single commit group observed.
    pub max_group_size: u64,
    /// Fsyncs avoided versus one-fsync-per-op journaling.
    pub fsyncs_saved: u64,
    /// Immutable search-snapshot publications (one per applied mutation
    /// plus opportunistic cache write-backs).
    pub snapshot_swaps: u64,
    /// Search-memo hits (repeat searches answered from the per-shard
    /// chain-key memo), summed across all open tenant databases.
    pub search_cache_hits: u64,
    /// Memo-eligible searches that took the cold path.
    pub search_cache_misses: u64,
    /// Forward hash-chain steps avoided by memo hits.
    pub walk_steps_saved: u64,
    /// Sorted runs written by lsm-backed tenants since open (flushes plus
    /// compaction outputs; 0 for btree-only daemons).
    pub backend_runs_flushed: u64,
    /// Sorted runs currently referenced by lsm manifests.
    pub backend_runs_live: u64,
    /// LSM compactions performed since open.
    pub backend_compactions: u64,
    /// Point reads that had to consult at least one run on disk.
    pub backend_run_reads: u64,
    /// Per-run bloom membership tests performed.
    pub backend_bloom_checks: u64,
    /// Run probes skipped because the bloom filter proved absence.
    pub backend_bloom_skips: u64,
    /// Run probes where the bloom said "maybe" but the key was absent.
    pub backend_bloom_false_positives: u64,
    /// Mutations rejected with `DEGRADED` (tenant read-only).
    pub requests_degraded: u64,
    /// `Healthy → Degraded` transitions across all open tenants.
    pub health_degradations: u64,
    /// `Degraded → Healthy` scrub recoveries across all open tenants.
    pub health_recoveries: u64,
    /// `→ Quarantined` transitions across all open tenants.
    pub health_quarantines: u64,
    /// Tenants currently in the `Degraded` state.
    pub tenants_degraded: u64,
    /// Tenants currently in the `Quarantined` state.
    pub tenants_quarantined: u64,
    /// Background scrub passes completed.
    pub scrub_passes: u64,
    /// Scrub repairs that promoted a tenant back to `Healthy`.
    pub scrub_repairs: u64,
    /// Connections accepted since startup.
    pub conns_accepted: u64,
    /// Connections currently open (accepted minus closed).
    pub conns_open: u64,
    /// Connections reaped by the idle deadline.
    pub conns_idle_reaped: u64,
    /// Connections refused at accept because the daemon was at its
    /// configured `max_conns` cap.
    pub conns_rejected: u64,
    /// Connections disconnected because their bounded outbound write
    /// queue overflowed (slow or never-draining readers).
    pub slow_reader_disconnects: u64,
    /// Wakeup-pipe notifications observed by the reactor (worker
    /// completions and shutdown nudges).
    pub reactor_wakeups: u64,
    /// Responses that could not be written synchronously and armed
    /// `EPOLLOUT` to finish later.
    pub writes_deferred: u64,
    /// Readiness events that produced no progress (spurious wakeups).
    pub reactor_spurious_polls: u64,
    /// Frame-buffer acquisitions served from the pool's free lists.
    pub pool_hits: u64,
    /// Frame-buffer acquisitions that had to allocate fresh.
    pub pool_misses: u64,
    /// Frame buffers returned to the pool's free lists.
    pub pool_recycles: u64,
    /// `writev` syscalls issued by the reactor's write path.
    pub writev_calls: u64,
    /// Response frames fully flushed by those calls — `writev_frames /
    /// writev_calls` is the mean syscall batch (1.0 for a closed-loop
    /// client, above it only when responses genuinely coalesce).
    pub writev_frames: u64,
    /// Worker-completion notifications absorbed by an already-pending
    /// reactor wakeup (the wake pipe is drained once per poll batch).
    pub wakeups_coalesced: u64,
    /// Payload bytes memcpy'd on the serving path (request materialization
    /// and response envelope assembly) — the number the zero-copy pipeline
    /// exists to shrink.
    pub bytes_copied: u64,
    /// Median run-queue wait in nanoseconds (job accepted until a worker
    /// dequeued it) — the backpressure half of `p50_ns`.
    pub queue_p50_ns: u64,
    /// 95th-percentile run-queue wait in nanoseconds.
    pub queue_p95_ns: u64,
    /// 99th-percentile run-queue wait in nanoseconds.
    pub queue_p99_ns: u64,
    /// Median worker service time in nanoseconds (dequeue until the
    /// response was produced) — the compute half of `p50_ns`.
    pub service_p50_ns: u64,
    /// 95th-percentile worker service time in nanoseconds.
    pub service_p95_ns: u64,
    /// 99th-percentile worker service time in nanoseconds.
    pub service_p99_ns: u64,
    /// Jobs accepted into a worker run queue (home or spill).
    pub sched_routed: u64,
    /// Jobs popped by their home worker from its own queue —
    /// `sched_local_hits / sched_routed` is the affinity locality rate.
    pub sched_local_hits: u64,
    /// Jobs an idle worker took from another worker's queue.
    pub sched_stolen: u64,
    /// Jobs whose full home queue overflowed into another queue (still
    /// steal-eligible; only all-queues-full answers `BUSY`).
    pub sched_spilled: u64,
    /// High-water mark of any single run queue's depth.
    pub sched_queue_depth_hw: u64,
    /// `SEARCH_MANY` batches run through the persistent fan-out executor.
    pub fanout_batches: u64,
    /// Fan-out batch parts executed by an idle helper worker rather than
    /// the batch's owning worker — nonzero proves the spawn-free executor
    /// draws on the pool.
    pub fanout_parts_helped: u64,
}

impl StatsSnapshot {
    /// Fsyncs per committed mutation — `1.0` when every op pays its own
    /// fsync, approaching `1/k` when groups of `k` share one.
    #[must_use]
    pub fn fsyncs_per_op(&self) -> f64 {
        if self.ops_committed == 0 {
            0.0
        } else {
            self.groups_committed as f64 / self.ops_committed as f64
        }
    }

    /// Mean mutations per commit group (0 when nothing committed).
    #[must_use]
    pub fn mean_group_size(&self) -> f64 {
        if self.groups_committed == 0 {
            0.0
        } else {
            self.ops_committed as f64 / self.groups_committed as f64
        }
    }
    /// Encode as an ADMIN response payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u64(self.requests_ok)
            .put_u64(self.requests_busy)
            .put_u64(self.requests_err)
            .put_u64(self.bytes_in)
            .put_u64(self.bytes_out)
            .put_u64(self.p50_ns)
            .put_u64(self.p95_ns)
            .put_u64(self.p99_ns)
            .put_u64(self.faults_injected)
            .put_u64(self.wal_recoveries)
            .put_u64(self.torn_tails_truncated)
            .put_u64(self.reconnects)
            .put_u64_vec(&self.shard_contention)
            .put_u64(self.groups_committed)
            .put_u64(self.ops_committed)
            .put_u64(self.max_group_size)
            .put_u64(self.fsyncs_saved)
            .put_u64(self.snapshot_swaps)
            .put_u64(self.search_cache_hits)
            .put_u64(self.search_cache_misses)
            .put_u64(self.walk_steps_saved)
            .put_u64(self.backend_runs_flushed)
            .put_u64(self.backend_runs_live)
            .put_u64(self.backend_compactions)
            .put_u64(self.backend_run_reads)
            .put_u64(self.backend_bloom_checks)
            .put_u64(self.backend_bloom_skips)
            .put_u64(self.backend_bloom_false_positives)
            .put_u64(self.requests_degraded)
            .put_u64(self.health_degradations)
            .put_u64(self.health_recoveries)
            .put_u64(self.health_quarantines)
            .put_u64(self.tenants_degraded)
            .put_u64(self.tenants_quarantined)
            .put_u64(self.scrub_passes)
            .put_u64(self.scrub_repairs)
            .put_u64(self.conns_accepted)
            .put_u64(self.conns_open)
            .put_u64(self.conns_idle_reaped)
            .put_u64(self.conns_rejected)
            .put_u64(self.slow_reader_disconnects)
            .put_u64(self.reactor_wakeups)
            .put_u64(self.writes_deferred)
            .put_u64(self.reactor_spurious_polls)
            .put_u64(self.pool_hits)
            .put_u64(self.pool_misses)
            .put_u64(self.pool_recycles)
            .put_u64(self.writev_calls)
            .put_u64(self.writev_frames)
            .put_u64(self.wakeups_coalesced)
            .put_u64(self.bytes_copied)
            .put_u64s(&[
                self.queue_p50_ns,
                self.queue_p95_ns,
                self.queue_p99_ns,
                self.service_p50_ns,
                self.service_p95_ns,
                self.service_p99_ns,
                self.sched_routed,
                self.sched_local_hits,
                self.sched_stolen,
                self.sched_spilled,
                self.sched_queue_depth_hw,
                self.fanout_batches,
                self.fanout_parts_helped,
            ]);
        w.finish()
    }

    /// Decode an ADMIN response payload.
    ///
    /// The `backend_*` counters were appended to the payload after the
    /// first release of the STATS command; a payload that ends before
    /// them is an older peer and decodes with those counters zero.
    #[must_use]
    pub fn decode(body: &[u8]) -> Option<StatsSnapshot> {
        let mut r = WireReader::new(body);
        let mut snap = StatsSnapshot {
            requests_ok: r.get_u64().ok()?,
            requests_busy: r.get_u64().ok()?,
            requests_err: r.get_u64().ok()?,
            bytes_in: r.get_u64().ok()?,
            bytes_out: r.get_u64().ok()?,
            p50_ns: r.get_u64().ok()?,
            p95_ns: r.get_u64().ok()?,
            p99_ns: r.get_u64().ok()?,
            faults_injected: r.get_u64().ok()?,
            wal_recoveries: r.get_u64().ok()?,
            torn_tails_truncated: r.get_u64().ok()?,
            reconnects: r.get_u64().ok()?,
            shard_contention: r.get_u64_vec().ok()?,
            groups_committed: r.get_u64().ok()?,
            ops_committed: r.get_u64().ok()?,
            max_group_size: r.get_u64().ok()?,
            fsyncs_saved: r.get_u64().ok()?,
            snapshot_swaps: r.get_u64().ok()?,
            search_cache_hits: r.get_u64().ok()?,
            search_cache_misses: r.get_u64().ok()?,
            walk_steps_saved: r.get_u64().ok()?,
            ..StatsSnapshot::default()
        };
        if r.remaining() > 0 {
            snap.backend_runs_flushed = r.get_u64().ok()?;
            snap.backend_runs_live = r.get_u64().ok()?;
            snap.backend_compactions = r.get_u64().ok()?;
            snap.backend_run_reads = r.get_u64().ok()?;
            snap.backend_bloom_checks = r.get_u64().ok()?;
            snap.backend_bloom_skips = r.get_u64().ok()?;
            snap.backend_bloom_false_positives = r.get_u64().ok()?;
        }
        if r.remaining() > 0 {
            snap.requests_degraded = r.get_u64().ok()?;
            snap.health_degradations = r.get_u64().ok()?;
            snap.health_recoveries = r.get_u64().ok()?;
            snap.health_quarantines = r.get_u64().ok()?;
            snap.tenants_degraded = r.get_u64().ok()?;
            snap.tenants_quarantined = r.get_u64().ok()?;
            snap.scrub_passes = r.get_u64().ok()?;
            snap.scrub_repairs = r.get_u64().ok()?;
        }
        if r.remaining() > 0 {
            snap.conns_accepted = r.get_u64().ok()?;
            snap.conns_open = r.get_u64().ok()?;
            snap.conns_idle_reaped = r.get_u64().ok()?;
            snap.conns_rejected = r.get_u64().ok()?;
            snap.slow_reader_disconnects = r.get_u64().ok()?;
            snap.reactor_wakeups = r.get_u64().ok()?;
            snap.writes_deferred = r.get_u64().ok()?;
            snap.reactor_spurious_polls = r.get_u64().ok()?;
        }
        if r.remaining() > 0 {
            snap.pool_hits = r.get_u64().ok()?;
            snap.pool_misses = r.get_u64().ok()?;
            snap.pool_recycles = r.get_u64().ok()?;
            snap.writev_calls = r.get_u64().ok()?;
            snap.writev_frames = r.get_u64().ok()?;
            snap.wakeups_coalesced = r.get_u64().ok()?;
            snap.bytes_copied = r.get_u64().ok()?;
        }
        if r.remaining() > 0 {
            snap.queue_p50_ns = r.get_u64().ok()?;
            snap.queue_p95_ns = r.get_u64().ok()?;
            snap.queue_p99_ns = r.get_u64().ok()?;
            snap.service_p50_ns = r.get_u64().ok()?;
            snap.service_p95_ns = r.get_u64().ok()?;
            snap.service_p99_ns = r.get_u64().ok()?;
            snap.sched_routed = r.get_u64().ok()?;
            snap.sched_local_hits = r.get_u64().ok()?;
            snap.sched_stolen = r.get_u64().ok()?;
            snap.sched_spilled = r.get_u64().ok()?;
            snap.sched_queue_depth_hw = r.get_u64().ok()?;
            snap.fanout_batches = r.get_u64().ok()?;
            snap.fanout_parts_helped = r.get_u64().ok()?;
        }
        r.finish().ok()?;
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trip() {
        let hello = Hello {
            tenant: "clinic-7".into(),
            scheme: SchemeId::Scheme2,
        };
        assert_eq!(Hello::decode(&hello.encode()), Some(hello));
    }

    #[test]
    fn hello_rejects_bad_magic() {
        let hello = Hello {
            tenant: "x".into(),
            scheme: SchemeId::Scheme1,
        };
        let mut body = hello.encode();
        body[0] ^= 0xFF;
        assert_eq!(Hello::decode(&body), None);
    }

    #[test]
    fn hello_rejects_trailing_bytes() {
        let mut body = Hello {
            tenant: "x".into(),
            scheme: SchemeId::Scheme1,
        }
        .encode();
        body.push(0);
        assert_eq!(Hello::decode(&body), None);
    }

    #[test]
    fn response_envelope_round_trip() {
        let body = encode_response(STATUS_BUSY, 7, b"payload");
        assert_eq!(
            decode_response(&body),
            Some((STATUS_BUSY, 7, &b"payload"[..]))
        );
        assert_eq!(decode_response(&[]), None);
        assert_eq!(decode_response(&[STATUS_OK, 1, 2]), None); // truncated seq
    }

    #[test]
    fn request_envelope_round_trip() {
        let body = encode_request(KIND_DATA, u32::MAX, b"msg");
        assert_eq!(
            decode_request(&body),
            Some((KIND_DATA, u32::MAX, &b"msg"[..]))
        );
        assert_eq!(decode_request(&[]), None);
        assert_eq!(decode_request(&[KIND_DATA, 0, 0]), None); // truncated seq
    }

    #[test]
    fn stats_round_trip() {
        let snap = StatsSnapshot {
            requests_ok: 10,
            requests_busy: 2,
            requests_err: 1,
            bytes_in: 4096,
            bytes_out: 8192,
            p50_ns: 1_000,
            p95_ns: 9_000,
            p99_ns: 20_000,
            faults_injected: 3,
            wal_recoveries: 2,
            torn_tails_truncated: 17,
            reconnects: 5,
            shard_contention: vec![3, 0, 7, 1],
            groups_committed: 40,
            ops_committed: 160,
            max_group_size: 9,
            fsyncs_saved: 120,
            snapshot_swaps: 165,
            search_cache_hits: 30,
            search_cache_misses: 11,
            walk_steps_saved: 90,
            backend_runs_flushed: 6,
            backend_runs_live: 4,
            backend_compactions: 1,
            backend_run_reads: 200,
            backend_bloom_checks: 340,
            backend_bloom_skips: 280,
            backend_bloom_false_positives: 3,
            requests_degraded: 4,
            health_degradations: 2,
            health_recoveries: 1,
            health_quarantines: 1,
            tenants_degraded: 1,
            tenants_quarantined: 1,
            scrub_passes: 12,
            scrub_repairs: 1,
            conns_accepted: 44,
            conns_open: 9,
            conns_idle_reaped: 6,
            conns_rejected: 2,
            slow_reader_disconnects: 1,
            reactor_wakeups: 210,
            writes_deferred: 13,
            reactor_spurious_polls: 5,
            pool_hits: 900,
            pool_misses: 40,
            pool_recycles: 890,
            writev_calls: 300,
            writev_frames: 520,
            wakeups_coalesced: 77,
            bytes_copied: 12_345,
            queue_p50_ns: 500,
            queue_p95_ns: 4_000,
            queue_p99_ns: 15_000,
            service_p50_ns: 800,
            service_p95_ns: 6_000,
            service_p99_ns: 18_000,
            sched_routed: 1_000,
            sched_local_hits: 940,
            sched_stolen: 45,
            sched_spilled: 15,
            sched_queue_depth_hw: 12,
            fanout_batches: 33,
            fanout_parts_helped: 88,
        };
        assert_eq!(StatsSnapshot::decode(&snap.encode()), Some(snap.clone()));
        assert_eq!(StatsSnapshot::decode(b"short"), None);
        assert!((snap.fsyncs_per_op() - 0.25).abs() < 1e-9);
        assert!((snap.mean_group_size() - 4.0).abs() < 1e-9);
        assert_eq!(StatsSnapshot::default().fsyncs_per_op(), 0.0);
        assert_eq!(StatsSnapshot::default().mean_group_size(), 0.0);
    }

    #[test]
    fn stats_decode_tolerates_pre_backend_payload() {
        let snap = StatsSnapshot {
            requests_ok: 5,
            walk_steps_saved: 7,
            backend_runs_flushed: 9,
            ..StatsSnapshot::default()
        };
        // An older peer's payload ends before the backend_* counters
        // (and therefore before the health, reactor, hot-path, and sched
        // blocks appended after them).
        let mut body = snap.encode();
        body.truncate(body.len() - (7 + 8 + 8 + 7 + 13) * 8);
        let decoded = StatsSnapshot::decode(&body).unwrap();
        assert_eq!(decoded.requests_ok, 5);
        assert_eq!(decoded.walk_steps_saved, 7);
        assert_eq!(decoded.backend_runs_flushed, 0);
        // A partially present trailing block is still malformed.
        let mut torn = snap.encode();
        torn.truncate(torn.len() - 4);
        assert_eq!(StatsSnapshot::decode(&torn), None);
    }

    #[test]
    fn stats_decode_tolerates_pre_health_payload() {
        let snap = StatsSnapshot {
            requests_ok: 5,
            backend_runs_flushed: 9,
            health_degradations: 3,
            scrub_passes: 4,
            ..StatsSnapshot::default()
        };
        // A peer from before the health block: payload ends after the
        // backend_* counters.
        let mut body = snap.encode();
        body.truncate(body.len() - (8 + 8 + 7 + 13) * 8);
        let decoded = StatsSnapshot::decode(&body).unwrap();
        assert_eq!(decoded.requests_ok, 5);
        assert_eq!(decoded.backend_runs_flushed, 9);
        assert_eq!(decoded.health_degradations, 0);
        assert_eq!(decoded.scrub_passes, 0);
    }

    #[test]
    fn stats_decode_tolerates_pre_reactor_payload() {
        let snap = StatsSnapshot {
            requests_ok: 5,
            scrub_passes: 4,
            conns_accepted: 11,
            reactor_wakeups: 7,
            ..StatsSnapshot::default()
        };
        // A peer from before the reactor block: payload ends after the
        // health/scrub counters.
        let mut body = snap.encode();
        body.truncate(body.len() - (8 + 7 + 13) * 8);
        let decoded = StatsSnapshot::decode(&body).unwrap();
        assert_eq!(decoded.requests_ok, 5);
        assert_eq!(decoded.scrub_passes, 4);
        assert_eq!(decoded.conns_accepted, 0);
        assert_eq!(decoded.reactor_wakeups, 0);
    }

    #[test]
    fn stats_decode_tolerates_pre_hotpath_payload() {
        let snap = StatsSnapshot {
            requests_ok: 5,
            reactor_wakeups: 7,
            pool_hits: 11,
            writev_calls: 13,
            bytes_copied: 17,
            ..StatsSnapshot::default()
        };
        // A peer from before the hot-path block: payload ends after the
        // reactor counters.
        let mut body = snap.encode();
        body.truncate(body.len() - (7 + 13) * 8);
        let decoded = StatsSnapshot::decode(&body).unwrap();
        assert_eq!(decoded.requests_ok, 5);
        assert_eq!(decoded.reactor_wakeups, 7);
        assert_eq!(decoded.pool_hits, 0);
        assert_eq!(decoded.writev_calls, 0);
        assert_eq!(decoded.bytes_copied, 0);
    }

    #[test]
    fn stats_decode_tolerates_pre_sched_payload() {
        let snap = StatsSnapshot {
            requests_ok: 5,
            bytes_copied: 17,
            queue_p99_ns: 900,
            sched_routed: 31,
            fanout_batches: 2,
            ..StatsSnapshot::default()
        };
        // A peer from before the scheduler block: payload ends after the
        // hot-path counters.
        let mut body = snap.encode();
        body.truncate(body.len() - 13 * 8);
        let decoded = StatsSnapshot::decode(&body).unwrap();
        assert_eq!(decoded.requests_ok, 5);
        assert_eq!(decoded.bytes_copied, 17);
        assert_eq!(decoded.queue_p99_ns, 0);
        assert_eq!(decoded.sched_routed, 0);
        assert_eq!(decoded.fanout_batches, 0);
    }

    #[test]
    fn response_prefix_matches_the_contiguous_encoding() {
        let payload = b"scheme response bytes";
        let contiguous = sse_net::frame::encode_frame(&encode_response(STATUS_OK, 42, payload));
        let mut gathered = response_prefix(STATUS_OK, 42, payload.len()).to_vec();
        gathered.extend_from_slice(payload);
        assert_eq!(gathered, contiguous);
        // Empty payload: the prefix alone is the whole wire image.
        assert_eq!(
            response_prefix(STATUS_BUSY, 7, 0).to_vec(),
            sse_net::frame::encode_frame(&encode_response(STATUS_BUSY, 7, b""))
        );
    }

    #[test]
    fn degraded_payload_round_trip() {
        let body = encode_degraded(250, "journal fsync failed");
        assert_eq!(
            decode_degraded(&body),
            Some((250, "journal fsync failed".to_string()))
        );
        assert_eq!(decode_degraded(&[1, 2]), None); // truncated hint
    }

    #[test]
    fn batch_round_trip() {
        let parts = vec![b"first".to_vec(), Vec::new(), b"third-part".to_vec()];
        let payload = encode_batch(&parts);
        let decoded = decode_batch(&payload).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0], b"first");
        assert_eq!(decoded[1], b"");
        assert_eq!(decoded[2], b"third-part");
        assert_eq!(decode_batch(&encode_batch(&[])).unwrap().len(), 0);
    }

    #[test]
    fn batch_rejects_malformed_payloads() {
        let good = encode_batch(&[b"part".to_vec()]);
        assert!(decode_batch(&good[..good.len() - 1]).is_none(), "truncated");
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_batch(&trailing).is_none(), "trailing bytes");
        let mut forged = good;
        forged[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_batch(&forged).is_none(), "forged count");
        assert!(decode_batch(&[1, 2]).is_none(), "short header");
    }

    #[test]
    fn batch_ranges_agree_with_decode_batch() {
        let parts = vec![b"first".to_vec(), Vec::new(), b"third-part".to_vec()];
        let payload = encode_batch(&parts);
        let ranges = decode_batch_ranges(&payload).unwrap();
        let borrowed = decode_batch(&payload).unwrap();
        assert_eq!(ranges.len(), borrowed.len());
        for (range, part) in ranges.iter().zip(&borrowed) {
            assert_eq!(&payload[range.clone()], *part);
        }
        assert_eq!(decode_batch_ranges(&encode_batch(&[])).unwrap().len(), 0);
    }

    #[test]
    fn batch_ranges_reject_exactly_what_decode_batch_rejects() {
        let good = encode_batch(&[b"part".to_vec()]);
        for bad in [
            &good[..good.len() - 1],               // truncated part
            &[good.clone(), vec![0]].concat()[..], // trailing bytes
            &{
                let mut forged = good.clone();
                forged[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
                forged
            }[..], // forged count
            &[1, 2][..],                           // short header
        ] {
            assert_eq!(
                decode_batch_ranges(bad).is_none(),
                decode_batch(bad).is_none()
            );
            assert!(decode_batch_ranges(bad).is_none());
        }
    }
}
