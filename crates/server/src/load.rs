//! Closed-loop load generation against a running daemon.
//!
//! Each simulated client owns one TCP connection and replays an
//! [`sse_phr`] usage profile (GP or traveler — the paper's §6 workloads,
//! Zipf-distributed over medical codes) through a real scheme client,
//! timing every operation. Closed-loop means a client issues its next
//! operation only after the previous one completes, so offered load scales
//! with the number of clients.
//!
//! Clients sharing a tenant use distinct master keys: their PRF tags (and
//! thus their keyword representations) are disjoint, so they can share one
//! tenant database without coordinating — only document ids must not
//! collide, which [`run_load`] arranges by striding ids per client.

use crate::histogram::LatencyHistogram;
use crate::proto::SchemeId;
use crate::transport::TcpTransport;
use sse_core::scheme::SseClientApi;
use sse_core::scheme1::{Scheme1Client, Scheme1Config};
use sse_core::scheme2::{Scheme2Client, Scheme2Config};
use sse_core::types::MasterKey;
use sse_phr::system::PhrSystem;
use sse_phr::workload::{gp_profile, traveler_profile, PhrEvent};
use std::io::{Error, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which §6 usage profile each client replays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// General-practitioner: searches interleaved with record stores.
    Gp,
    /// Traveler: one bulk store, then read-mostly searches.
    Traveler,
}

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Daemon address.
    pub addr: String,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Tenants the clients are spread across (round-robin).
    pub tenants: usize,
    /// Schemes the clients are spread across (round-robin).
    pub schemes: Vec<SchemeId>,
    /// Usage profile to replay.
    pub profile: Profile,
    /// Profile size: GP visits, or traveler history records.
    pub events: usize,
    /// Workload seed (each client derives its own sub-seed).
    pub seed: u64,
    /// Must match the daemon's Scheme 1 tenant capacity (the bit-array
    /// length is fixed at setup on both sides).
    pub scheme1_capacity: u64,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            addr: "127.0.0.1:4460".to_string(),
            clients: 8,
            tenants: 2,
            schemes: vec![SchemeId::Scheme1, SchemeId::Scheme2],
            profile: Profile::Gp,
            events: 24,
            seed: 7,
            scheme1_capacity: crate::tenant::TenantParams::default().scheme1_capacity,
        }
    }
}

/// Aggregate results of one load run.
#[derive(Clone, Copy, Debug)]
pub struct LoadReport {
    /// Operations completed (stores + searches across all clients).
    pub ops: u64,
    /// Records retrieved by searches (sanity signal: > 0 means the
    /// workload actually found what it stored).
    pub hits: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Completed operations per second.
    pub ops_per_sec: f64,
    /// Client-observed median operation latency (ns).
    pub p50_ns: u64,
    /// Client-observed 95th-percentile latency (ns).
    pub p95_ns: u64,
    /// Client-observed 99th-percentile latency (ns).
    pub p99_ns: u64,
    /// `BUSY` responses absorbed by transport backoff across all clients.
    pub busy_retries: u64,
    /// Broken connections the transports re-established.
    pub reconnects: u64,
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        #[allow(clippy::cast_precision_loss)]
        fn ms(ns: u64) -> f64 {
            ns as f64 / 1e6
        }
        write!(
            f,
            "{} ops in {:.2?} ({:.1} ops/sec), {} hits, latency p50 {:.3} ms / p95 {:.3} ms / p99 {:.3} ms, \
             {} busy retries, {} reconnects",
            self.ops,
            self.elapsed,
            self.ops_per_sec,
            self.hits,
            ms(self.p50_ns),
            ms(self.p95_ns),
            ms(self.p99_ns),
            self.busy_retries,
            self.reconnects,
        )
    }
}

/// Replay one client's profile over an established PHR system, timing
/// each operation.
fn drive<C: SseClientApi>(
    phr: &mut PhrSystem<C>,
    events: &[PhrEvent],
    histogram: &LatencyHistogram,
    ops: &AtomicU64,
    hits: &AtomicU64,
) -> Result<()> {
    for event in events {
        let started = Instant::now();
        match event {
            PhrEvent::Store(records) => {
                phr.add_records(records)
                    .map_err(|e| Error::other(e.to_string()))?;
            }
            PhrEvent::Search(keyword) => {
                let found = phr
                    .find_by_code(keyword.as_str())
                    .map_err(|e| Error::other(e.to_string()))?;
                hits.fetch_add(found.len() as u64, Ordering::Relaxed);
            }
        }
        histogram.record(started.elapsed());
        ops.fetch_add(1, Ordering::Relaxed);
    }
    Ok(())
}

/// Build a client's workload, with document ids strided so clients sharing
/// a tenant never write the same storage slot.
fn client_events(opts: &LoadOptions, client: usize) -> Vec<PhrEvent> {
    let seed = opts
        .seed
        .wrapping_mul(1_000_003)
        .wrapping_add(client as u64);
    let mut events = match opts.profile {
        Profile::Gp => gp_profile(opts.events, 2, seed),
        Profile::Traveler => traveler_profile(opts.events, opts.events, seed),
    };
    let stride = opts.clients.max(1) as u64;
    for event in &mut events {
        if let PhrEvent::Store(records) = event {
            for record in records {
                record.id = record.id * stride + client as u64;
            }
        }
    }
    events
}

/// Run a closed-loop load test. Blocks until every client finishes.
///
/// # Errors
/// Connection failures or scheme errors from any client (first one wins).
pub fn run_load(opts: &LoadOptions) -> Result<LoadReport> {
    assert!(opts.clients > 0, "need at least one client");
    assert!(!opts.schemes.is_empty(), "need at least one scheme");
    let histogram = Arc::new(LatencyHistogram::new());
    let ops = Arc::new(AtomicU64::new(0));
    let hits = Arc::new(AtomicU64::new(0));
    let busy_retries = Arc::new(AtomicU64::new(0));
    let reconnects = Arc::new(AtomicU64::new(0));
    let started = Instant::now();

    let joins: Vec<_> = (0..opts.clients)
        .map(|client| {
            let opts = opts.clone();
            let histogram = histogram.clone();
            let ops = ops.clone();
            let hits = hits.clone();
            let busy_retries = busy_retries.clone();
            let reconnects = reconnects.clone();
            std::thread::spawn(move || -> Result<()> {
                let tenant = format!("tenant-{}", client % opts.tenants.max(1));
                let scheme = opts.schemes[client % opts.schemes.len()];
                let transport = TcpTransport::connect(&opts.addr, &tenant, scheme)?;
                let key = MasterKey::from_seed(opts.seed ^ ((client as u64) << 32) ^ 0xC11E);
                let events = client_events(&opts, client);
                let rng_seed = opts.seed.wrapping_add(client as u64);
                // Record the transport's robustness counters even if the
                // drive failed partway.
                let note = |t: &TcpTransport| {
                    busy_retries.fetch_add(t.busy_retries(), Ordering::Relaxed);
                    reconnects.fetch_add(t.reconnects(), Ordering::Relaxed);
                };
                match scheme {
                    SchemeId::Scheme1 => {
                        let sse = Scheme1Client::new_seeded(
                            transport,
                            key,
                            Scheme1Config::fast_profile(opts.scheme1_capacity),
                            rng_seed,
                        );
                        let mut phr = PhrSystem::new(sse);
                        let result = drive(&mut phr, &events, &histogram, &ops, &hits);
                        note(phr.client_mut().transport_mut());
                        result
                    }
                    SchemeId::Scheme2 => {
                        let sse = Scheme2Client::new_seeded(
                            transport,
                            key,
                            Scheme2Config::standard(),
                            rng_seed,
                        );
                        let mut phr = PhrSystem::new(sse);
                        let result = drive(&mut phr, &events, &histogram, &ops, &hits);
                        note(phr.client_mut().transport_mut());
                        result
                    }
                }
            })
        })
        .collect();

    let mut first_error: Option<Error> = None;
    for join in joins {
        match join.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                first_error.get_or_insert(e);
            }
            Err(_) => {
                first_error.get_or_insert_with(|| Error::other("load client panicked"));
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }

    let elapsed = started.elapsed();
    let ops = ops.load(Ordering::Relaxed);
    #[allow(clippy::cast_precision_loss)]
    let ops_per_sec = ops as f64 / elapsed.as_secs_f64().max(1e-9);
    Ok(LoadReport {
        ops,
        hits: hits.load(Ordering::Relaxed),
        elapsed,
        ops_per_sec,
        p50_ns: histogram.quantile_ns(0.50),
        p95_ns: histogram.quantile_ns(0.95),
        p99_ns: histogram.quantile_ns(0.99),
        busy_retries: busy_retries.load(Ordering::Relaxed),
        reconnects: reconnects.load(Ordering::Relaxed),
    })
}
