//! The document-id bit array `I(w)` of Scheme 1.
//!
//! "The set `I(w)` is represented as an array of bits where each bit is 0
//! unless the position of this bit is equal to one of the document
//! identifiers which occur in `I(w)`" (§5.2). The same representation is
//! used for the update set `U(w)`; the server merges them with XOR, which
//! *toggles* membership — adding a fresh document sets its bit, and
//! re-sending an existing id removes it (that is how the paper's protocol
//! supports deletion through the same message).

/// A fixed-capacity bit array indexed by document id.
///
/// Capacity is in *bits* and is public information in the paper's model
/// (the server sees `|I(w)|`). All arrays for one database share a capacity
/// so masked arrays are indistinguishable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DocBitSet {
    bits: Vec<u8>,
    capacity: usize,
}

impl DocBitSet {
    /// Create an empty set able to hold ids `0..capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        DocBitSet {
            bits: vec![0u8; capacity.div_ceil(8)],
            capacity,
        }
    }

    /// Create from set ids. Ids `>= capacity` are rejected.
    ///
    /// # Panics
    /// Panics if any id is out of range (caller bug).
    #[must_use]
    pub fn from_ids(capacity: usize, ids: &[u64]) -> Self {
        let mut s = Self::new(capacity);
        for &id in ids {
            s.set(id);
        }
        s
    }

    /// Capacity in bits (the largest representable id plus one).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Size of the byte representation.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bits.len()
    }

    /// Set the bit for `id`.
    ///
    /// # Panics
    /// Panics if `id >= capacity`.
    pub fn set(&mut self, id: u64) {
        let i = self.index(id);
        self.bits[i.0] |= 1 << i.1;
    }

    /// Clear the bit for `id`.
    ///
    /// # Panics
    /// Panics if `id >= capacity`.
    pub fn clear(&mut self, id: u64) {
        let i = self.index(id);
        self.bits[i.0] &= !(1 << i.1);
    }

    /// Toggle the bit for `id` (the XOR-update semantics).
    ///
    /// # Panics
    /// Panics if `id >= capacity`.
    pub fn toggle(&mut self, id: u64) {
        let i = self.index(id);
        self.bits[i.0] ^= 1 << i.1;
    }

    /// Test the bit for `id`; ids beyond capacity read as unset.
    #[must_use]
    pub fn contains(&self, id: u64) -> bool {
        if id as usize >= self.capacity {
            return false;
        }
        let (byte, bit) = self.index(id);
        (self.bits[byte] >> bit) & 1 == 1
    }

    fn index(&self, id: u64) -> (usize, u32) {
        let idx = usize::try_from(id).expect("doc id fits usize");
        assert!(
            idx < self.capacity,
            "doc id {id} out of capacity {}",
            self.capacity
        );
        (idx / 8, (idx % 8) as u32)
    }

    /// Number of set bits.
    #[must_use]
    pub fn count(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True iff no bit is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| b == 0)
    }

    /// XOR-merge another set into this one (the server-side update step
    /// `I'(w) = I(w) XOR U(w)`).
    ///
    /// # Panics
    /// Panics on capacity mismatch — mixed-capacity arrays would desync the
    /// masked representation on the server.
    pub fn xor_with(&mut self, other: &DocBitSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "bitset capacity mismatch in XOR merge"
        );
        for (d, s) in self.bits.iter_mut().zip(other.bits.iter()) {
            *d ^= s;
        }
    }

    /// Iterate over set ids in increasing order.
    pub fn iter_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.bits.iter().enumerate().flat_map(move |(byte_i, &b)| {
            (0..8u32).filter_map(move |bit| {
                if (b >> bit) & 1 == 1 {
                    let id = (byte_i * 8) as u64 + u64::from(bit);
                    if (id as usize) < self.capacity {
                        Some(id)
                    } else {
                        None
                    }
                } else {
                    None
                }
            })
        })
    }

    /// Collect set ids into a vector.
    #[must_use]
    pub fn to_ids(&self) -> Vec<u64> {
        self.iter_ids().collect()
    }

    /// Raw byte view — what gets masked with `G(r)` on the wire.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Rebuild from raw bytes and a bit capacity.
    ///
    /// Bits beyond `capacity` in the final byte are cleared so equality and
    /// iteration stay canonical after unmasking.
    ///
    /// # Panics
    /// Panics if `bytes` is not exactly `ceil(capacity/8)` long.
    #[must_use]
    pub fn from_bytes(capacity: usize, bytes: &[u8]) -> Self {
        assert_eq!(
            bytes.len(),
            capacity.div_ceil(8),
            "byte length does not match capacity"
        );
        let mut bits = bytes.to_vec();
        let tail_bits = capacity % 8;
        if tail_bits != 0 {
            if let Some(last) = bits.last_mut() {
                *last &= (1u8 << tail_bits) - 1;
            }
        }
        DocBitSet { bits, capacity }
    }

    /// Grow capacity to `new_capacity` bits, preserving contents.
    ///
    /// # Panics
    /// Panics when shrinking (would silently drop ids).
    pub fn grow(&mut self, new_capacity: usize) {
        assert!(
            new_capacity >= self.capacity,
            "cannot shrink a DocBitSet ({} -> {new_capacity})",
            self.capacity
        );
        self.bits.resize(new_capacity.div_ceil(8), 0);
        self.capacity = new_capacity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_contains_clear() {
        let mut s = DocBitSet::new(100);
        assert!(!s.contains(5));
        s.set(5);
        s.set(99);
        assert!(s.contains(5));
        assert!(s.contains(99));
        assert_eq!(s.count(), 2);
        s.clear(5);
        assert!(!s.contains(5));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn toggle_adds_then_removes() {
        let mut s = DocBitSet::new(16);
        s.toggle(3);
        assert!(s.contains(3));
        s.toggle(3);
        assert!(!s.contains(3));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn set_out_of_range_panics() {
        DocBitSet::new(8).set(8);
    }

    #[test]
    fn contains_beyond_capacity_is_false() {
        let s = DocBitSet::new(8);
        assert!(!s.contains(1000));
    }

    #[test]
    fn xor_merge_toggles_membership() {
        // I(w) = {1, 4}; U(w) = {4, 7} -> I'(w) = {1, 7}: id 4 removed,
        // id 7 added, exactly as the Scheme-1 server computes.
        let mut i_w = DocBitSet::from_ids(16, &[1, 4]);
        let u_w = DocBitSet::from_ids(16, &[4, 7]);
        i_w.xor_with(&u_w);
        assert_eq!(i_w.to_ids(), vec![1, 7]);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn xor_capacity_mismatch_panics() {
        let mut a = DocBitSet::new(8);
        let b = DocBitSet::new(16);
        a.xor_with(&b);
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let ids = [0u64, 7, 8, 15, 16, 63, 64, 127];
        let s = DocBitSet::from_ids(128, &ids);
        assert_eq!(s.to_ids(), ids.to_vec());
    }

    #[test]
    fn bytes_round_trip() {
        let s = DocBitSet::from_ids(20, &[0, 9, 19]);
        let back = DocBitSet::from_bytes(20, s.as_bytes());
        assert_eq!(back, s);
        assert_eq!(s.byte_len(), 3);
    }

    #[test]
    fn from_bytes_canonicalizes_tail_bits() {
        // Unmasking can leave garbage in the unused tail bits; from_bytes
        // must clear them so equality is canonical.
        let bytes = [0xFFu8, 0xFF];
        let s = DocBitSet::from_bytes(12, &bytes);
        assert_eq!(s.count(), 12);
        assert!(!s.contains(12));
        assert!(!s.contains(15));
    }

    #[test]
    fn grow_preserves_contents() {
        let mut s = DocBitSet::from_ids(10, &[2, 9]);
        s.grow(1000);
        assert!(s.contains(2));
        assert!(s.contains(9));
        assert_eq!(s.count(), 2);
        s.set(999);
        assert!(s.contains(999));
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn shrink_panics() {
        DocBitSet::new(16).grow(8);
    }

    #[test]
    fn empty_checks() {
        let mut s = DocBitSet::new(64);
        assert!(s.is_empty());
        s.set(33);
        assert!(!s.is_empty());
    }

    #[test]
    fn zero_capacity_is_fine() {
        let s = DocBitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.byte_len(), 0);
        assert_eq!(s.to_ids(), Vec::<u64>::new());
    }
}
