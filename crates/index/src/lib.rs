//! # sse-index
//!
//! Server-side index substrates for the SSE reproduction.
//!
//! The paper's server stores one *searchable representation* per unique
//! keyword and must locate it in `O(log u)` ("assuming a tree structure for
//! the searchable representations", §5.1). This crate supplies:
//!
//! * [`bitset`] — the growable document-id bit array `I(w)` of Scheme 1,
//!   with the XOR-merge semantics the update protocol relies on;
//! * [`bptree`] — an in-memory B+-tree keyed by 32-byte PRF tags, with
//!   instrumentation (node visits per lookup) so the `O(log u)` claim is
//!   *measured*, not assumed;
//! * [`postings`] — the append-only masked generation lists of Scheme 2,
//!   including the decrypted-prefix cache of Optimization 1;
//! * [`bloom`] — Bloom filters for the Goh (2003) per-document baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod bloom;
pub mod bptree;
pub mod postings;
