//! Masked posting-list *generations* for Scheme 2.
//!
//! After `j` updates, the searchable representation of a keyword is
//! `S(w) = (f_kw(w), E_{k1}(I_1), f'(k_1), ..., E_{kj}(I_j), f'(k_j))`
//! (§5.5): an append-only list of encrypted document-id batches, each
//! accompanied by a *commitment* `f'(k_i)` to the key that masks it. The
//! server appends blindly on update, and on search walks the hash chain
//! forward (from the trapdoor's key) matching commitments to unlock each
//! generation.
//!
//! Optimization 1 (§5.6) is also housed here: once a generation has been
//! decrypted during a search, the server caches the plaintext ids so a
//! later search only decrypts generations added since.

/// One masked generation: an encrypted batch of document ids plus the
/// commitment to its masking key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Generation {
    /// `E_{k_i}(I_i(w))` — opaque to the server until a search reveals `k_i`.
    pub masked_ids: Vec<u8>,
    /// `f'(k_i)` — lets the server recognize `k_i` while walking the chain.
    pub key_commitment: [u8; 32],
}

/// The generation list for one keyword, with the Optimization-1 cache.
#[derive(Clone, Debug, Default)]
pub struct GenerationList {
    generations: Vec<Generation>,
    /// Plaintext ids recovered by previous searches (Optimization 1).
    cached_ids: Vec<u64>,
    /// How many leading generations `cached_ids` covers.
    cached_upto: usize,
}

impl GenerationList {
    /// An empty list.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a generation (server side of `MetadataStorage`).
    pub fn push(&mut self, generation: Generation) {
        self.generations.push(generation);
    }

    /// Total number of generations ever appended.
    #[must_use]
    pub fn len(&self) -> usize {
        self.generations.len()
    }

    /// True iff no generation has been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.generations.is_empty()
    }

    /// The generations *not yet* covered by the plaintext cache — exactly
    /// the ones a new search still has to decrypt (Optimization 1).
    #[must_use]
    pub fn undecrypted(&self) -> &[Generation] {
        &self.generations[self.cached_upto..]
    }

    /// Number of generations the cache already covers.
    #[must_use]
    pub fn cached_generations(&self) -> usize {
        self.cached_upto
    }

    /// The cached plaintext ids (server-visible after prior searches).
    #[must_use]
    pub fn cached_ids(&self) -> &[u64] {
        &self.cached_ids
    }

    /// Record the plaintext ids recovered for the currently-undecrypted
    /// suffix, extending the cache to cover the whole list.
    ///
    /// `newly_decrypted` are the ids from `undecrypted()` in order; they are
    /// appended to the cache and deduplicated (a doc id can legitimately
    /// appear in several generations; the paper's list semantics make the
    /// posting set their union).
    pub fn absorb_decrypted(&mut self, newly_decrypted: &[u64]) {
        for &id in newly_decrypted {
            if !self.cached_ids.contains(&id) {
                self.cached_ids.push(id);
            }
        }
        self.cached_upto = self.generations.len();
    }

    /// Replace the cached plaintext state wholesale with an already-applied
    /// id set and mark every generation covered. Used when generations
    /// carry add *and* delete entries (the deletion extension), where the
    /// caller applies them in chronological order itself.
    pub fn set_cached(&mut self, ids: Vec<u64>) {
        self.cached_ids = ids;
        self.cached_upto = self.generations.len();
    }

    /// Clear the plaintext cache (used when re-keying after chain
    /// exhaustion, and by the no-optimization experiment arms).
    pub fn clear_cache(&mut self) {
        self.cached_ids.clear();
        self.cached_upto = 0;
    }

    /// Iterate all generations (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &Generation> {
        self.generations.iter()
    }

    /// Byte footprint of the stored representation (for storage accounting).
    #[must_use]
    pub fn stored_bytes(&self) -> usize {
        self.generations
            .iter()
            .map(|g| g.masked_ids.len() + g.key_commitment.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generation(tag: u8, len: usize) -> Generation {
        Generation {
            masked_ids: vec![tag; len],
            key_commitment: [tag; 32],
        }
    }

    #[test]
    fn push_and_len() {
        let mut l = GenerationList::new();
        assert!(l.is_empty());
        l.push(generation(1, 10));
        l.push(generation(2, 20));
        assert_eq!(l.len(), 2);
        assert_eq!(l.undecrypted().len(), 2);
        assert_eq!(l.stored_bytes(), 10 + 32 + 20 + 32);
    }

    #[test]
    fn cache_covers_decrypted_prefix() {
        let mut l = GenerationList::new();
        l.push(generation(1, 4));
        l.push(generation(2, 4));
        l.absorb_decrypted(&[10, 11]);
        assert_eq!(l.cached_ids(), &[10, 11]);
        assert_eq!(l.undecrypted().len(), 0);
        assert_eq!(l.cached_generations(), 2);

        // New generations appear after the cache point.
        l.push(generation(3, 4));
        assert_eq!(l.undecrypted().len(), 1);
        assert_eq!(l.undecrypted()[0], generation(3, 4));

        l.absorb_decrypted(&[12]);
        assert_eq!(l.cached_ids(), &[10, 11, 12]);
        assert_eq!(l.undecrypted().len(), 0);
    }

    #[test]
    fn absorb_deduplicates_ids() {
        let mut l = GenerationList::new();
        l.push(generation(1, 4));
        l.absorb_decrypted(&[5, 6]);
        l.push(generation(2, 4));
        l.absorb_decrypted(&[6, 7]);
        assert_eq!(l.cached_ids(), &[5, 6, 7]);
    }

    #[test]
    fn clear_cache_resets_progress() {
        let mut l = GenerationList::new();
        l.push(generation(1, 4));
        l.absorb_decrypted(&[1]);
        l.clear_cache();
        assert_eq!(l.cached_ids(), &[] as &[u64]);
        assert_eq!(l.undecrypted().len(), 1);
    }

    #[test]
    fn iter_yields_in_append_order() {
        let mut l = GenerationList::new();
        for i in 0..5u8 {
            l.push(generation(i, 2));
        }
        let tags: Vec<u8> = l.iter().map(|g| g.masked_ids[0]).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
    }
}
