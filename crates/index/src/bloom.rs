//! Bloom filters, for the Goh (2003) "secure indexes" baseline.
//!
//! Goh's scheme (cited as \[12\] in the paper) attaches one Bloom filter per
//! *document*; a search tests the trapdoor against every document's filter,
//! giving the `O(n)` behaviour the paper improves on. The filter itself is
//! a standard `m`-bit / `k`-hash Bloom filter; hash positions are derived
//! by the Kirsch–Mitzenmacher double-hashing trick from a single SHA-256.

use sse_primitives::sha256::sha256_concat;

/// A fixed-size Bloom filter.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u8>,
    m_bits: usize,
    k_hashes: u32,
}

impl BloomFilter {
    /// Create a filter with `m_bits` bits and `k_hashes` probes per item.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    #[must_use]
    pub fn new(m_bits: usize, k_hashes: u32) -> Self {
        assert!(m_bits > 0, "Bloom filter needs at least one bit");
        assert!(k_hashes > 0, "Bloom filter needs at least one hash");
        BloomFilter {
            bits: vec![0u8; m_bits.div_ceil(8)],
            m_bits,
            k_hashes,
        }
    }

    /// Choose near-optimal parameters for `expected_items` at
    /// `false_positive_rate` (standard formulas).
    #[must_use]
    pub fn with_rate(expected_items: usize, false_positive_rate: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let p = false_positive_rate.clamp(1e-9, 0.5);
        let m = (-(n * p.ln()) / (2f64.ln().powi(2))).ceil().max(8.0) as usize;
        let k = ((m as f64 / n) * 2f64.ln()).round().clamp(1.0, 30.0) as u32;
        Self::new(m, k)
    }

    /// Derive the two base hash values for double hashing.
    fn base_hashes(&self, item: &[u8]) -> (u64, u64) {
        let d = sha256_concat(&[b"sse/bloom", item]);
        let h1 = u64::from_be_bytes(d[0..8].try_into().expect("slice is 8 bytes"));
        let h2 = u64::from_be_bytes(d[8..16].try_into().expect("slice is 8 bytes"));
        // h2 must be odd so successive probes cycle through the table.
        (h1, h2 | 1)
    }

    fn positions<'a>(&'a self, item: &[u8]) -> impl Iterator<Item = usize> + 'a {
        let (h1, h2) = self.base_hashes(item);
        let m = self.m_bits as u64;
        (0..self.k_hashes)
            .map(move |i| (h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % m) as usize)
    }

    /// Insert an item.
    pub fn insert(&mut self, item: &[u8]) {
        let positions: Vec<usize> = self.positions(item).collect();
        for pos in positions {
            self.bits[pos / 8] |= 1 << (pos % 8);
        }
    }

    /// Membership test (no false negatives; tunable false positives).
    #[must_use]
    pub fn contains(&self, item: &[u8]) -> bool {
        self.positions(item)
            .all(|pos| (self.bits[pos / 8] >> (pos % 8)) & 1 == 1)
    }

    /// Number of bits in the filter.
    #[must_use]
    pub fn m_bits(&self) -> usize {
        self.m_bits
    }

    /// Number of hash probes per item.
    #[must_use]
    pub fn k_hashes(&self) -> u32 {
        self.k_hashes
    }

    /// Fraction of bits set (diagnostic; ~0.5 at design load).
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        let ones: usize = self.bits.iter().map(|b| b.count_ones() as usize).sum();
        ones as f64 / self.m_bits as f64
    }

    /// Byte footprint.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bits.len()
    }

    /// The raw bit array, for serialization into on-disk structures (the
    /// LSM run files keep one filter per run).
    #[must_use]
    pub fn bit_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Rebuild a filter from serialized parts ([`BloomFilter::m_bits`],
    /// [`BloomFilter::k_hashes`], [`BloomFilter::bit_bytes`]).
    ///
    /// Returns `None` when the parts are inconsistent (wrong bit-array
    /// length, zero sizes) — deserializers treat that as corruption.
    #[must_use]
    pub fn from_parts(m_bits: usize, k_hashes: u32, bits: Vec<u8>) -> Option<Self> {
        if m_bits == 0 || k_hashes == 0 || bits.len() != m_bits.div_ceil(8) {
            return None;
        }
        Some(BloomFilter {
            bits,
            m_bits,
            k_hashes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_rate(1000, 0.01);
        let items: Vec<Vec<u8>> = (0..1000u32).map(|i| i.to_be_bytes().to_vec()).collect();
        for item in &items {
            f.insert(item);
        }
        for item in &items {
            assert!(f.contains(item), "inserted item must be found");
        }
    }

    #[test]
    fn false_positive_rate_is_near_design_point() {
        let mut f = BloomFilter::with_rate(1000, 0.01);
        for i in 0..1000u32 {
            f.insert(&i.to_be_bytes());
        }
        let mut fp = 0usize;
        let probes = 20_000u32;
        for i in 0..probes {
            let probe = (1_000_000 + i).to_be_bytes();
            if f.contains(&probe) {
                fp += 1;
            }
        }
        let rate = fp as f64 / f64::from(probes);
        assert!(rate < 0.03, "false-positive rate {rate} too high");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = BloomFilter::new(1024, 5);
        for i in 0..100u32 {
            assert!(!f.contains(&i.to_be_bytes()));
        }
        assert_eq!(f.fill_ratio(), 0.0);
    }

    #[test]
    fn parameter_selection_is_sane() {
        let f = BloomFilter::with_rate(100, 0.01);
        // ~9.6 bits/item, ~7 hashes at 1% target.
        assert!(
            f.m_bits() >= 800 && f.m_bits() <= 1200,
            "m = {}",
            f.m_bits()
        );
        assert!(
            f.k_hashes() >= 5 && f.k_hashes() <= 9,
            "k = {}",
            f.k_hashes()
        );
    }

    #[test]
    fn fill_ratio_near_half_at_design_load() {
        let mut f = BloomFilter::with_rate(500, 0.01);
        for i in 0..500u32 {
            f.insert(&i.to_be_bytes());
        }
        let r = f.fill_ratio();
        assert!((0.4..0.6).contains(&r), "fill ratio {r}");
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_panics() {
        let _ = BloomFilter::new(0, 3);
    }

    #[test]
    fn serialization_round_trip() {
        let mut f = BloomFilter::with_rate(100, 0.01);
        for i in 0..100u32 {
            f.insert(&i.to_be_bytes());
        }
        let g = BloomFilter::from_parts(f.m_bits(), f.k_hashes(), f.bit_bytes().to_vec())
            .expect("consistent parts");
        for i in 0..100u32 {
            assert!(g.contains(&i.to_be_bytes()));
        }
        assert_eq!(g.fill_ratio(), f.fill_ratio());
        assert!(BloomFilter::from_parts(0, 3, vec![]).is_none());
        assert!(BloomFilter::from_parts(64, 3, vec![0u8; 5]).is_none());
    }

    #[test]
    fn tiny_filters_work() {
        let mut f = BloomFilter::new(8, 2);
        f.insert(b"x");
        assert!(f.contains(b"x"));
    }
}
