//! An in-memory B+-tree with copy-on-write structural sharing.
//!
//! The paper obtains its headline `O(log u)` search "assuming a tree
//! structure for the searchable representations" (§5.1). The server in this
//! workspace keeps exactly that structure: a B+-tree mapping the PRF tag
//! `f_kw(w)` to the keyword's searchable representation. The tree is
//! instrumented — [`BpTree::get_with_stats`] reports the number of node
//! visits — so experiment E1 can *measure* the logarithmic depth rather
//! than assert it.
//!
//! Values live only in leaves; internal nodes hold copies of separator keys.
//! Branching factor is [`ORDER`] (children per internal node / entries per
//! leaf).
//!
//! Child pointers are [`Arc`]s: `BpTree::clone` copies only the root node
//! (O(`ORDER`)), sharing every subtree, and mutations copy just the
//! root-to-leaf path they touch ([`Arc::make_mut`]). The scheme servers
//! lean on this to publish an immutable search snapshot after *every*
//! mutation without paying an O(u) deep copy — the group-commit read path
//! serves searches from such snapshots while writers keep mutating.

use std::fmt::Debug;
use std::sync::Arc;

/// Maximum children per internal node and entries per leaf.
pub const ORDER: usize = 16;
/// Minimum fill for non-root nodes.
const MIN_FILL: usize = ORDER / 2;

#[derive(Clone)]
enum Node<K, V> {
    Internal {
        /// `keys[i]` separates `children[i]` (keys `< keys[i]`) from
        /// `children[i+1]` (keys `>= keys[i]`).
        keys: Vec<K>,
        children: Vec<Arc<Node<K, V>>>,
    },
    Leaf {
        entries: Vec<(K, V)>,
    },
}

impl<K: Ord + Clone, V: Clone> Node<K, V> {
    fn new_leaf() -> Self {
        Node::Leaf {
            entries: Vec::with_capacity(ORDER),
        }
    }

    fn len_for_fill(&self) -> usize {
        match self {
            Node::Internal { children, .. } => children.len(),
            Node::Leaf { entries } => entries.len(),
        }
    }
}

/// Take a node out of its `Arc`, cloning only if a snapshot still shares it.
fn unshare<K: Clone, V: Clone>(node: Arc<Node<K, V>>) -> Node<K, V> {
    Arc::try_unwrap(node).unwrap_or_else(|shared| (*shared).clone())
}

/// Result of inserting into a subtree: a value was replaced, and/or the node
/// split producing a new right sibling with its separator key.
struct InsertOutcome<K, V> {
    replaced: Option<V>,
    split: Option<(K, Node<K, V>)>,
}

/// Lookup statistics for one point query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes visited root→leaf (equals tree height).
    pub nodes_visited: usize,
    /// Key comparisons performed (binary-search probes).
    pub comparisons: usize,
}

/// A B+-tree map from `K` to `V`.
///
/// `Clone` is O(`ORDER`): it copies the root and shares every subtree.
/// A clone is a stable snapshot — later mutations of either tree
/// copy-on-write the paths they touch and never disturb the other. The
/// scheme servers use this to publish immutable search snapshots of
/// mutated shards.
#[derive(Clone)]
pub struct BpTree<K, V> {
    root: Node<K, V>,
    len: usize,
}

impl<K: Ord + Clone, V: Clone> Default for BpTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V: Clone> BpTree<K, V> {
    /// Create an empty tree.
    #[must_use]
    pub fn new() -> Self {
        BpTree {
            root: Node::new_leaf(),
            len: 0,
        }
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the tree holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (number of levels; 1 for a lone leaf).
    #[must_use]
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            h += 1;
            node = children[0].as_ref();
        }
        h
    }

    /// Insert `key -> value`, returning the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let outcome = Self::insert_rec(&mut self.root, key, value);
        if let Some((sep, right)) = outcome.split {
            // Grow a new root.
            let old_root = std::mem::replace(&mut self.root, Node::new_leaf());
            self.root = Node::Internal {
                keys: vec![sep],
                children: vec![Arc::new(old_root), Arc::new(right)],
            };
        }
        if outcome.replaced.is_none() {
            self.len += 1;
        }
        outcome.replaced
    }

    fn insert_rec(node: &mut Node<K, V>, key: K, value: V) -> InsertOutcome<K, V> {
        match node {
            Node::Leaf { entries } => match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(pos) => InsertOutcome {
                    replaced: Some(std::mem::replace(&mut entries[pos].1, value)),
                    split: None,
                },
                Err(pos) => {
                    entries.insert(pos, (key, value));
                    let split = if entries.len() > ORDER {
                        let right_entries = entries.split_off(entries.len() / 2);
                        let sep = right_entries[0].0.clone();
                        Some((
                            sep,
                            Node::Leaf {
                                entries: right_entries,
                            },
                        ))
                    } else {
                        None
                    };
                    InsertOutcome {
                        replaced: None,
                        split,
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| *k <= key);
                let outcome = Self::insert_rec(Arc::make_mut(&mut children[idx]), key, value);
                let mut result = InsertOutcome {
                    replaced: outcome.replaced,
                    split: None,
                };
                if let Some((sep, right)) = outcome.split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, Arc::new(right));
                    if children.len() > ORDER {
                        // Split this internal node: middle key moves up.
                        let mid = keys.len() / 2;
                        let up_key = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // remove the promoted key
                        let right_children = children.split_off(mid + 1);
                        result.split = Some((
                            up_key,
                            Node::Internal {
                                keys: right_keys,
                                children: right_children,
                            },
                        ));
                    }
                }
                result
            }
        }
    }

    /// Point lookup.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.get_with_stats(key).0
    }

    /// Point lookup with instrumentation (node visits, comparisons).
    #[must_use]
    pub fn get_with_stats(&self, key: &K) -> (Option<&V>, SearchStats) {
        let mut stats = SearchStats {
            nodes_visited: 0,
            comparisons: 0,
        };
        let mut node = &self.root;
        loop {
            stats.nodes_visited += 1;
            match node {
                Node::Internal { keys, children } => {
                    stats.comparisons += keys.len().max(1).ilog2() as usize + 1;
                    let idx = keys.partition_point(|k| k <= key);
                    node = children[idx].as_ref();
                }
                Node::Leaf { entries } => {
                    stats.comparisons += entries.len().max(1).ilog2() as usize + 1;
                    return match entries.binary_search_by(|(k, _)| k.cmp(key)) {
                        Ok(pos) => (Some(&entries[pos].1), stats),
                        Err(_) => (None, stats),
                    };
                }
            }
        }
    }

    /// Mutable point lookup. Copy-on-write: unshares the root→leaf path if
    /// a snapshot still holds it.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let mut node = &mut self.root;
        loop {
            match node {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    node = Arc::make_mut(&mut children[idx]);
                }
                Node::Leaf { entries } => {
                    return match entries.binary_search_by(|(k, _)| k.cmp(key)) {
                        Ok(pos) => Some(&mut entries[pos].1),
                        Err(_) => None,
                    };
                }
            }
        }
    }

    /// True iff `key` is present.
    #[must_use]
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Remove a key, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let removed = Self::remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
        }
        // Shrink the root if it became a pass-through internal node.
        if let Node::Internal { children, .. } = &mut self.root {
            if children.len() == 1 {
                let only = children.pop().expect("checked length 1");
                self.root = unshare(only);
            }
        }
        removed
    }

    fn remove_rec(node: &mut Node<K, V>, key: &K) -> Option<V> {
        match node {
            Node::Leaf { entries } => match entries.binary_search_by(|(k, _)| k.cmp(key)) {
                Ok(pos) => Some(entries.remove(pos).1),
                Err(_) => None,
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k <= key);
                let removed = Self::remove_rec(Arc::make_mut(&mut children[idx]), key)?;
                if children[idx].len_for_fill() < MIN_FILL {
                    Self::rebalance_child(keys, children, idx);
                }
                Some(removed)
            }
        }
    }

    /// Restore the fill invariant of `children[idx]` by borrowing from a
    /// sibling or merging with one.
    fn rebalance_child(keys: &mut Vec<K>, children: &mut Vec<Arc<Node<K, V>>>, idx: usize) {
        // Try borrowing from the left sibling.
        if idx > 0 && children[idx - 1].len_for_fill() > MIN_FILL {
            let (left_slice, right_slice) = children.split_at_mut(idx);
            let left = Arc::make_mut(&mut left_slice[idx - 1]);
            let cur = Arc::make_mut(&mut right_slice[0]);
            match (left, cur) {
                (Node::Leaf { entries: le }, Node::Leaf { entries: ce }) => {
                    let moved = le.pop().expect("left leaf has > MIN_FILL entries");
                    keys[idx - 1] = moved.0.clone();
                    ce.insert(0, moved);
                }
                (
                    Node::Internal {
                        keys: lk,
                        children: lc,
                    },
                    Node::Internal {
                        keys: ck,
                        children: cc,
                    },
                ) => {
                    let moved_child = lc.pop().expect("left internal has children");
                    let moved_key = lk.pop().expect("left internal has keys");
                    let sep = std::mem::replace(&mut keys[idx - 1], moved_key);
                    ck.insert(0, sep);
                    cc.insert(0, moved_child);
                }
                _ => unreachable!("siblings are at the same level"),
            }
            return;
        }
        // Try borrowing from the right sibling.
        if idx + 1 < children.len() && children[idx + 1].len_for_fill() > MIN_FILL {
            let (left_slice, right_slice) = children.split_at_mut(idx + 1);
            let cur = Arc::make_mut(&mut left_slice[idx]);
            let right = Arc::make_mut(&mut right_slice[0]);
            match (cur, right) {
                (Node::Leaf { entries: ce }, Node::Leaf { entries: re }) => {
                    let moved = re.remove(0);
                    ce.push(moved);
                    keys[idx] = re[0].0.clone();
                }
                (
                    Node::Internal {
                        keys: ck,
                        children: cc,
                    },
                    Node::Internal {
                        keys: rk,
                        children: rc,
                    },
                ) => {
                    let moved_child = rc.remove(0);
                    let moved_key = rk.remove(0);
                    let sep = std::mem::replace(&mut keys[idx], moved_key);
                    ck.push(sep);
                    cc.push(moved_child);
                }
                _ => unreachable!("siblings are at the same level"),
            }
            return;
        }
        // Merge with a sibling (prefer left).
        let merge_left = idx > 0;
        let (l, r) = if merge_left {
            (idx - 1, idx)
        } else {
            (idx, idx + 1)
        };
        if r >= children.len() {
            // Root with a single child after shrink: nothing to merge with;
            // the caller collapses pass-through roots.
            return;
        }
        let right_node = unshare(children.remove(r));
        let sep = keys.remove(l);
        match (Arc::make_mut(&mut children[l]), right_node) {
            (Node::Leaf { entries: le }, Node::Leaf { entries: re }) => {
                le.extend(re);
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                lk.push(sep);
                lk.extend(rk);
                lc.extend(rc);
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    /// In-order iteration over `(key, value)` references.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            stack: vec![Frame {
                node: &self.root,
                idx: 0,
            }],
        }
    }

    /// Iterate entries with keys in `[low, high)`.
    pub fn range<'a>(&'a self, low: &'a K, high: &'a K) -> impl Iterator<Item = (&'a K, &'a V)> {
        // Simplicity over speed: range scans are rare in the schemes (only
        // diagnostics use them); full in-order traversal with a filter is
        // acceptable and keeps deletion logic simple.
        self.iter().filter(move |(k, _)| *k >= low && *k < high)
    }

    /// Total number of tree nodes (diagnostic).
    #[must_use]
    pub fn node_count(&self) -> usize {
        fn count<K, V>(n: &Node<K, V>) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Internal { children, .. } => {
                    1 + children.iter().map(|c| count(c.as_ref())).sum::<usize>()
                }
            }
        }
        count(&self.root)
    }
}

impl<K: Ord + Clone + Debug, V: Clone> BpTree<K, V> {
    /// Verify structural invariants (fill factors, key ordering, uniform
    /// depth). Test/debug aid; panics with a description on violation.
    pub fn check_invariants(&self) {
        fn walk<K: Ord + Clone + Debug, V>(
            node: &Node<K, V>,
            lower: Option<&K>,
            upper: Option<&K>,
            is_root: bool,
        ) -> usize {
            match node {
                Node::Leaf { entries } => {
                    if !is_root {
                        assert!(
                            entries.len() >= MIN_FILL,
                            "leaf underfilled: {} < {MIN_FILL}",
                            entries.len()
                        );
                    }
                    assert!(entries.len() <= ORDER, "leaf overfilled");
                    for w in entries.windows(2) {
                        assert!(w[0].0 < w[1].0, "leaf keys out of order");
                    }
                    if let (Some(lo), Some(first)) = (lower, entries.first()) {
                        assert!(&first.0 >= lo, "leaf key below lower bound");
                    }
                    if let (Some(hi), Some(last)) = (upper, entries.last()) {
                        assert!(&last.0 < hi, "leaf key above upper bound");
                    }
                    1
                }
                Node::Internal { keys, children } => {
                    assert_eq!(keys.len() + 1, children.len(), "key/child arity");
                    if !is_root {
                        assert!(children.len() >= MIN_FILL, "internal underfilled");
                    }
                    assert!(children.len() <= ORDER, "internal overfilled");
                    for w in keys.windows(2) {
                        assert!(w[0] < w[1], "internal keys out of order");
                    }
                    let mut depth = None;
                    for (i, child) in children.iter().enumerate() {
                        let lo = if i == 0 { lower } else { Some(&keys[i - 1]) };
                        let hi = if i == keys.len() {
                            upper
                        } else {
                            Some(&keys[i])
                        };
                        let d = walk(child.as_ref(), lo, hi, false);
                        if let Some(prev) = depth {
                            assert_eq!(prev, d, "unequal subtree depths");
                        }
                        depth = Some(d);
                    }
                    depth.expect("internal node has children") + 1
                }
            }
        }
        walk(&self.root, None, None, true);
    }
}

struct Frame<'a, K, V> {
    node: &'a Node<K, V>,
    idx: usize,
}

/// In-order iterator over a [`BpTree`].
pub struct Iter<'a, K, V> {
    stack: Vec<Frame<'a, K, V>>,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let frame = self.stack.last_mut()?;
            match frame.node {
                Node::Leaf { entries } => {
                    if frame.idx < entries.len() {
                        let (k, v) = &entries[frame.idx];
                        frame.idx += 1;
                        return Some((k, v));
                    }
                    self.stack.pop();
                }
                Node::Internal { children, .. } => {
                    if frame.idx < children.len() {
                        let child = children[frame.idx].as_ref();
                        frame.idx += 1;
                        self.stack.push(Frame {
                            node: child,
                            idx: 0,
                        });
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_tree_basics() {
        let t: BpTree<u64, String> = BpTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 1);
        assert_eq!(t.get(&1), None);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn insert_get_replace() {
        let mut t = BpTree::new();
        assert_eq!(t.insert(1u64, "a"), None);
        assert_eq!(t.insert(2, "b"), None);
        assert_eq!(t.insert(1, "c"), Some("a"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&1), Some(&"c"));
        assert_eq!(t.get(&3), None);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = BpTree::new();
        t.insert(7u64, vec![1]);
        t.get_mut(&7).unwrap().push(2);
        assert_eq!(t.get(&7), Some(&vec![1, 2]));
        assert!(t.get_mut(&8).is_none());
    }

    #[test]
    fn many_inserts_stay_sorted_and_balanced() {
        let mut t = BpTree::new();
        let n = 10_000u64;
        // Insert in a scrambled order.
        for i in 0..n {
            let k = (i * 2_654_435_761) % n;
            t.insert(k, k * 10);
        }
        assert_eq!(t.len() as u64, n);
        t.check_invariants();
        let keys: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..n).collect::<Vec<_>>());
        // Height must be logarithmic: log_8(10^4) < 6.
        assert!(t.height() <= 6, "height {} too tall", t.height());
        for probe in [0u64, 1, 4_999, 9_999] {
            assert_eq!(t.get(&probe), Some(&(probe * 10)));
        }
    }

    #[test]
    fn height_grows_logarithmically() {
        let mut prev_height = 0;
        for exp in [6u32, 8, 10, 12, 14] {
            let n = 1u64 << exp;
            let mut t = BpTree::new();
            for i in 0..n {
                t.insert(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i);
            }
            let h = t.height();
            assert!(h >= prev_height, "height should be monotone in n");
            // ORDER/2=8 minimum fill: height <= log_8(n) + 2.
            let bound = (n as f64).log(MIN_FILL as f64).ceil() as usize + 2;
            assert!(h <= bound, "n={n}: height {h} > bound {bound}");
            prev_height = h;
        }
    }

    #[test]
    fn search_stats_report_visits() {
        let mut t = BpTree::new();
        for i in 0..5000u64 {
            t.insert(i, ());
        }
        let (found, stats) = t.get_with_stats(&1234);
        assert!(found.is_some());
        assert_eq!(stats.nodes_visited, t.height());
        assert!(stats.comparisons > 0);
    }

    #[test]
    fn remove_from_small_tree() {
        let mut t = BpTree::new();
        for i in 0..10u64 {
            t.insert(i, i);
        }
        assert_eq!(t.remove(&5), Some(5));
        assert_eq!(t.remove(&5), None);
        assert_eq!(t.len(), 9);
        assert_eq!(t.get(&5), None);
        t.check_invariants();
    }

    #[test]
    fn remove_everything_in_insertion_order() {
        let mut t = BpTree::new();
        let n = 3000u64;
        for i in 0..n {
            t.insert(i, i);
        }
        for i in 0..n {
            assert_eq!(t.remove(&i), Some(i), "removing {i}");
            if i % 271 == 0 {
                t.check_invariants();
            }
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn remove_everything_in_reverse_order() {
        let mut t = BpTree::new();
        let n = 3000u64;
        for i in 0..n {
            t.insert(i, i);
        }
        for i in (0..n).rev() {
            assert_eq!(t.remove(&i), Some(i));
            if i % 271 == 0 {
                t.check_invariants();
            }
        }
        assert!(t.is_empty());
    }

    #[test]
    fn range_query_filters_correctly() {
        let mut t = BpTree::new();
        for i in 0..100u64 {
            t.insert(i, i);
        }
        let r: Vec<u64> = t.range(&10, &20).map(|(k, _)| *k).collect();
        assert_eq!(r, (10..20).collect::<Vec<_>>());
    }

    #[test]
    fn works_with_byte_array_keys() {
        // The production key type: 32-byte PRF tags.
        let mut t: BpTree<[u8; 32], u64> = BpTree::new();
        for i in 0..500u64 {
            let mut k = [0u8; 32];
            k[..8].copy_from_slice(&i.to_be_bytes());
            k[8] = (i % 7) as u8;
            t.insert(k, i);
        }
        assert_eq!(t.len(), 500);
        let mut probe = [0u8; 32];
        probe[..8].copy_from_slice(&123u64.to_be_bytes());
        probe[8] = (123 % 7) as u8;
        assert_eq!(t.get(&probe), Some(&123));
        t.check_invariants();
    }

    #[test]
    fn clone_is_a_stable_snapshot_under_mutation() {
        let mut t = BpTree::new();
        let n = 2_000u64;
        for i in 0..n {
            t.insert(i, i * 3);
        }
        let snapshot = t.clone();
        // Mutate the original every way the API allows.
        for i in 0..n {
            if i % 3 == 0 {
                t.remove(&i);
            } else if i % 3 == 1 {
                t.insert(i, i * 7);
            } else {
                *t.get_mut(&i).unwrap() += 1;
            }
        }
        t.insert(n + 1, 0);
        t.check_invariants();
        // The snapshot still reads exactly as frozen.
        assert_eq!(snapshot.len() as u64, n);
        snapshot.check_invariants();
        for i in 0..n {
            assert_eq!(snapshot.get(&i), Some(&(i * 3)), "snapshot drifted at {i}");
        }
        let keys: Vec<u64> = snapshot.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn snapshot_of_mutated_clone_leaves_original_intact() {
        // Mutate the *clone* instead: the original must be untouched, and
        // the clone must see its own writes (no accidental sharing).
        let mut original = BpTree::new();
        for i in 0..512u64 {
            original.insert(i, i);
        }
        let mut clone = original.clone();
        for i in 0..512u64 {
            if i % 2 == 0 {
                clone.remove(&i);
            }
        }
        assert_eq!(clone.len(), 256);
        clone.check_invariants();
        assert_eq!(original.len(), 512);
        for i in 0..512u64 {
            assert_eq!(original.get(&i), Some(&i));
            let expect = if i % 2 == 0 { None } else { Some(&i) };
            assert_eq!(clone.get(&i), expect);
        }
    }

    #[test]
    fn clone_shares_structure_until_mutated() {
        // A clone must not deep-copy: its node count is reachable through
        // shared Arcs, and a single-key mutation unshares only one
        // root-to-leaf path (O(height) new nodes, not O(n)).
        let mut t = BpTree::new();
        for i in 0..4_096u64 {
            t.insert(i, [0u8; 64]);
        }
        let before = t.node_count();
        let snapshot = t.clone();
        *t.get_mut(&77).unwrap() = [1u8; 64];
        assert_eq!(t.node_count(), before);
        assert_eq!(snapshot.get(&77), Some(&[0u8; 64]));
        assert_eq!(t.get(&77), Some(&[1u8; 64]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Against the std BTreeMap oracle: arbitrary interleavings of
        /// insert/remove/get produce identical observable behaviour.
        #[test]
        fn behaves_like_btreemap(ops in prop::collection::vec(
            (0u8..3, 0u16..512, 0u32..1000), 1..400)) {
            let mut ours: BpTree<u16, u32> = BpTree::new();
            let mut oracle: BTreeMap<u16, u32> = BTreeMap::new();
            for (op, k, v) in ops {
                match op {
                    0 => prop_assert_eq!(ours.insert(k, v), oracle.insert(k, v)),
                    1 => prop_assert_eq!(ours.remove(&k), oracle.remove(&k)),
                    _ => prop_assert_eq!(ours.get(&k), oracle.get(&k)),
                }
                prop_assert_eq!(ours.len(), oracle.len());
            }
            ours.check_invariants();
            let got: Vec<(u16, u32)> = ours.iter().map(|(k, v)| (*k, *v)).collect();
            let want: Vec<(u16, u32)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, want);
        }

        /// Interleave mutations with snapshot clones: every snapshot keeps
        /// answering as of its clone point while the live tree moves on.
        #[test]
        fn snapshots_are_immutable_under_interleaved_ops(ops in prop::collection::vec(
            (0u8..4, 0u16..256, 0u32..1000), 1..200)) {
            let mut live: BpTree<u16, u32> = BpTree::new();
            let mut oracle: BTreeMap<u16, u32> = BTreeMap::new();
            let mut snaps: Vec<(BpTree<u16, u32>, BTreeMap<u16, u32>)> = Vec::new();
            for (op, k, v) in ops {
                match op {
                    0 => { live.insert(k, v); oracle.insert(k, v); }
                    1 => { live.remove(&k); oracle.remove(&k); }
                    2 => prop_assert_eq!(live.get(&k), oracle.get(&k)),
                    _ => if snaps.len() < 8 {
                        snaps.push((live.clone(), oracle.clone()));
                    },
                }
            }
            for (snap, frozen) in &snaps {
                prop_assert_eq!(snap.len(), frozen.len());
                let got: Vec<(u16, u32)> = snap.iter().map(|(k, v)| (*k, *v)).collect();
                let want: Vec<(u16, u32)> = frozen.iter().map(|(k, v)| (*k, *v)).collect();
                prop_assert_eq!(got, want);
            }
        }

        /// Height stays logarithmic for random key sets.
        #[test]
        fn height_is_logarithmic(keys in prop::collection::hash_set(any::<u64>(), 100..2000)) {
            let mut t = BpTree::new();
            for &k in &keys {
                t.insert(k, ());
            }
            let n = keys.len() as f64;
            let bound = n.log(MIN_FILL as f64).ceil() as usize + 2;
            prop_assert!(t.height() <= bound,
                "height {} exceeds bound {} for n={}", t.height(), bound, keys.len());
        }
    }
}
