//! Property-based tests for the index structures beyond the B+-tree's
//! in-module suite: bitset XOR algebra and Bloom-filter guarantees.

use proptest::prelude::*;
use sse_index::bitset::DocBitSet;
use sse_index::bloom::BloomFilter;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// XOR-merging two id sets equals their symmetric difference — the law
    /// the whole Scheme 1 update protocol rests on.
    #[test]
    fn bitset_xor_is_symmetric_difference(
        a in prop::collection::btree_set(0u64..256, 0..40),
        b in prop::collection::btree_set(0u64..256, 0..40),
    ) {
        let ids_a: Vec<u64> = a.iter().copied().collect();
        let ids_b: Vec<u64> = b.iter().copied().collect();
        let mut sa = DocBitSet::from_ids(256, &ids_a);
        let sb = DocBitSet::from_ids(256, &ids_b);
        sa.xor_with(&sb);
        let expect: BTreeSet<u64> = a.symmetric_difference(&b).copied().collect();
        prop_assert_eq!(sa.to_ids().into_iter().collect::<BTreeSet<_>>(), expect);
    }

    #[test]
    fn bitset_bytes_round_trip_canonically(
        ids in prop::collection::btree_set(0u64..100, 0..30),
        capacity in 100usize..150,
    ) {
        let ids: Vec<u64> = ids.into_iter().collect();
        let s = DocBitSet::from_ids(capacity, &ids);
        let back = DocBitSet::from_bytes(capacity, s.as_bytes());
        prop_assert_eq!(&back, &s);
        prop_assert_eq!(back.to_ids(), ids);
    }

    #[test]
    fn bitset_xor_is_involutive(
        a in prop::collection::btree_set(0u64..128, 0..30),
        b in prop::collection::btree_set(0u64..128, 0..30),
    ) {
        let ids_a: Vec<u64> = a.iter().copied().collect();
        let ids_b: Vec<u64> = b.iter().copied().collect();
        let orig = DocBitSet::from_ids(128, &ids_a);
        let delta = DocBitSet::from_ids(128, &ids_b);
        let mut s = orig.clone();
        s.xor_with(&delta);
        s.xor_with(&delta);
        prop_assert_eq!(s, orig);
    }

    /// Bloom filters never produce false negatives, for any item set.
    #[test]
    fn bloom_has_no_false_negatives(
        items in prop::collection::btree_set(prop::collection::vec(any::<u8>(), 1..20), 1..100),
    ) {
        let mut f = BloomFilter::with_rate(items.len(), 0.01);
        for item in &items {
            f.insert(item);
        }
        for item in &items {
            prop_assert!(f.contains(item));
        }
    }

    #[test]
    fn bitset_grow_preserves_semantics(
        ids in prop::collection::btree_set(0u64..64, 0..20),
        extra in 0usize..512,
    ) {
        let ids: Vec<u64> = ids.into_iter().collect();
        let mut s = DocBitSet::from_ids(64, &ids);
        s.grow(64 + extra);
        prop_assert_eq!(s.to_ids(), ids);
        prop_assert_eq!(s.capacity(), 64 + extra);
    }
}
