//! The medical-record model and its mapping to scheme documents.

use sse_core::types::{DocId, Document, Keyword};
use sse_net::wire::{WireReader, WireWriter};

/// Kind of medical record (also indexed as a keyword, so a GP can ask for
/// e.g. all vaccination records).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A consultation note.
    Consultation,
    /// A laboratory result.
    LabResult,
    /// A prescription.
    Prescription,
    /// A vaccination entry (the §6 traveler's use case).
    Vaccination,
}

impl RecordKind {
    /// The keyword under which this kind is indexed.
    #[must_use]
    pub fn keyword(&self) -> &'static str {
        match self {
            RecordKind::Consultation => "kind:consultation",
            RecordKind::LabResult => "kind:lab-result",
            RecordKind::Prescription => "kind:prescription",
            RecordKind::Vaccination => "kind:vaccination",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            RecordKind::Consultation => 0,
            RecordKind::LabResult => 1,
            RecordKind::Prescription => 2,
            RecordKind::Vaccination => 3,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => RecordKind::Consultation,
            1 => RecordKind::LabResult,
            2 => RecordKind::Prescription,
            3 => RecordKind::Vaccination,
            _ => return None,
        })
    }
}

/// One medical record in a PHR.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MedicalRecord {
    /// Record identifier (becomes the scheme's document id).
    pub id: DocId,
    /// Kind of record.
    pub kind: RecordKind,
    /// Day number (days since an epoch; a real system would use dates).
    pub day: u32,
    /// Medical codes attached to the record — these are the searchable
    /// keywords.
    pub codes: Vec<String>,
    /// Free-text note (encrypted payload only, never indexed).
    pub note: String,
}

impl MedicalRecord {
    /// Serialize the payload (everything the server stores encrypted).
    #[must_use]
    pub fn to_payload(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u64(self.id)
            .put_u8(self.kind.to_u8())
            .put_u32(self.day)
            .put_u64(self.codes.len() as u64);
        for c in &self.codes {
            w.put_bytes(c.as_bytes());
        }
        w.put_bytes(self.note.as_bytes());
        w.finish()
    }

    /// Parse a payload back into a record.
    #[must_use]
    pub fn from_payload(bytes: &[u8]) -> Option<Self> {
        let mut r = WireReader::new(bytes);
        let id = r.get_u64().ok()?;
        let kind = RecordKind::from_u8(r.get_u8().ok()?)?;
        let day = r.get_u32().ok()?;
        let n = r.get_u64().ok()? as usize;
        let mut codes = Vec::with_capacity(n);
        for _ in 0..n {
            codes.push(String::from_utf8(r.get_bytes().ok()?.to_vec()).ok()?);
        }
        let note = String::from_utf8(r.get_bytes().ok()?.to_vec()).ok()?;
        r.finish().ok()?;
        Some(MedicalRecord {
            id,
            kind,
            day,
            codes,
            note,
        })
    }

    /// Map to the scheme document: payload encrypted, codes + kind indexed.
    #[must_use]
    pub fn to_document(&self) -> Document {
        let mut keywords: Vec<Keyword> = self.codes.iter().map(Keyword::from).collect();
        keywords.push(Keyword::new(self.kind.keyword()));
        Document::new(self.id, self.to_payload(), keywords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> MedicalRecord {
        MedicalRecord {
            id: 42,
            kind: RecordKind::Vaccination,
            day: 1234,
            codes: vec![
                "proc:vaccination-flu".to_string(),
                "med:paracetamol".to_string(),
            ],
            note: "traveler check, no adverse reaction".to_string(),
        }
    }

    #[test]
    fn payload_round_trip() {
        let r = record();
        let back = MedicalRecord::from_payload(&r.to_payload()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn malformed_payload_is_none() {
        assert!(MedicalRecord::from_payload(&[]).is_none());
        let mut bytes = record().to_payload();
        bytes[8] = 99; // invalid kind
        assert!(MedicalRecord::from_payload(&bytes).is_none());
        let mut extended = record().to_payload();
        extended.push(0);
        assert!(MedicalRecord::from_payload(&extended).is_none());
    }

    #[test]
    fn document_mapping_indexes_codes_and_kind() {
        let d = record().to_document();
        assert_eq!(d.id, 42);
        assert!(d.has_keyword(&Keyword::new("proc:vaccination-flu")));
        assert!(d.has_keyword(&Keyword::new("med:paracetamol")));
        assert!(d.has_keyword(&Keyword::new("kind:vaccination")));
        assert_eq!(d.keywords.len(), 3);
        // Note text is in the payload, not the keywords.
        assert!(!d.has_keyword(&Keyword::new("traveler")));
    }

    #[test]
    fn all_kinds_round_trip() {
        for kind in [
            RecordKind::Consultation,
            RecordKind::LabResult,
            RecordKind::Prescription,
            RecordKind::Vaccination,
        ] {
            assert_eq!(RecordKind::from_u8(kind.to_u8()), Some(kind));
        }
        assert_eq!(RecordKind::from_u8(7), None);
    }
}
