//! A compact synthetic medical vocabulary.
//!
//! Real PHR systems key their records with coding systems (ICD, ATC,
//! SNOMED); those code lists are licensed, so this module carries a small
//! free-standing vocabulary with the same *shape*: short code-like strings
//! in three families. The workload generator samples them Zipf-distributed,
//! mirroring how a handful of common conditions dominate real records.

/// Condition codes (the "diagnosis" family).
pub const CONDITIONS: &[&str] = &[
    "cond:hypertension",
    "cond:influenza",
    "cond:diabetes-t2",
    "cond:asthma",
    "cond:back-pain",
    "cond:migraine",
    "cond:eczema",
    "cond:anxiety",
    "cond:depression",
    "cond:otitis-media",
    "cond:sinusitis",
    "cond:bronchitis",
    "cond:uti",
    "cond:gerd",
    "cond:allergic-rhinitis",
    "cond:hyperlipidemia",
    "cond:hypothyroidism",
    "cond:osteoarthritis",
    "cond:copd",
    "cond:anemia",
    "cond:gout",
    "cond:psoriasis",
    "cond:insomnia",
    "cond:obesity",
    "cond:tonsillitis",
    "cond:conjunctivitis",
    "cond:dermatitis",
    "cond:gastroenteritis",
    "cond:pneumonia",
    "cond:sprain-ankle",
    "cond:fracture-wrist",
    "cond:concussion",
    "cond:vertigo",
    "cond:palpitations",
    "cond:afib",
    "cond:angina",
    "cond:ckd",
    "cond:hepatitis-b",
    "cond:measles",
    "cond:chickenpox",
];

/// Medication codes (the "prescription" family).
pub const MEDICATIONS: &[&str] = &[
    "med:paracetamol",
    "med:ibuprofen",
    "med:amoxicillin",
    "med:metformin",
    "med:lisinopril",
    "med:atorvastatin",
    "med:salbutamol",
    "med:omeprazole",
    "med:levothyroxine",
    "med:sertraline",
    "med:amlodipine",
    "med:metoprolol",
    "med:prednisone",
    "med:azithromycin",
    "med:cetirizine",
    "med:insulin-glargine",
    "med:warfarin",
    "med:clopidogrel",
    "med:tramadol",
    "med:diazepam",
    "med:fluoxetine",
    "med:doxycycline",
    "med:naproxen",
    "med:ranitidine",
    "med:hydrochlorothiazide",
];

/// Procedure / encounter codes.
pub const PROCEDURES: &[&str] = &[
    "proc:annual-checkup",
    "proc:blood-panel",
    "proc:x-ray",
    "proc:mri",
    "proc:ecg",
    "proc:vaccination-flu",
    "proc:vaccination-tetanus",
    "proc:vaccination-hepb",
    "proc:vaccination-mmr",
    "proc:spirometry",
    "proc:ultrasound",
    "proc:biopsy",
    "proc:colonoscopy",
    "proc:physiotherapy",
    "proc:suture",
];

/// The full vocabulary, concatenated (conditions, medications, procedures).
#[must_use]
pub fn full_vocabulary() -> Vec<&'static str> {
    CONDITIONS
        .iter()
        .chain(MEDICATIONS.iter())
        .chain(PROCEDURES.iter())
        .copied()
        .collect()
}

/// A synthetic open-ended vocabulary for scaling experiments that need more
/// unique keywords than the curated lists provide: `kw-0000`, `kw-0001`, …
#[must_use]
pub fn synthetic_vocabulary(size: usize) -> Vec<String> {
    (0..size).map(|i| format!("kw-{i:05}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_is_nonempty_and_unique() {
        let v = full_vocabulary();
        assert_eq!(
            v.len(),
            CONDITIONS.len() + MEDICATIONS.len() + PROCEDURES.len()
        );
        let set: std::collections::HashSet<_> = v.iter().collect();
        assert_eq!(set.len(), v.len(), "no duplicate codes");
    }

    #[test]
    fn families_are_prefixed() {
        assert!(CONDITIONS.iter().all(|c| c.starts_with("cond:")));
        assert!(MEDICATIONS.iter().all(|c| c.starts_with("med:")));
        assert!(PROCEDURES.iter().all(|c| c.starts_with("proc:")));
    }

    #[test]
    fn synthetic_vocabulary_scales() {
        let v = synthetic_vocabulary(1000);
        assert_eq!(v.len(), 1000);
        assert_eq!(v[0], "kw-00000");
        assert_eq!(v[999], "kw-00999");
        let set: std::collections::HashSet<_> = v.iter().collect();
        assert_eq!(set.len(), 1000);
    }
}
