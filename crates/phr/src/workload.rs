//! Workload generators for the experiments and the §6 usage profiles.

use crate::codes;
use crate::record::{MedicalRecord, RecordKind};
use crate::zipf::Zipf;
use sse_core::types::{Document, Keyword};
use sse_primitives::drbg::HmacDrbg;

/// Parameters for a synthetic document corpus.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Number of documents.
    pub docs: usize,
    /// Vocabulary size (unique keywords available).
    pub vocab_size: usize,
    /// Zipf exponent for keyword popularity (1.0 ≈ natural text).
    pub zipf_s: f64,
    /// Keywords per document: uniform in `[min, max]`.
    pub keywords_per_doc: (usize, usize),
    /// Payload size per document in bytes.
    pub payload_bytes: usize,
    /// DRBG seed (reproducibility).
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            docs: 256,
            vocab_size: 1024,
            zipf_s: 1.0,
            keywords_per_doc: (3, 8),
            payload_bytes: 128,
            seed: 0x5EED,
        }
    }
}

/// Generate a synthetic corpus with Zipf-distributed keywords.
#[must_use]
pub fn generate_corpus(config: &CorpusConfig) -> Vec<Document> {
    let vocab = codes::synthetic_vocabulary(config.vocab_size);
    let zipf = Zipf::new(config.vocab_size, config.zipf_s);
    let mut drbg = HmacDrbg::from_u64(config.seed);
    let (kmin, kmax) = config.keywords_per_doc;
    assert!(
        kmin <= kmax && kmax <= config.vocab_size,
        "bad keyword range"
    );

    (0..config.docs as u64)
        .map(|id| {
            let k = kmin + drbg.gen_range((kmax - kmin + 1) as u64) as usize;
            let ranks = zipf.sample_distinct(&mut drbg, k);
            let kws: Vec<Keyword> = ranks
                .into_iter()
                .map(|r| Keyword::new(vocab[r].clone()))
                .collect();
            let mut payload = vec![0u8; config.payload_bytes];
            drbg.fill(&mut payload);
            Document::new(id, payload, kws)
        })
        .collect()
}

/// Generate `n` synthetic medical records drawn from the curated vocabulary.
#[must_use]
pub fn generate_records(n: usize, seed: u64) -> Vec<MedicalRecord> {
    let mut drbg = HmacDrbg::from_u64(seed);
    let cond_zipf = Zipf::new(codes::CONDITIONS.len(), 1.1);
    let med_zipf = Zipf::new(codes::MEDICATIONS.len(), 1.1);
    let proc_zipf = Zipf::new(codes::PROCEDURES.len(), 1.1);

    (0..n as u64)
        .map(|id| {
            let kind = match drbg.gen_range(4) {
                0 => RecordKind::Consultation,
                1 => RecordKind::LabResult,
                2 => RecordKind::Prescription,
                _ => RecordKind::Vaccination,
            };
            let mut record_codes = vec![codes::CONDITIONS[cond_zipf.sample(&mut drbg)].to_string()];
            if drbg.gen_range(2) == 0 {
                record_codes.push(codes::MEDICATIONS[med_zipf.sample(&mut drbg)].to_string());
            }
            if matches!(kind, RecordKind::Vaccination) || drbg.gen_range(3) == 0 {
                record_codes.push(codes::PROCEDURES[proc_zipf.sample(&mut drbg)].to_string());
            }
            record_codes.dedup();
            MedicalRecord {
                id,
                kind,
                day: drbg.gen_range(3650) as u32,
                codes: record_codes,
                note: format!("synthetic note for record {id}"),
            }
        })
        .collect()
}

/// One event in a usage profile.
#[derive(Clone, Debug)]
pub enum PhrEvent {
    /// Store new records (an update).
    Store(Vec<MedicalRecord>),
    /// Search for a code.
    Search(Keyword),
}

/// The §6 *GP profile*: visits interleave retrieval and update — one search
/// per visit, `updates_per_search` record stores between searches (the
/// paper's `x`).
#[must_use]
pub fn gp_profile(visits: usize, updates_per_search: usize, seed: u64) -> Vec<PhrEvent> {
    let mut drbg = HmacDrbg::from_u64(seed);
    let cond_zipf = Zipf::new(codes::CONDITIONS.len(), 1.1);
    let mut events = Vec::new();
    let mut next_id = 0u64;
    for _ in 0..visits {
        // Before the visit: retrieve records about the presenting condition.
        let code = codes::CONDITIONS[cond_zipf.sample(&mut drbg)];
        events.push(PhrEvent::Search(Keyword::new(code)));
        // After the visit (and possibly follow-ups): new records.
        for _ in 0..updates_per_search {
            let mut records = generate_records(1, drbg.gen_u64());
            records[0].id = next_id;
            // Bias toward the searched condition so results accumulate.
            records[0].codes.push(code.to_string());
            records[0].codes.dedup();
            next_id += 1;
            events.push(PhrEvent::Store(records));
        }
    }
    events
}

/// The §6 *traveler profile*: one bulk load of history, then occasional
/// searches (vaccination checks), no further updates.
#[must_use]
pub fn traveler_profile(history_records: usize, searches: usize, seed: u64) -> Vec<PhrEvent> {
    let mut events = Vec::new();
    events.push(PhrEvent::Store(generate_records(history_records, seed)));
    let mut drbg = HmacDrbg::from_u64(seed ^ 0xABCD);
    for _ in 0..searches {
        // The journalist checking vaccination validity (§6).
        let code = if drbg.gen_range(2) == 0 {
            RecordKind::Vaccination.keyword().to_string()
        } else {
            codes::PROCEDURES[drbg.gen_range(codes::PROCEDURES.len() as u64) as usize].to_string()
        };
        events.push(PhrEvent::Search(Keyword::new(code)));
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn corpus_has_requested_shape() {
        let config = CorpusConfig {
            docs: 100,
            vocab_size: 500,
            keywords_per_doc: (2, 5),
            payload_bytes: 64,
            ..CorpusConfig::default()
        };
        let corpus = generate_corpus(&config);
        assert_eq!(corpus.len(), 100);
        for d in &corpus {
            assert!((2..=5).contains(&d.keywords.len()), "{}", d.keywords.len());
            assert_eq!(d.data.len(), 64);
        }
        // Ids are unique and sequential.
        let ids: Vec<u64> = corpus.iter().map(|d| d.id).collect();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn corpus_is_reproducible() {
        let config = CorpusConfig::default();
        let a = generate_corpus(&config);
        let b = generate_corpus(&config);
        assert_eq!(a, b);
    }

    #[test]
    fn corpus_keyword_popularity_is_skewed() {
        let config = CorpusConfig {
            docs: 500,
            ..CorpusConfig::default()
        };
        let corpus = generate_corpus(&config);
        let mut counts: std::collections::HashMap<&Keyword, usize> =
            std::collections::HashMap::new();
        for d in &corpus {
            for k in &d.keywords {
                *counts.entry(k).or_insert(0) += 1;
            }
        }
        let max = counts.values().max().copied().unwrap_or(0);
        let used = counts.len();
        // Zipf: the most popular keyword appears in many docs while many
        // keywords appear once.
        assert!(max > 50, "head keyword count {max}");
        assert!(used > 100, "tail breadth {used}");
    }

    #[test]
    fn records_have_valid_codes() {
        let records = generate_records(200, 9);
        let vocab: BTreeSet<&str> = codes::full_vocabulary().into_iter().collect();
        for r in &records {
            assert!(!r.codes.is_empty());
            for c in &r.codes {
                assert!(vocab.contains(c.as_str()), "unknown code {c}");
            }
            assert!(MedicalRecord::from_payload(&r.to_payload()).is_some());
        }
    }

    #[test]
    fn gp_profile_interleaves_with_ratio() {
        let events = gp_profile(10, 3, 1);
        assert_eq!(events.len(), 10 * (1 + 3));
        // Pattern: S U U U S U U U ...
        for (i, e) in events.iter().enumerate() {
            if i % 4 == 0 {
                assert!(matches!(e, PhrEvent::Search(_)), "event {i}");
            } else {
                assert!(matches!(e, PhrEvent::Store(_)), "event {i}");
            }
        }
        // Stored record ids are unique.
        let ids: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                PhrEvent::Store(rs) => Some(rs[0].id),
                PhrEvent::Search(_) => None,
            })
            .collect();
        let set: BTreeSet<u64> = ids.iter().copied().collect();
        assert_eq!(set.len(), ids.len());
    }

    #[test]
    fn traveler_profile_is_bulk_then_search() {
        let events = traveler_profile(50, 5, 2);
        assert_eq!(events.len(), 6);
        assert!(matches!(&events[0], PhrEvent::Store(rs) if rs.len() == 50));
        for e in &events[1..] {
            assert!(matches!(e, PhrEvent::Search(_)));
        }
    }
}
