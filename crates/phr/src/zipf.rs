//! Zipf-distributed sampling.
//!
//! Keyword frequencies in text and in medical coding are heavy-tailed: a
//! few codes (hypertension, paracetamol) appear everywhere, most appear
//! rarely. The experiments need that shape — uniform keywords would make
//! every posting list the same length and flatter the schemes.
//!
//! Implementation: precomputed cumulative distribution + binary search,
//! exact for any rank count and exponent.

use sse_primitives::drbg::HmacDrbg;

/// A Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank k) ∝ 1 / (k+1)^s`.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Sample one rank.
    #[must_use]
    pub fn sample(&self, drbg: &mut HmacDrbg) -> usize {
        let u = drbg.gen_f64();
        // First index with cdf >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Sample `count` distinct ranks (rejection; count must be ≤ n).
    ///
    /// # Panics
    /// Panics if `count > n`.
    #[must_use]
    pub fn sample_distinct(&self, drbg: &mut HmacDrbg, count: usize) -> Vec<usize> {
        assert!(
            count <= self.n(),
            "cannot draw {count} distinct of {}",
            self.n()
        );
        let mut out = Vec::with_capacity(count);
        let mut seen = std::collections::HashSet::new();
        // Rejection sampling is fine: count << n in our workloads. For the
        // degenerate count ≈ n case, fall back to a shuffled full range.
        let mut attempts = 0usize;
        while out.len() < count {
            attempts += 1;
            if attempts > 64 * count.max(8) {
                // Degenerate: fill with the unused ranks in order.
                for r in 0..self.n() {
                    if out.len() == count {
                        break;
                    }
                    if seen.insert(r) {
                        out.push(r);
                    }
                }
                break;
            }
            let r = self.sample(drbg);
            if seen.insert(r) {
                out.push(r);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut drbg = HmacDrbg::from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut drbg) < 100);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(1000, 1.0);
        let mut drbg = HmacDrbg::from_u64(2);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut drbg)] += 1;
        }
        // Rank 0 should be sampled far more than rank 100.
        assert!(
            counts[0] > counts[100] * 5,
            "{} vs {}",
            counts[0],
            counts[100]
        );
        // And the head (top 10 ranks) should carry a large share.
        let head: usize = counts[..10].iter().sum();
        assert!(head > 5000, "head share {head} of 20000");
    }

    #[test]
    fn exponent_zero_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut drbg = HmacDrbg::from_u64(3);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut drbg)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "uniform-ish expected: {counts:?}");
        }
    }

    #[test]
    fn distinct_sampling_has_no_duplicates() {
        let z = Zipf::new(50, 1.2);
        let mut drbg = HmacDrbg::from_u64(4);
        let s = z.sample_distinct(&mut drbg, 20);
        assert_eq!(s.len(), 20);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 20);
    }

    #[test]
    fn distinct_sampling_full_range() {
        let z = Zipf::new(8, 2.0);
        let mut drbg = HmacDrbg::from_u64(5);
        let mut s = z.sample_distinct(&mut drbg, 8);
        s.sort_unstable();
        assert_eq!(s, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
