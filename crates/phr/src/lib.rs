//! # sse-phr
//!
//! The paper's §6 application: **PHR+**, a privacy-enhanced personal health
//! record system where medical records are stored on an honest-but-curious
//! server under searchable encryption.
//!
//! * [`codes`] — a compact synthetic medical vocabulary (conditions,
//!   medications, procedures) standing in for the coding systems a real
//!   PHR would use; see DESIGN.md §4 on this substitution.
//! * [`record`] — the medical-record model and its mapping onto the
//!   schemes' `Document` type (payload = serialized record, keywords =
//!   codes + record type).
//! * [`zipf`] — a Zipf sampler: real keyword frequencies are heavy-tailed,
//!   and the experiments need that shape.
//! * [`workload`] — corpus and session generators for the paper's two
//!   usage profiles: the *traveler* (bulk store, occasional searches —
//!   Scheme 1 territory) and the *GP* (update/search interleaved every
//!   visit — Scheme 2 territory).
//! * [`system`] — [`system::PhrSystem`]: a small façade exposing
//!   store-record / find-by-code over either scheme.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codes;
pub mod record;
pub mod system;
pub mod workload;
pub mod zipf;
