//! The PHR+ façade: medical-record operations over any SSE scheme.

use crate::record::MedicalRecord;
use crate::workload::PhrEvent;
use sse_core::error::Result;
use sse_core::scheme::SseClientApi;
use sse_core::types::{Document, Keyword};

/// A privacy-enhanced personal health record system running over an SSE
/// client (either of the paper's schemes, or a baseline for comparison).
pub struct PhrSystem<C: SseClientApi> {
    client: C,
    records_stored: u64,
    searches_run: u64,
}

impl<C: SseClientApi> PhrSystem<C> {
    /// Wrap an SSE client.
    #[must_use]
    pub fn new(client: C) -> Self {
        PhrSystem {
            client,
            records_stored: 0,
            searches_run: 0,
        }
    }

    /// Store medical records (encrypted payload, indexed by code).
    ///
    /// # Errors
    /// Scheme errors propagate (e.g. chain exhaustion on Scheme 2).
    pub fn add_records(&mut self, records: &[MedicalRecord]) -> Result<()> {
        let docs: Vec<Document> = records.iter().map(MedicalRecord::to_document).collect();
        self.client.add_documents(&docs)?;
        self.records_stored += records.len() as u64;
        Ok(())
    }

    /// Retrieve and decode all records carrying a code.
    ///
    /// # Errors
    /// Scheme errors propagate.
    pub fn find_by_code(&mut self, code: &str) -> Result<Vec<MedicalRecord>> {
        let hits = self.client.search(&Keyword::new(code))?;
        self.searches_run += 1;
        Ok(hits
            .into_iter()
            .filter_map(|(_, payload)| MedicalRecord::from_payload(&payload))
            .collect())
    }

    /// Retrieve records matching a boolean code query, e.g. "influenza AND
    /// paracetamol" — one batched protocol exchange plus client-side set
    /// algebra.
    ///
    /// # Errors
    /// Scheme errors propagate.
    pub fn find_by_query(&mut self, query: &sse_core::query::Query) -> Result<Vec<MedicalRecord>> {
        let hits = sse_core::query::execute_query(&mut self.client, query)?;
        self.searches_run += 1;
        Ok(hits
            .into_iter()
            .filter_map(|(_, payload)| MedicalRecord::from_payload(&payload))
            .collect())
    }

    /// Replay a workload profile, returning `(records stored, searches run,
    /// total hits)`.
    ///
    /// # Errors
    /// Scheme errors propagate.
    pub fn run_profile(&mut self, events: &[PhrEvent]) -> Result<(u64, u64, u64)> {
        let mut hits = 0u64;
        let (mut stored, mut searched) = (0u64, 0u64);
        for e in events {
            match e {
                PhrEvent::Store(records) => {
                    self.add_records(records)?;
                    stored += records.len() as u64;
                }
                PhrEvent::Search(kw) => {
                    hits += self.client.search(kw)?.len() as u64;
                    self.searches_run += 1;
                    searched += 1;
                }
            }
        }
        Ok((stored, searched, hits))
    }

    /// Records stored so far.
    #[must_use]
    pub fn records_stored(&self) -> u64 {
        self.records_stored
    }

    /// Searches run so far.
    #[must_use]
    pub fn searches_run(&self) -> u64 {
        self.searches_run
    }

    /// The wrapped client.
    pub fn client_mut(&mut self) -> &mut C {
        &mut self.client
    }

    /// Scheme name (for reports).
    #[must_use]
    pub fn scheme_name(&self) -> &'static str {
        self.client.scheme_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;
    use crate::workload::{gp_profile, traveler_profile};
    use sse_core::scheme1::{InMemoryScheme1Client, Scheme1Config};
    use sse_core::scheme2::{InMemoryScheme2Client, Scheme2Config};
    use sse_core::types::MasterKey;

    fn sample_records() -> Vec<MedicalRecord> {
        vec![
            MedicalRecord {
                id: 0,
                kind: RecordKind::Vaccination,
                day: 100,
                codes: vec!["proc:vaccination-flu".into()],
                note: "flu shot".into(),
            },
            MedicalRecord {
                id: 1,
                kind: RecordKind::Consultation,
                day: 200,
                codes: vec!["cond:influenza".into(), "med:paracetamol".into()],
                note: "flu-like symptoms".into(),
            },
        ]
    }

    #[test]
    fn phr_over_scheme1() {
        let client = InMemoryScheme1Client::new_in_memory(
            MasterKey::from_seed(1),
            Scheme1Config::fast_profile(256),
        );
        let mut phr = PhrSystem::new(client);
        phr.add_records(&sample_records()).unwrap();
        let found = phr.find_by_code("cond:influenza").unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].note, "flu-like symptoms");
        let vax = phr.find_by_code("kind:vaccination").unwrap();
        assert_eq!(vax.len(), 1);
        assert_eq!(vax[0].id, 0);
        assert_eq!(phr.scheme_name(), "scheme1");
    }

    #[test]
    fn phr_over_scheme2() {
        let client = InMemoryScheme2Client::new_in_memory(
            MasterKey::from_seed(2),
            Scheme2Config::standard().with_chain_length(128),
        );
        let mut phr = PhrSystem::new(client);
        phr.add_records(&sample_records()).unwrap();
        assert_eq!(phr.find_by_code("med:paracetamol").unwrap().len(), 1);
        assert_eq!(phr.records_stored(), 2);
        assert_eq!(phr.searches_run(), 2 - 1);
    }

    #[test]
    fn boolean_code_queries_work() {
        use sse_core::query::Query;
        let client = InMemoryScheme2Client::new_in_memory(
            MasterKey::from_seed(8),
            Scheme2Config::standard().with_chain_length(64),
        );
        let mut phr = PhrSystem::new(client);
        phr.add_records(&sample_records()).unwrap();
        // influenza AND paracetamol -> record 1 only.
        let both = phr
            .find_by_query(&Query::all_of(["cond:influenza", "med:paracetamol"]))
            .unwrap();
        assert_eq!(both.len(), 1);
        assert_eq!(both[0].id, 1);
        // vaccination OR influenza -> both records.
        let either = phr
            .find_by_query(&Query::any_of(["kind:vaccination", "cond:influenza"]))
            .unwrap();
        assert_eq!(either.len(), 2);
    }

    #[test]
    fn gp_can_remove_an_erroneous_record() {
        let client = InMemoryScheme2Client::new_in_memory(
            MasterKey::from_seed(21),
            Scheme2Config::standard().with_chain_length(64),
        );
        let mut phr = PhrSystem::new(client);
        phr.add_records(&sample_records()).unwrap();
        assert_eq!(phr.find_by_code("cond:influenza").unwrap().len(), 1);
        // The record was entered in error: remove it (deletion extension).
        let doc = sample_records()[1].to_document();
        phr.client_mut().remove(std::slice::from_ref(&doc)).unwrap();
        assert!(phr.find_by_code("cond:influenza").unwrap().is_empty());
        // The unrelated vaccination record is untouched.
        assert_eq!(phr.find_by_code("kind:vaccination").unwrap().len(), 1);
    }

    #[test]
    fn gp_profile_runs_over_scheme2() {
        let client = InMemoryScheme2Client::new_in_memory(
            MasterKey::from_seed(3),
            Scheme2Config::standard().with_chain_length(256),
        );
        let mut phr = PhrSystem::new(client);
        let events = gp_profile(8, 2, 4);
        let (stored, searched, _hits) = phr.run_profile(&events).unwrap();
        assert_eq!(stored, 16);
        assert_eq!(searched, 8);
    }

    #[test]
    fn traveler_profile_runs_over_scheme1() {
        let client = InMemoryScheme1Client::new_in_memory(
            MasterKey::from_seed(4),
            Scheme1Config::fast_profile(512),
        );
        let mut phr = PhrSystem::new(client);
        let events = traveler_profile(30, 4, 5);
        let (stored, searched, hits) = phr.run_profile(&events).unwrap();
        assert_eq!(stored, 30);
        assert_eq!(searched, 4);
        // Vaccination records exist in a 30-record corpus with ~1/4
        // vaccination probability; at least some search should hit.
        assert!(hits > 0, "expected some vaccination hits");
    }
}
