//! Experiment corpora with exactly-controlled unique-keyword counts.

use sse_core::types::{Document, Keyword};

/// Keywords attached to every document in the controlled corpora.
pub const KEYWORDS_PER_DOC: usize = 4;

/// Build a corpus with **exactly** `unique_keywords` unique keywords, each
/// appearing in roughly the same number of documents. Document `j` carries
/// keywords `(4j .. 4j+4) mod u`, so with `docs = u/2` every keyword occurs
/// in exactly 2 documents — the controlled shape experiment E1 needs (the
/// Zipf corpora of `sse-phr` are for application-flavoured runs).
///
/// # Panics
/// Panics if `unique_keywords < KEYWORDS_PER_DOC`.
#[must_use]
pub fn exact_corpus(unique_keywords: usize, docs: usize, payload_bytes: usize) -> Vec<Document> {
    assert!(unique_keywords >= KEYWORDS_PER_DOC);
    (0..docs as u64)
        .map(|j| {
            let kws: Vec<Keyword> = (0..KEYWORDS_PER_DOC as u64)
                .map(|k| {
                    Keyword::new(format!(
                        "kw-{:06}",
                        (j * KEYWORDS_PER_DOC as u64 + k) % unique_keywords as u64
                    ))
                })
                .collect();
            Document::new(j, vec![0xD0; payload_bytes], kws)
        })
        .collect()
}

/// The canonical doc count giving ~2 occurrences per keyword.
#[must_use]
pub fn docs_for(unique_keywords: usize) -> usize {
    unique_keywords / 2
}

/// A keyword guaranteed to exist in an [`exact_corpus`].
#[must_use]
pub fn probe_keyword(i: usize, unique_keywords: usize) -> Keyword {
    Keyword::new(format!("kw-{:06}", i % unique_keywords))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn exact_unique_keyword_count() {
        for u in [8usize, 64, 1000] {
            let corpus = exact_corpus(u, docs_for(u), 16);
            let unique: BTreeSet<&Keyword> =
                corpus.iter().flat_map(|d| d.keywords.iter()).collect();
            assert_eq!(unique.len(), u, "u = {u}");
        }
    }

    #[test]
    fn each_keyword_occurs_about_twice() {
        let u = 100;
        let corpus = exact_corpus(u, docs_for(u), 16);
        let mut counts = std::collections::HashMap::new();
        for d in &corpus {
            for k in &d.keywords {
                *counts.entry(k.clone()).or_insert(0usize) += 1;
            }
        }
        for (k, c) in counts {
            assert_eq!(c, 2, "{k}");
        }
    }

    #[test]
    fn probe_keyword_exists() {
        let u = 64;
        let corpus = exact_corpus(u, docs_for(u), 16);
        let probe = probe_keyword(17, u);
        assert!(corpus.iter().any(|d| d.has_keyword(&probe)));
    }
}
