//! Minimal wall-clock measurement for the harness tables.
//!
//! Criterion owns the statistically careful numbers (`cargo bench`); the
//! harness needs quick medians to print table *shapes*, so this module
//! keeps it simple: run, collect, take the median.

use std::time::Instant;

/// Median wall-clock nanoseconds of `iters` runs of `f`.
///
/// # Panics
/// Panics if `iters == 0`.
pub fn median_nanos<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    assert!(iters > 0);
    let mut samples: Vec<u128> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_nanos());
    }
    samples.sort_unstable();
    samples[samples.len() / 2] as f64
}

/// Mean wall-clock nanoseconds per item when `f` processes `items` at once.
pub fn mean_nanos_per_item<F: FnOnce()>(items: usize, f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos() as f64 / items.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_positive_and_ordered() {
        // Use sleeps: arithmetic loops get const-folded in release builds.
        let fast = median_nanos(3, || {
            std::thread::sleep(std::time::Duration::from_micros(10));
        });
        let slow = median_nanos(3, || {
            std::thread::sleep(std::time::Duration::from_micros(500));
        });
        assert!(fast >= 10_000.0);
        assert!(slow > fast, "{slow} should exceed {fast}");
    }

    #[test]
    fn per_item_mean_divides() {
        let per = mean_nanos_per_item(1000, || {
            std::hint::black_box((0..1000u64).map(|i| i * i).sum::<u64>());
        });
        assert!(per > 0.0);
    }
}
