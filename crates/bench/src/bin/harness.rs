//! Experiment harness: regenerates every reproduced paper artifact as a
//! printed table.
//!
//! ```sh
//! cargo run --release -p sse-bench --bin harness            # all, quick
//! cargo run --release -p sse-bench --bin harness -- --full  # all, full sweeps
//! cargo run --release -p sse-bench --bin harness -- e1 e4   # selected
//! ```

use sse_bench::experiments;
use sse_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    println!("SSE reproduction harness — Sedghi et al., SDM@VLDB 2010");
    println!(
        "scale: {:?}  (pass --full for the EXPERIMENTS.md sweeps)\n",
        scale
    );

    let tables = if ids.is_empty() {
        experiments::run_all(scale)
    } else {
        ids.iter()
            .map(|id| {
                experiments::by_id(id)
                    .unwrap_or_else(|| panic!("unknown experiment id: {id} (use e1..e8, t1)"))(
                    scale,
                )
            })
            .collect()
    };

    for t in tables {
        println!("{}", t.render());
        println!();
    }
}
