//! One module per reproduced paper artifact. See DESIGN.md §3 for the
//! experiment ↔ artifact map.

mod e1;
mod e2;
mod e3;
mod e4;
mod e5;
mod e6;
mod e7;
mod e8;
mod t1;

pub use e1::e1_search_scaling;
pub use e2::{e2_chain_walk, fresh_client, one_cycle};
pub use e3::e3_comm_overhead;
pub use e4::e4_update_cost;
pub use e5::e5_search_protocol;
pub use e6::e6_exhaustion;
pub use e7::e7_leakage;
pub use e8::e8_simulator;
pub use t1::t1_summary;

use crate::table::Table;
use crate::Scale;

/// Run every experiment at the given scale.
#[must_use]
pub fn run_all(scale: Scale) -> Vec<Table> {
    vec![
        e1_search_scaling(scale),
        e2_chain_walk(scale),
        e3_comm_overhead(scale),
        e4_update_cost(scale),
        e5_search_protocol(scale),
        e6_exhaustion(scale),
        e7_leakage(scale),
        e8_simulator(scale),
        t1_summary(scale),
    ]
}

/// Look up an experiment runner by id (`e1`..`e8`, `t1`).
#[must_use]
pub fn by_id(id: &str) -> Option<fn(Scale) -> Table> {
    Some(match id.to_ascii_lowercase().as_str() {
        "e1" => e1_search_scaling,
        "e2" => e2_chain_walk,
        "e3" => e3_comm_overhead,
        "e4" => e4_update_cost,
        "e5" => e5_search_protocol,
        "e6" => e6_exhaustion,
        "e7" => e7_leakage,
        "e8" => e8_simulator,
        "t1" => t1_summary,
        _ => return None,
    })
}
