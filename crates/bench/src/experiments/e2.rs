//! E2 — Scheme 2 search cost vs. update/search interleaving.
//!
//! Reproduces Table 1's `O(log(u) + l/2x)` row: the forward chain walk a
//! search pays grows with the number of counter advances since that
//! keyword's generations were written. We sweep `x` (updates between two
//! consecutive searches) and report measured walk steps and latency.

use crate::table::{fmt_nanos, Table};
use crate::Scale;
use sse_core::scheme2::{CtrPolicy, InMemoryScheme2Client, Scheme2Config};
use sse_core::types::{Document, Keyword, MasterKey};
use std::time::Instant;

/// Run E2.
#[must_use]
pub fn e2_chain_walk(scale: Scale) -> Table {
    let xs: &[u64] = match scale {
        Scale::Quick => &[1, 4, 16],
        Scale::Full => &[1, 2, 4, 8, 16, 32, 64],
    };
    let searches_per_config = match scale {
        Scale::Quick => 8u64,
        Scale::Full => 16,
    };
    let chain_length = 8192u64;

    let mut table = Table::new(
        "E2",
        "Scheme 2 search cost vs updates-between-searches x",
        "Table 1 row 'Searching computation' (Scheme 2): O(log u + l/2x)",
        &[
            "x",
            "avg walk steps/search",
            "avg search latency",
            "gens decrypted/search",
        ],
    );

    for &x in xs {
        // Base policy (ctr advances every update) so the walk length is
        // exactly the counter gap the paper's formula models.
        let mut client = InMemoryScheme2Client::new_in_memory(
            MasterKey::from_seed(0xE2),
            Scheme2Config::base(chain_length).with_server_cache(true),
        );
        let hot = Keyword::new("hot-keyword");
        // Seed one generation so the first search has work.
        client
            .store(&[Document::new(0, vec![0u8; 16], ["hot-keyword"])])
            .unwrap();
        let mut next_id = 1u64;
        let mut total_latency = 0.0f64;
        for _ in 0..searches_per_config {
            // x updates touching the hot keyword (one doc each).
            for _ in 0..x {
                client
                    .store(&[Document::new(next_id, vec![0u8; 16], ["hot-keyword"])])
                    .unwrap();
                next_id += 1;
            }
            let start = Instant::now();
            std::hint::black_box(client.search(&hot).unwrap());
            total_latency += start.elapsed().as_nanos() as f64;
        }
        let stats = client.server_mut().stats();
        let walks = stats.chain_steps as f64 / stats.searches as f64;
        let gens = stats.generations_decrypted as f64 / stats.searches as f64;
        table.row(vec![
            x.to_string(),
            format!("{walks:.1}"),
            fmt_nanos(total_latency / searches_per_config as f64),
            format!("{gens:.1}"),
        ]);
    }
    table.note(
        "walk steps track the counter gap (≈ x per search minus the step \
landing exactly on the newest generation); the paper's l/2x form is the \
amortized bound when only a 1/x fraction of updates touch the searched \
keyword — the measured shape (linear in the gap) is the same.",
    );
    table.note(format!(
        "chain length l = {chain_length}; Optimization 1 caches already-decrypted \
generations, so 'gens decrypted/search' stays ≈ x instead of growing with history."
    ));
    table
}

/// Helper reused by the Criterion bench: one (x updates + 1 search) cycle.
pub fn one_cycle(client: &mut InMemoryScheme2Client, next_id: &mut u64, x: u64, keyword: &Keyword) {
    for _ in 0..x {
        client
            .store(&[Document::new(*next_id, vec![0u8; 16], [keyword.as_str()])])
            .unwrap();
        *next_id += 1;
    }
    std::hint::black_box(client.search(keyword).unwrap());
}

/// Helper: a fresh Scheme 2 client for cycle benchmarks.
#[must_use]
pub fn fresh_client(policy: CtrPolicy, cache: bool) -> InMemoryScheme2Client {
    InMemoryScheme2Client::new_in_memory(
        MasterKey::from_seed(0xE2),
        Scheme2Config::base(1 << 16)
            .with_ctr_policy(policy)
            .with_server_cache(cache),
    )
}
