//! T1 — regenerate the paper's Table 1 from measurements.
//!
//! The paper's only result table summarizes the two schemes' features.
//! This experiment re-derives every cell from live runs instead of
//! restating the claims.

use crate::corpus::{docs_for, exact_corpus, probe_keyword};
use crate::table::Table;
use crate::Scale;
use sse_core::scheme1::{InMemoryScheme1Client, Scheme1Config};
use sse_core::scheme2::{InMemoryScheme2Client, Scheme2Config};
use sse_core::types::{Document, MasterKey};

/// Run T1.
#[must_use]
pub fn t1_summary(scale: Scale) -> Table {
    let (u_small, u_large) = match scale {
        Scale::Quick => (512usize, 4096usize),
        Scale::Full => (1024, 16384),
    };
    let key = MasterKey::from_seed(0x71);

    // Measure rounds + tree growth for both schemes at two sizes.
    let measure_s1 = |u: usize| {
        let docs = exact_corpus(u, docs_for(u), 32);
        let mut c = InMemoryScheme1Client::new_in_memory(
            key.clone(),
            Scheme1Config::fast_profile(docs.len() as u64 + 4),
        );
        c.store(&docs).unwrap();
        let m = c.meter();
        m.reset();
        c.search(&probe_keyword(1, u)).unwrap();
        let search_rounds = m.snapshot().rounds;
        m.reset();
        c.store(&[Document::new(docs.len() as u64, vec![], ["kw-000001"])])
            .unwrap();
        // Subtract the PutDocs round: Table 1 talks about MetadataStorage.
        let update_rounds = m.snapshot().rounds - 1;
        let height = c.server_mut().tree_height();
        (search_rounds, update_rounds, height)
    };
    let measure_s2 = |u: usize| {
        let docs = exact_corpus(u, docs_for(u), 32);
        let mut c = InMemoryScheme2Client::new_in_memory(
            key.clone(),
            Scheme2Config::standard().with_chain_length(1 << 16),
        );
        c.store(&docs).unwrap();
        let m = c.meter();
        m.reset();
        c.search(&probe_keyword(1, u)).unwrap();
        let search_rounds = m.snapshot().rounds;
        m.reset();
        c.store(&[Document::new(docs.len() as u64, vec![], ["kw-000001"])])
            .unwrap();
        let update_rounds = m.snapshot().rounds - 1;
        let height = c.server_mut().tree_height();
        (search_rounds, update_rounds, height)
    };

    let (s1_search_r, s1_update_r, s1_h_small) = measure_s1(u_small);
    let (_, _, s1_h_large) = measure_s1(u_large);
    let (s2_search_r, s2_update_r, s2_h_small) = measure_s2(u_small);
    let (_, _, s2_h_large) = measure_s2(u_large);

    let mut table = Table::new(
        "T1",
        "Table 1 regenerated from measurements",
        "Table 1 (the paper's feature summary)",
        &[
            "feature",
            "scheme 1 (paper: measured)",
            "scheme 2 (paper: measured)",
        ],
    );
    table.row(vec![
        "communication overhead (search)".into(),
        format!("two rounds: {s1_search_r} rounds"),
        format!("one round: {s2_search_r} round"),
    ]);
    table.row(vec![
        "communication overhead (metadata update)".into(),
        format!("two rounds: {s1_update_r} rounds"),
        format!("one round: {s2_update_r} round"),
    ]);
    table.row(vec![
        "searching computation".into(),
        format!(
            "O(log u): tree height {s1_h_small} at u={u_small}, {s1_h_large} at u={u_large} ({}x more keywords, +{} levels)",
            u_large / u_small,
            s1_h_large - s1_h_small
        ),
        format!(
            "O(log u + l/2x): height {s2_h_small}->{s2_h_large}, plus the E2 chain walk"
        ),
    ]);
    table.row(vec![
        "condition on update".into(),
        "occurs rarely (Θ(capacity) bits/keyword — see E4)".into(),
        "interleaved with search (chain budget — see E2/E6)".into(),
    ]);
    table.note(
        "every cell above is produced by running the schemes, not by quoting \
the paper; E1-E6 hold the per-cell detail.",
    );
    table
}
