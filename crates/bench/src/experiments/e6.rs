//! E6 — chain exhaustion and Optimization 2.
//!
//! Reproduces §5.6's limitation discussion: the chain supports at most `l`
//! counter advances, after which the database must be re-initialized.
//! Optimization 2 (advance only when a search happened since the last
//! update) stretches lifetime by the update:search ratio.

use crate::table::Table;
use crate::Scale;
use sse_core::scheme2::{CtrPolicy, InMemoryScheme2Client, Scheme2Config};
use sse_core::types::{Document, Keyword, MasterKey};
use sse_core::SseError;

/// Updates survived before exhaustion under a policy, searching once every
/// `search_every` updates (0 = never search).
fn updates_before_exhaustion(l: u64, policy: CtrPolicy, search_every: u64) -> u64 {
    let mut client = InMemoryScheme2Client::new_in_memory(
        MasterKey::from_seed(0xE6),
        Scheme2Config::base(l).with_ctr_policy(policy),
    );
    let kw = Keyword::new("k");
    let mut updates = 0u64;
    loop {
        match client.store(&[Document::new(updates, vec![], ["k"])]) {
            Ok(()) => updates += 1,
            Err(SseError::ChainExhausted) => return updates,
            Err(e) => panic!("unexpected error: {e}"),
        }
        if updates > 64 * l {
            return updates; // effectively unbounded for this workload
        }
        if search_every > 0 && updates.is_multiple_of(search_every) {
            client.search(&kw).unwrap();
        }
    }
}

/// Run E6.
#[must_use]
pub fn e6_exhaustion(scale: Scale) -> Table {
    let lengths: &[u64] = match scale {
        Scale::Quick => &[16, 64],
        Scale::Full => &[16, 64, 256],
    };
    let mut table = Table::new(
        "E6",
        "updates survived before chain exhaustion",
        "§5.6 Optimization 2 and the chain-length limitation",
        &[
            "chain length l",
            "base policy",
            "opt2, search every 4",
            "opt2, search every 16",
            "opt2, never search",
        ],
    );
    for &l in lengths {
        let base = updates_before_exhaustion(l, CtrPolicy::Always, 4);
        let opt2_4 = updates_before_exhaustion(l, CtrPolicy::OnSearchOnly, 4);
        let opt2_16 = updates_before_exhaustion(l, CtrPolicy::OnSearchOnly, 16);
        let opt2_never = updates_before_exhaustion(l, CtrPolicy::OnSearchOnly, 0);
        table.row(vec![
            l.to_string(),
            base.to_string(),
            opt2_4.to_string(),
            opt2_16.to_string(),
            if opt2_never > 64 * l {
                format!(">{}", 64 * l)
            } else {
                opt2_never.to_string()
            },
        ]);
    }
    table.note(
        "base policy: exactly l updates. Opt. 2: the counter only advances \
after a search, so lifetime ≈ l × (updates per search); with no searches the \
chain never advances past the first key.",
    );

    // Re-initialization cost: one full epoch rebuild.
    let l = 8u64;
    let mut client =
        InMemoryScheme2Client::new_in_memory(MasterKey::from_seed(0xE6), Scheme2Config::base(l));
    let mut docs = Vec::new();
    for i in 0..l {
        let d = Document::new(i, vec![0u8; 32], ["k"]);
        client.store(std::slice::from_ref(&d)).unwrap();
        docs.push(d);
    }
    assert!(matches!(
        client.store(&[Document::new(99, vec![], ["k"])]),
        Err(SseError::ChainExhausted)
    ));
    let meter = client.meter();
    meter.reset();
    client.reinitialize(&docs).unwrap();
    let rebuild = meter.snapshot();
    assert_eq!(client.search(&Keyword::new("k")).unwrap().len(), docs.len());
    table.note(format!(
        "re-initialization after exhaustion (l={l}, {} docs): {} rounds, {} bytes up — \
the whole metadata is re-sent, which is why Opt. 2 matters.",
        docs.len(),
        rebuild.rounds,
        rebuild.bytes_up
    ));
    table
}
