//! E1 — search computation vs. number of unique keywords.
//!
//! Reproduces Table 1's "Searching computation: O(log u)" claim for
//! Scheme 1 (and Scheme 2 at x = 0 pending updates), against the `O(n)`
//! linear-scan baselines the paper's §3 critiques.

use crate::corpus::{docs_for, exact_corpus, probe_keyword};
use crate::table::{fmt_nanos, Table};
use crate::timing::median_nanos;
use crate::Scale;
use sse_baselines::goh::{GohClient, GohConfig};
use sse_baselines::swp::SwpClient;
use sse_core::scheme::SseClientApi;
use sse_core::scheme1::{InMemoryScheme1Client, Scheme1Config};
use sse_core::scheme2::{InMemoryScheme2Client, Scheme2Config};
use sse_core::types::MasterKey;
use sse_net::meter::Meter;

/// Probes per configuration (median over these).
const PROBES: usize = 9;

fn mean_search_nanos<C: SseClientApi>(client: &mut C, u: usize) -> f64 {
    let mut i = 0usize;
    median_nanos(PROBES, || {
        let kw = probe_keyword(i * 37 + 1, u);
        i += 1;
        std::hint::black_box(client.search(&kw).expect("search"));
    })
}

/// Run E1.
#[must_use]
pub fn e1_search_scaling(scale: Scale) -> Table {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[256, 1024, 4096],
        Scale::Full => &[256, 1024, 4096, 16384, 65536],
    };
    let mut table = Table::new(
        "E1",
        "search latency vs unique keywords u (docs n = u/2)",
        "Table 1 row 'Searching computation' (Scheme 1) + §3 O(n) critique",
        &[
            "u",
            "scheme1",
            "s1 tree-nodes",
            "scheme2",
            "swp (O(n))",
            "goh (O(n))",
        ],
    );

    let key = MasterKey::from_seed(0xE1);
    let mut s1_times = Vec::new();
    let mut swp_times = Vec::new();
    for &u in sizes {
        let docs = exact_corpus(u, docs_for(u), 32);

        let mut s1 = InMemoryScheme1Client::new_in_memory(
            key.clone(),
            Scheme1Config::fast_profile(docs.len() as u64),
        );
        s1.store(&docs).expect("store");
        s1.server_mut().reset_stats();
        let t_s1 = mean_search_nanos(&mut s1, u);
        let stats = s1.server_mut().stats();
        let nodes = stats.tree_nodes_visited as f64 / stats.tree_lookups.max(1) as f64;

        let mut s2 = InMemoryScheme2Client::new_in_memory(
            key.clone(),
            Scheme2Config::standard().with_chain_length(8),
        );
        s2.store(&docs).expect("store");
        let t_s2 = mean_search_nanos(&mut s2, u);

        let mut swp = SwpClient::new(&key, Meter::new(), 1);
        swp.add_documents(&docs).expect("store");
        let t_swp = mean_search_nanos(&mut swp, u);

        let mut goh = GohClient::new(
            &key,
            GohConfig {
                keywords_per_doc: 4,
                false_positive_rate: 0.01,
            },
            Meter::new(),
            2,
        );
        goh.add_documents(&docs).expect("store");
        let t_goh = mean_search_nanos(&mut goh, u);

        s1_times.push(t_s1);
        swp_times.push(t_swp);
        table.row(vec![
            u.to_string(),
            fmt_nanos(t_s1),
            format!("{nodes:.1}"),
            fmt_nanos(t_s2),
            fmt_nanos(t_swp),
            fmt_nanos(t_goh),
        ]);
    }

    // Shape check: per size-quadrupling, a log structure grows by a small
    // additive step while a linear scan grows ~4x.
    if s1_times.len() >= 2 {
        let s1_ratio = s1_times.last().unwrap() / s1_times.first().unwrap();
        let swp_ratio = swp_times.last().unwrap() / swp_times.first().unwrap();
        let span = sizes.last().unwrap() / sizes.first().unwrap();
        table.note(format!(
            "u spans {span}x: scheme1 grew {s1_ratio:.1}x (log-ish), SWP grew {swp_ratio:.0}x (linear)."
        ));
    }
    table.note(
        "scheme1 search includes one client-side ElGamal decryption (fast profile, \
256-bit group); the tree descent itself is the 's1 tree-nodes' column.",
    );
    table
}
