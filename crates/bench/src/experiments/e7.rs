//! E7 — update leakage and the §5.7 mitigations.
//!
//! Quantifies what the server learns from update messages and how batching
//! and fake-update padding shrink it.

use crate::table::Table;
use crate::Scale;
use sse_core::leakage::{analyze_updates, batch_documents};
use sse_phr::workload::{generate_corpus, CorpusConfig};

/// Run E7.
#[must_use]
pub fn e7_leakage(scale: Scale) -> Table {
    let docs = match scale {
        Scale::Quick => 120usize,
        Scale::Full => 600,
    };
    let corpus = generate_corpus(&CorpusConfig {
        docs,
        vocab_size: 800,
        keywords_per_doc: (1, 9),
        payload_bytes: 16,
        seed: 0xE7,
        ..CorpusConfig::default()
    });

    let mut table = Table::new(
        "E7",
        "per-document keyword-count inference from update observations",
        "§5.7 'Security of Updates': batched updates and fake updates",
        &[
            "batch size",
            "padding",
            "per-doc estimate MAE",
            "observation entropy (bits)",
        ],
    );

    let batch_sizes: &[usize] = match scale {
        Scale::Quick => &[1, 8, 32, docs],
        Scale::Full => &[1, 4, 8, 16, 32, 64, docs],
    };
    for &b in batch_sizes {
        let report = analyze_updates(&batch_documents(&corpus, b), None);
        table.row(vec![
            b.to_string(),
            "none".to_string(),
            format!("{:.3}", report.per_doc_mae),
            format!("{:.3}", report.observation_entropy_bits),
        ]);
    }
    for pad in [12usize, 16] {
        let report = analyze_updates(&batch_documents(&corpus, 1), Some(pad));
        table.row(vec![
            "1".to_string(),
            format!("pad-to-{pad}"),
            format!("{:.3}", report.per_doc_mae),
            format!("{:.3}", report.observation_entropy_bits.max(0.0)),
        ]);
    }
    table.note(
        "MAE rises with batch size (per-document counts blur into the batch \
aggregate) — the paper's 'leakage goes asymptotically towards zero'. Padding \
drives observation entropy to 0: every update message looks identical.",
    );
    table
}
