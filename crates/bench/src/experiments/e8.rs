//! E8 — the Theorem-1 simulator vs. real views, empirically.
//!
//! Builds populations of real, simulated and deliberately-broken Scheme 1
//! views and reports each statistic's distinguishing advantage next to the
//! sampling-noise floor.

use crate::table::Table;
use crate::Scale;
use sse_core::scheme1::Scheme1Config;
use sse_core::security::{
    estimate_advantage, extract_scheme1_view, simulate_view, History, SimulatorParams, Statistic,
    Trace,
};
use sse_core::types::{Keyword, MasterKey};
use sse_phr::workload::{generate_corpus, CorpusConfig};

/// Run E8.
#[must_use]
pub fn e8_simulator(scale: Scale) -> Table {
    let trials = match scale {
        Scale::Quick => 40u64,
        Scale::Full => 150,
    };
    let config = Scheme1Config::fast_profile(64);
    let docs = generate_corpus(&CorpusConfig {
        docs: 24,
        vocab_size: 64,
        keywords_per_doc: (2, 4),
        payload_bytes: 48,
        seed: 0xE8,
        ..CorpusConfig::default()
    });
    let queries = vec![
        Keyword::new("kw-00000"),
        Keyword::new("kw-00001"),
        Keyword::new("kw-00000"),
        Keyword::new("kw-00003"),
    ];
    let history = History::new(docs, queries);
    let trace = Trace::from_history(&history);
    let params = SimulatorParams::from_config(&config);

    let real: Vec<Vec<u8>> = (0..trials)
        .map(|i| {
            let key = MasterKey::from_seed(10_000 + i);
            extract_scheme1_view(&history, &key, config.clone(), i, false).index_bytes_only()
        })
        .collect();
    let broken: Vec<Vec<u8>> = (0..trials)
        .map(|i| {
            let key = MasterKey::from_seed(10_000 + i);
            extract_scheme1_view(&history, &key, config.clone(), i, true).index_bytes_only()
        })
        .collect();
    let simulated: Vec<Vec<u8>> = (0..trials)
        .map(|i| simulate_view(&trace, &params, 20_000 + i).index_bytes_only())
        .collect();
    let simulated2: Vec<Vec<u8>> = (0..trials)
        .map(|i| simulate_view(&trace, &params, 30_000 + i).index_bytes_only())
        .collect();

    let mut table = Table::new(
        "E8",
        format!("distinguishing advantage over {trials} view samples"),
        "Theorem 1 (adaptive semantic security) + §5.3 simulator",
        &[
            "statistic",
            "noise floor (sim vs sim)",
            "adv(real, sim)",
            "adv(broken, sim)",
        ],
    );
    for &stat in Statistic::all() {
        let floor = estimate_advantage(stat, &simulated, &simulated2).advantage;
        let honest = estimate_advantage(stat, &real, &simulated).advantage;
        let cracked = estimate_advantage(stat, &broken, &simulated).advantage;
        table.row(vec![
            stat.name().to_string(),
            format!("{floor:.3}"),
            format!("{honest:.3}"),
            format!("{cracked:.3}"),
        ]);
    }
    table.note(
        "Theorem 1 holds empirically when column 3 ≈ column 2 (sampling noise). \
The 'broken' arm stores unmasked posting arrays — a correct harness must \
drive at least one statistic's advantage toward 1 there (bit-density does).",
    );
    table
}
