//! E5 — search-protocol transcript validation + Optimization 1.
//!
//! Reproduces Figures 2 and 4 (the search message exchanges) by asserting
//! the transcript structure, and quantifies §5.6 Optimization 1: with the
//! server-side plaintext cache, a repeat search decrypts only generations
//! added since the previous search.

use crate::table::{fmt_nanos, Table};
use crate::timing::median_nanos;
use crate::Scale;
use sse_core::scheme1::{InMemoryScheme1Client, Scheme1Config};
use sse_core::scheme2::{InMemoryScheme2Client, Scheme2Config};
use sse_core::types::{Document, Keyword, MasterKey};

/// Run E5.
#[must_use]
pub fn e5_search_protocol(scale: Scale) -> Table {
    let history_generations = match scale {
        Scale::Quick => 32u64,
        Scale::Full => 128,
    };

    let mut table = Table::new(
        "E5",
        "search transcripts (Figs. 2/4) and the Optimization-1 cache",
        "Fig. 2, Fig. 4, §5.6 Optimization 1",
        &[
            "configuration",
            "repeat-search latency",
            "gens decrypted on repeat",
        ],
    );

    // --- Fig. 2 transcript shape (Scheme 1) --------------------------------
    let mut s1 = InMemoryScheme1Client::new_in_memory(
        MasterKey::from_seed(0xE5),
        Scheme1Config::fast_profile(64),
    );
    s1.store(&[Document::new(1, vec![0u8; 16], ["w"])]).unwrap();
    let m1 = s1.meter();
    m1.reset();
    s1.search(&Keyword::new("w")).unwrap();
    let t1 = m1.snapshot();
    assert_eq!(t1.rounds, 2, "Fig. 2: T_w -> F(r), then r -> documents");
    table.note(format!(
        "Fig. 2 validated: Scheme 1 search ran exactly {} rounds \
(round 1 up = tag, round 2 up = tag+seed; down = F(r), then documents).",
        t1.rounds
    ));

    // --- Fig. 4 transcript shape (Scheme 2) --------------------------------
    let mut s2 = InMemoryScheme2Client::new_in_memory(
        MasterKey::from_seed(0xE5),
        Scheme2Config::standard().with_chain_length(4096),
    );
    s2.store(&[Document::new(1, vec![0u8; 16], ["w"])]).unwrap();
    let m2 = s2.meter();
    m2.reset();
    s2.search(&Keyword::new("w")).unwrap();
    let t2 = m2.snapshot();
    assert_eq!(t2.rounds, 1, "Fig. 4: (t_w, t'_w) -> documents");
    table.note(format!(
        "Fig. 4 validated: Scheme 2 search ran exactly {} round \
(up = 65-byte trapdoor, down = matching documents).",
        t2.rounds
    ));

    // --- Optimization 1 measurement ----------------------------------------
    for cache in [true, false] {
        let mut client = InMemoryScheme2Client::new_in_memory(
            MasterKey::from_seed(0xE5),
            Scheme2Config::base(1 << 16).with_server_cache(cache),
        );
        let kw = Keyword::new("hot");
        // Build a deep history: many generations for one keyword.
        for i in 0..history_generations {
            client
                .store(&[Document::new(i, vec![0u8; 16], ["hot"])])
                .unwrap();
        }
        // First search decrypts everything.
        client.search(&kw).unwrap();
        let after_first = client.server_mut().stats().generations_decrypted;

        // Repeat searches: with Opt. 1 they should be nearly free.
        let lat = median_nanos(7, || {
            std::hint::black_box(client.search(&kw).unwrap());
        });
        let stats = client.server_mut().stats();
        let repeats = stats.searches - 1;
        let per_repeat = (stats.generations_decrypted - after_first) as f64 / repeats.max(1) as f64;
        table.row(vec![
            format!(
                "opt1 {} ({} gens history)",
                if cache { "ON " } else { "OFF" },
                history_generations
            ),
            fmt_nanos(lat),
            format!("{per_repeat:.1}"),
        ]);
    }
    table.note(
        "with the cache a repeat search decrypts 0 generations and only \
re-reads cached ids; without it every search re-decrypts the full history — \
exactly the §5.6 'decrypt only the list ... added since the last search' claim.",
    );
    table
}
