//! E3 — communication overhead: rounds, bytes and simulated latency.
//!
//! Reproduces Table 1's "Communication overhead: two rounds / one round"
//! row, and prices the difference under the §6 link profiles (broadband
//! traveler vs. mobile).

use crate::corpus::{docs_for, exact_corpus, probe_keyword};
use crate::table::{fmt_bytes, Table};
use crate::Scale;
use sse_core::scheme1::{InMemoryScheme1Client, Scheme1Config};
use sse_core::scheme2::{InMemoryScheme2Client, Scheme2Config};
use sse_core::types::{Document, MasterKey};
use sse_net::latency::LinkProfile;
use sse_net::meter::MeterSnapshot;

struct OpCost {
    rounds: u64,
    up: u64,
    down: u64,
}

impl From<MeterSnapshot> for OpCost {
    fn from(s: MeterSnapshot) -> Self {
        OpCost {
            rounds: s.rounds,
            up: s.bytes_up,
            down: s.bytes_down,
        }
    }
}

/// Run E3.
#[must_use]
pub fn e3_comm_overhead(scale: Scale) -> Table {
    let u = match scale {
        Scale::Quick => 1024usize,
        Scale::Full => 4096,
    };
    let docs = exact_corpus(u, docs_for(u), 64);
    let key = MasterKey::from_seed(0xE3);

    // Scheme 1.
    let mut s1 = InMemoryScheme1Client::new_in_memory(
        key.clone(),
        Scheme1Config::fast_profile(docs.len() as u64 + 16),
    );
    let m1 = s1.meter();
    s1.store(&docs).unwrap();
    m1.reset();
    s1.search(&probe_keyword(3, u)).unwrap();
    let s1_search: OpCost = m1.snapshot().into();
    m1.reset();
    s1.store(&[Document::new(
        docs.len() as u64,
        vec![0u8; 64],
        ["kw-000003"],
    )])
    .unwrap();
    let s1_update: OpCost = m1.snapshot().into();

    // Scheme 2.
    let mut s2 = InMemoryScheme2Client::new_in_memory(
        key,
        Scheme2Config::standard().with_chain_length(4096),
    );
    let m2 = s2.meter();
    s2.store(&docs).unwrap();
    m2.reset();
    s2.search(&probe_keyword(3, u)).unwrap();
    let s2_search: OpCost = m2.snapshot().into();
    m2.reset();
    s2.store(&[Document::new(
        docs.len() as u64,
        vec![0u8; 64],
        ["kw-000003"],
    )])
    .unwrap();
    let s2_update: OpCost = m2.snapshot().into();

    let mut table = Table::new(
        "E3",
        format!("per-operation communication at u = {u}"),
        "Table 1 row 'Communication overhead' + Figs. 1-4 message counts",
        &[
            "operation",
            "rounds",
            "bytes up",
            "bytes down",
            "lan",
            "broadband",
            "mobile",
        ],
    );

    let mut add = |name: &str, cost: &OpCost| {
        let snap = MeterSnapshot {
            rounds: cost.rounds,
            bytes_up: cost.up,
            bytes_down: cost.down,
        };
        table.row(vec![
            name.to_string(),
            cost.rounds.to_string(),
            fmt_bytes(cost.up),
            fmt_bytes(cost.down),
            format!(
                "{:.1} ms",
                LinkProfile::lan().simulate(&snap).as_secs_f64() * 1e3
            ),
            format!(
                "{:.1} ms",
                LinkProfile::broadband().simulate(&snap).as_secs_f64() * 1e3
            ),
            format!(
                "{:.1} ms",
                LinkProfile::mobile().simulate(&snap).as_secs_f64() * 1e3
            ),
        ]);
    };
    add("scheme1 search", &s1_search);
    add("scheme2 search", &s2_search);
    add("scheme1 update (1 doc)", &s1_update);
    add("scheme2 update (1 doc)", &s2_update);

    table.note(
        "Table 1 claims search = two rounds (Scheme 1) vs one round (Scheme 2); \
updates additionally carry one PutDocs round for the encrypted blob in both \
schemes (2+1 vs 1+1 rows above).",
    );
    table.note(
        "the mobile column shows why §6 assigns the traveler (search-heavy, \
broadband) to Scheme 1 and the GP (update-heavy, interleaved) to Scheme 2.",
    );
    table
}
