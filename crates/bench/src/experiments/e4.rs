//! E4 — update (MetadataStorage) cost scaling.
//!
//! Reproduces the contrast between the Fig. 1 and Fig. 3 update protocols:
//! Scheme 1 ships a full `Θ(capacity)`-bit masked array per touched
//! keyword; Scheme 2 ships `Θ(batch)` bytes; Curtmola SSE-1 (the prior
//! work the paper attacks) re-ships the whole index.

use crate::corpus::exact_corpus;
use crate::table::{fmt_bytes, Table};
use crate::Scale;
use sse_baselines::curtmola::CurtmolaClient;
use sse_core::scheme::SseClientApi;
use sse_core::scheme1::{InMemoryScheme1Client, Scheme1Config};
use sse_core::scheme2::{InMemoryScheme2Client, Scheme2Config};
use sse_core::types::{Document, MasterKey};
use sse_net::meter::Meter;

/// Run E4.
#[must_use]
pub fn e4_update_cost(scale: Scale) -> Table {
    let capacities: &[u64] = match scale {
        Scale::Quick => &[1024, 4096, 16384],
        Scale::Full => &[1024, 4096, 16384, 65536, 262144],
    };
    let base_docs = 256usize;

    let mut table = Table::new(
        "E4",
        "metadata bytes for a single-document update vs database capacity",
        "Fig. 1 vs Fig. 3 (MetadataStorage protocols); §5.4 bandwidth critique",
        &[
            "capacity (docs)",
            "scheme1 update bytes",
            "scheme2 update bytes",
            "curtmola rebuild bytes",
        ],
    );

    let key = MasterKey::from_seed(0xE4);
    let corpus = exact_corpus(512, base_docs, 32);
    for &cap in capacities {
        // Scheme 1 at this capacity.
        let mut s1 =
            InMemoryScheme1Client::new_in_memory(key.clone(), Scheme1Config::fast_profile(cap));
        s1.store(&corpus).unwrap();
        let m1 = s1.meter();
        m1.reset();
        s1.store(&[Document::new(
            base_docs as u64,
            vec![0u8; 32],
            ["kw-000001"],
        )])
        .unwrap();
        let s1_bytes = m1.snapshot().bytes_up;

        // Scheme 2: capacity-independent — measured once per row anyway to
        // show the flat line.
        let mut s2 = InMemoryScheme2Client::new_in_memory(
            key.clone(),
            Scheme2Config::standard().with_chain_length(4096),
        );
        s2.store(&corpus).unwrap();
        let m2 = s2.meter();
        m2.reset();
        s2.store(&[Document::new(
            base_docs as u64,
            vec![0u8; 32],
            ["kw-000001"],
        )])
        .unwrap();
        let s2_bytes = m2.snapshot().bytes_up;

        // Curtmola rebuild: grows with the stored database, not capacity.
        // Scale the stored corpus with capacity (up to a sane bound) to
        // show the rebuild blow-up.
        let stored = (cap as usize / 4).clamp(base_docs, 8192);
        let meter = Meter::new();
        let mut cm = CurtmolaClient::new(&key, meter.clone(), 1);
        cm.add_documents(&exact_corpus(512, stored, 32)).unwrap();
        meter.reset();
        cm.add_documents(&[Document::new(stored as u64, vec![0u8; 32], ["kw-000001"])])
            .unwrap();
        let cm_bytes = meter.snapshot().bytes_up;

        table.row(vec![
            cap.to_string(),
            fmt_bytes(s1_bytes),
            fmt_bytes(s2_bytes),
            format!("{} (n={stored})", fmt_bytes(cm_bytes)),
        ]);
    }

    table.note(
        "scheme1 bytes = blob + bit-array(capacity/8) + fresh F(r') — linear in \
capacity; scheme2 bytes are flat; Curtmola re-ships an index linear in the \
*stored* database per update.",
    );

    // Second half: Scheme 2 batch scaling at fixed capacity.
    let batches: &[usize] = match scale {
        Scale::Quick => &[1, 16, 64],
        Scale::Full => &[1, 4, 16, 64, 256],
    };
    let mut s2 = InMemoryScheme2Client::new_in_memory(
        key,
        Scheme2Config::standard().with_chain_length(65536),
    );
    s2.store(&corpus).unwrap();
    let m2 = s2.meter();
    let mut next_id = base_docs as u64;
    for &b in batches {
        let batch: Vec<Document> = (0..b as u64)
            .map(|i| {
                Document::new(
                    next_id + i,
                    vec![0u8; 32],
                    [format!("kw-{:06}", (next_id + i) % 512)],
                )
            })
            .collect();
        next_id += b as u64;
        m2.reset();
        s2.store(&batch).unwrap();
        // A search between batches keeps the ctr advancing (Opt. 2).
        let up = m2.snapshot().bytes_up;
        table.note(format!(
            "scheme2 batch of {b:>3} docs: {} up ({} per doc)",
            fmt_bytes(up),
            fmt_bytes(up / b as u64)
        ));
    }
    table
}
