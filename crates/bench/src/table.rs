//! Result tables: the unit of experiment output.

/// A rendered experiment result.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. "E1".
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// The paper artifact this reproduces.
    pub paper_artifact: &'static str,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes appended after the table (fits, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    #[must_use]
    pub fn new(
        id: &'static str,
        title: impl Into<String>,
        paper_artifact: &'static str,
        headers: &[&str],
    ) -> Self {
        Table {
            id,
            title: title.into(),
            paper_artifact,
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render as a fixed-width text table (also valid Markdown).
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "### {} — {}  (reproduces: {})\n\n",
            self.id, self.title, self.paper_artifact
        ));
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<width$} |", c, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&render_row(row));
        }
        for n in &self.notes {
            out.push_str(&format!("\n> {n}\n"));
        }
        out
    }
}

/// Format a nanosecond value with a sensible unit.
#[must_use]
pub fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Format a byte count.
#[must_use]
pub fn fmt_bytes(b: u64) -> String {
    if b < 1024 {
        format!("{b} B")
    } else if b < 1024 * 1024 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{:.2} MiB", b as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_aligned_and_complete() {
        let mut t = Table::new("EX", "demo", "Table 1", &["a", "column-b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        t.note("a note");
        let r = t.render();
        assert!(r.contains("### EX — demo"));
        assert!(r.contains("| a   | column-b |"));
        assert!(r.contains("| 333 | 4        |"));
        assert!(r.contains("> a note"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_nanos(500.0), "500 ns");
        assert_eq!(fmt_nanos(1_500.0), "1.5 µs");
        assert_eq!(fmt_nanos(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_bytes(100), "100 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
    }
}
