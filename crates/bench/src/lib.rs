//! Shared experiment machinery for the reproduction benchmarks.
//!
//! Every paper artifact (Table 1 and the protocol Figures 1–4) maps to one
//! experiment in [`experiments`]; the functions there return structured
//! [`table::Table`]s consumed both by the `harness` binary (which prints
//! EXPERIMENTS.md-style output) and by the Criterion benches (which time
//! the same code paths).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod experiments;
pub mod table;
pub mod timing;

/// How much work an experiment run should do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-quick settings (CI, `cargo bench` smoke runs).
    Quick,
    /// The full parameter sweeps reported in EXPERIMENTS.md.
    Full,
}
