//! E2 bench: Scheme 2 (x updates + 1 search) cycle cost as x grows.
//! Reproduces Table 1's O(log u + l/2x) search-computation row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sse_bench::experiments::{self};
use sse_core::scheme2::CtrPolicy;
use sse_core::types::Keyword;

fn bench_chain_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_chain_walk");
    group.sample_size(20);

    for x in [1u64, 8, 32] {
        group.bench_with_input(BenchmarkId::new("cycle_x", x), &x, |b, &x| {
            let mut client = experiments::fresh_client(CtrPolicy::Always, true);
            let kw = Keyword::new("hot-keyword");
            let mut next_id = 0u64;
            b.iter(|| {
                experiments::one_cycle(&mut client, &mut next_id, x, &kw);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain_walk);
criterion_main!(benches);
