//! E7 bench: leakage-analysis throughput and the wire-visible cost of the
//! §5.7 mitigations (fake updates, padded batches) on a live Scheme 1 run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sse_core::leakage::{analyze_updates, batch_documents};
use sse_core::scheme1::{InMemoryScheme1Client, Scheme1Config};
use sse_core::types::{Keyword, MasterKey};
use sse_phr::workload::{generate_corpus, CorpusConfig};

fn bench_leakage(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_leakage");
    group.sample_size(20);

    let corpus = generate_corpus(&CorpusConfig {
        docs: 240,
        vocab_size: 800,
        keywords_per_doc: (1, 9),
        payload_bytes: 16,
        seed: 0xE7,
        ..CorpusConfig::default()
    });

    for batch in [1usize, 16, 64] {
        let batches = batch_documents(&corpus, batch);
        group.bench_with_input(BenchmarkId::new("analyze_batch", batch), &batch, |b, _| {
            b.iter(|| std::hint::black_box(analyze_updates(&batches, Some(12))));
        });
    }

    // The runtime price of a fake update (the mitigation itself).
    let mut client = InMemoryScheme1Client::new_in_memory(
        MasterKey::from_seed(0xE7),
        Scheme1Config::fast_profile(512),
    );
    client.store(&corpus[..100]).unwrap();
    let keywords: Vec<Keyword> = (0..8).map(|i| Keyword::new(format!("kw-{i:05}"))).collect();
    group.bench_function("scheme1_fake_update_8kw", |b| {
        b.iter(|| client.fake_update(&keywords).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_leakage);
criterion_main!(benches);
