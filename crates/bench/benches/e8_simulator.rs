//! E8 bench: cost of the security harness — view extraction, simulation
//! and the statistical distinguishing game of Theorem 1.

use criterion::{criterion_group, criterion_main, Criterion};
use sse_core::scheme1::Scheme1Config;
use sse_core::security::{
    estimate_advantage, extract_scheme1_view, simulate_view, History, SimulatorParams, Statistic,
    Trace,
};
use sse_core::types::{Keyword, MasterKey};
use sse_phr::workload::{generate_corpus, CorpusConfig};

fn bench_simulator(c: &mut Criterion) {
    let config = Scheme1Config::fast_profile(64);
    let docs = generate_corpus(&CorpusConfig {
        docs: 24,
        vocab_size: 64,
        keywords_per_doc: (2, 4),
        payload_bytes: 48,
        seed: 0xE8,
        ..CorpusConfig::default()
    });
    let history = History::new(
        docs,
        vec![Keyword::new("kw-00000"), Keyword::new("kw-00001")],
    );
    let trace = Trace::from_history(&history);
    let params = SimulatorParams::from_config(&config);

    let mut group = c.benchmark_group("e8_simulator");
    group.sample_size(10);

    group.bench_function("extract_real_view", |b| {
        let key = MasterKey::from_seed(1);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(extract_scheme1_view(
                &history,
                &key,
                config.clone(),
                i,
                false,
            ))
        });
    });

    group.bench_function("simulate_view", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(simulate_view(&trace, &params, i))
        });
    });

    group.bench_function("advantage_20_samples", |b| {
        let pop_a: Vec<Vec<u8>> = (0..20)
            .map(|i| simulate_view(&trace, &params, i).index_bytes_only())
            .collect();
        let pop_b: Vec<Vec<u8>> = (100..120)
            .map(|i| simulate_view(&trace, &params, i).index_bytes_only())
            .collect();
        b.iter(|| {
            for &s in Statistic::all() {
                std::hint::black_box(estimate_advantage(s, &pop_a, &pop_b));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
