//! E6 bench: the cost of chain machinery — per-update chain-key derivation
//! as the counter climbs, and full epoch re-initialization after
//! exhaustion. Reproduces §5.6's limitation analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sse_core::scheme2::{InMemoryScheme2Client, Scheme2Config};
use sse_core::types::{Document, MasterKey};
use sse_primitives::hashchain::HashChain;

fn bench_chain_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_chain");
    group.sample_size(20);

    // Client-side key derivation walks l - ctr steps: most expensive at
    // ctr = 1 (young database), cheapest near exhaustion.
    for l in [1024usize, 4096, 16384] {
        let chain = HashChain::new(&[b"w", b"k"], l);
        group.bench_with_input(BenchmarkId::new("derive_ctr1_l", l), &l, |b, _| {
            b.iter(|| std::hint::black_box(chain.key_for_counter(1).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("derive_near_tip_l", l), &l, |b, &l| {
            b.iter(|| std::hint::black_box(chain.key_for_counter(l as u64 - 1).unwrap()));
        });
    }

    // Epoch re-initialization: rebuild metadata for a database of n docs.
    for n in [64u64, 256] {
        group.bench_with_input(BenchmarkId::new("reinitialize_n", n), &n, |b, &n| {
            let docs: Vec<Document> = (0..n)
                .map(|i| Document::new(i, vec![0u8; 16], [format!("kw{}", i % 32)]))
                .collect();
            let mut client = InMemoryScheme2Client::new_in_memory(
                MasterKey::from_seed(0xE6),
                Scheme2Config::base(1 << 16),
            );
            client.store(&docs).unwrap();
            b.iter(|| client.reinitialize(&docs).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain_derivation);
criterion_main!(benches);
