//! E1 bench: search latency vs unique-keyword count, all schemes.
//! Reproduces Table 1 "Searching computation" + the §3 O(n) critique.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sse_baselines::goh::{GohClient, GohConfig};
use sse_baselines::swp::SwpClient;
use sse_bench::corpus::{docs_for, exact_corpus, probe_keyword};
use sse_core::scheme::SseClientApi;
use sse_core::scheme1::{InMemoryScheme1Client, Scheme1Config};
use sse_core::scheme2::{InMemoryScheme2Client, Scheme2Config};
use sse_core::types::MasterKey;
use sse_net::meter::Meter;

fn bench_search_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_search_scaling");
    group.sample_size(20);

    let key = MasterKey::from_seed(0xE1);
    for u in [256usize, 1024, 4096] {
        let docs = exact_corpus(u, docs_for(u), 32);

        let mut s1 = InMemoryScheme1Client::new_in_memory(
            key.clone(),
            Scheme1Config::fast_profile(docs.len() as u64),
        );
        s1.store(&docs).unwrap();
        group.bench_with_input(BenchmarkId::new("scheme1", u), &u, |b, &u| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                std::hint::black_box(s1.search(&probe_keyword(i, u)).unwrap())
            });
        });

        let mut s2 = InMemoryScheme2Client::new_in_memory(
            key.clone(),
            Scheme2Config::standard().with_chain_length(8),
        );
        s2.store(&docs).unwrap();
        group.bench_with_input(BenchmarkId::new("scheme2", u), &u, |b, &u| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                std::hint::black_box(s2.search(&probe_keyword(i, u)).unwrap())
            });
        });

        let mut swp = SwpClient::new(&key, Meter::new(), 1);
        swp.add_documents(&docs).unwrap();
        group.bench_with_input(BenchmarkId::new("swp_linear", u), &u, |b, &u| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                std::hint::black_box(swp.search(&probe_keyword(i, u)).unwrap())
            });
        });

        let mut goh = GohClient::new(&key, GohConfig::default(), Meter::new(), 2);
        goh.add_documents(&docs).unwrap();
        group.bench_with_input(BenchmarkId::new("goh_linear", u), &u, |b, &u| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                std::hint::black_box(goh.search(&probe_keyword(i, u)).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search_scaling);
criterion_main!(benches);
