//! E5 bench: repeat-search cost with and without the Optimization-1
//! server cache. Reproduces the §5.6 Optimization 1 claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sse_core::scheme2::{InMemoryScheme2Client, Scheme2Config};
use sse_core::types::{Document, Keyword, MasterKey};

fn client_with_history(cache: bool, generations: u64) -> InMemoryScheme2Client {
    let mut c = InMemoryScheme2Client::new_in_memory(
        MasterKey::from_seed(0xE5),
        Scheme2Config::base(1 << 16).with_server_cache(cache),
    );
    for i in 0..generations {
        c.store(&[Document::new(i, vec![0u8; 16], ["hot"])])
            .unwrap();
    }
    // Prime: first search decrypts the backlog (and fills the cache when on).
    c.search(&Keyword::new("hot")).unwrap();
    c
}

fn bench_repeat_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_repeat_search");
    group.sample_size(20);

    for generations in [16u64, 64, 256] {
        let mut cached = client_with_history(true, generations);
        group.bench_with_input(
            BenchmarkId::new("opt1_on", generations),
            &generations,
            |b, _| {
                let kw = Keyword::new("hot");
                b.iter(|| std::hint::black_box(cached.search(&kw).unwrap()));
            },
        );

        let mut uncached = client_with_history(false, generations);
        group.bench_with_input(
            BenchmarkId::new("opt1_off", generations),
            &generations,
            |b, _| {
                let kw = Keyword::new("hot");
                b.iter(|| std::hint::black_box(uncached.search(&kw).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_repeat_search);
criterion_main!(benches);
