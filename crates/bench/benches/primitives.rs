//! Primitive-level ablation bench: the building blocks whose costs explain
//! the scheme-level numbers (DESIGN.md calls these out — e.g. ElGamal
//! modexp dominating Scheme 1's client, hash steps dominating Scheme 2's
//! server walk).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sse_index::bptree::BpTree;
use sse_primitives::aes::Aes128;
use sse_primitives::chacha20::prg_expand;
use sse_primitives::drbg::HmacDrbg;
use sse_primitives::elgamal::ElGamal;
use sse_primitives::hashchain::{chain_step, walk_forward};
use sse_primitives::hmac::hmac_sha256;
use sse_primitives::modp::ModpGroup;
use sse_primitives::sha256::sha256;

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("prim_hash");
    for size in [64usize, 1024, 8192] {
        let data = vec![0xAAu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &size, |b, _| {
            b.iter(|| std::hint::black_box(sha256(&data)));
        });
    }
    group.bench_function("hmac_sha256_32b", |b| {
        let key = [1u8; 32];
        let msg = [2u8; 32];
        b.iter(|| std::hint::black_box(hmac_sha256(&key, &msg)));
    });
    group.bench_function("chain_step", |b| {
        let k = [3u8; 32];
        b.iter(|| std::hint::black_box(chain_step(&k)));
    });
    group.bench_function("chain_walk_1024", |b| {
        let k = [4u8; 32];
        b.iter(|| std::hint::black_box(walk_forward(&k, 1024)));
    });
    group.finish();
}

fn bench_ciphers(c: &mut Criterion) {
    let mut group = c.benchmark_group("prim_cipher");
    group.bench_function("aes128_block", |b| {
        let aes = Aes128::new(&[5u8; 16]);
        let block = [6u8; 16];
        b.iter(|| std::hint::black_box(aes.encrypt(&block)));
    });
    for size in [128usize, 4096] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("prg_expand", size), &size, |b, &size| {
            let seed = [7u8; 32];
            b.iter(|| std::hint::black_box(prg_expand(&seed, size)));
        });
    }
    group.finish();
}

/// Ablation: fixed-base windowed table vs Montgomery vs plain
/// square-and-multiply modexp (DESIGN.md design-choice callouts; Montgomery
/// buys ~1.7x at 256-bit / ~1.4x at 2048-bit over plain, and the fixed-base
/// table buys another ~4-6x on top for the `g^x` shape that dominates
/// Scheme 1's ElGamal encryptions and trapdoor evaluations).
fn bench_modexp_ablation(c: &mut Criterion) {
    use sse_primitives::bignum::{BigUint, FixedBase};
    let mut group = c.benchmark_group("prim_modexp_ablation");
    group.sample_size(10);
    for (name, grp) in [
        ("256", ModpGroup::modp_256()),
        ("2048", ModpGroup::modp_2048()),
    ] {
        let mut drbg = HmacDrbg::from_u64(3);
        let base = BigUint::random_range(&mut drbg, &BigUint::one(), &grp.p);
        let exp = grp.random_exponent(&mut drbg);
        group.bench_function(format!("montgomery_{name}"), |b| {
            b.iter(|| std::hint::black_box(base.mod_pow(&exp, &grp.p)));
        });
        group.bench_function(format!("plain_{name}"), |b| {
            b.iter(|| std::hint::black_box(base.mod_pow_plain(&exp, &grp.p)));
        });
        // The fixed-base arms pin the base to `g`: the table is only usable
        // for a base known ahead of time, which is exactly the `g^x` shape
        // on the hot path. `naive_g_*` is the same base through the generic
        // Montgomery ladder, so the pair isolates the table's contribution.
        let fb = FixedBase::new(&grp.g, &grp.p, grp.p.bit_len());
        group.bench_function(format!("fixed_base_g_{name}"), |b| {
            b.iter(|| std::hint::black_box(fb.pow(&exp)));
        });
        group.bench_function(format!("naive_g_{name}"), |b| {
            b.iter(|| std::hint::black_box(grp.g.mod_pow(&exp, &grp.p)));
        });
    }
    group.finish();
}

fn bench_elgamal(c: &mut Criterion) {
    let mut group = c.benchmark_group("prim_elgamal");
    group.sample_size(10);
    for (name, group_fn) in [
        ("modp256_fast", ModpGroup::modp_256 as fn() -> ModpGroup),
        ("modp2048_secure", ModpGroup::modp_2048 as fn() -> ModpGroup),
    ] {
        let mut drbg = HmacDrbg::from_u64(1);
        let eg = ElGamal::keygen(group_fn(), &mut drbg);
        let nonce = [9u8; 32];
        group.bench_function(format!("encrypt_nonce_{name}"), |b| {
            b.iter(|| std::hint::black_box(eg.encrypt_nonce(&nonce, &mut drbg)));
        });
        let ct = eg.encrypt_nonce(&nonce, &mut drbg);
        group.bench_function(format!("decrypt_to_seed_{name}"), |b| {
            b.iter(|| std::hint::black_box(eg.decrypt_to_seed(&ct).unwrap()));
        });
    }
    group.finish();
}

fn bench_bptree(c: &mut Criterion) {
    let mut group = c.benchmark_group("prim_bptree");
    for n in [1_000usize, 100_000] {
        let mut tree: BpTree<[u8; 32], u64> = BpTree::new();
        let mut drbg = HmacDrbg::from_u64(2);
        let mut keys = Vec::with_capacity(n);
        for i in 0..n {
            let k = drbg.gen_key();
            tree.insert(k, i as u64);
            keys.push(k);
        }
        group.bench_with_input(BenchmarkId::new("get", n), &n, |b, &n| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % n;
                std::hint::black_box(tree.get(&keys[i]))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hashing,
    bench_ciphers,
    bench_modexp_ablation,
    bench_elgamal,
    bench_bptree
);
criterion_main!(benches);
