//! E3 bench: end-to-end operation latency over the metered link, plus the
//! wire codec itself. Reproduces Table 1's communication-overhead row at
//! the timing level (the byte/round tables come from the harness).

use criterion::{criterion_group, criterion_main, Criterion};
use sse_bench::corpus::{docs_for, exact_corpus, probe_keyword};
use sse_core::scheme1::{InMemoryScheme1Client, Scheme1Config};
use sse_core::scheme2::{InMemoryScheme2Client, Scheme2Config};
use sse_core::types::MasterKey;
use sse_net::wire::{WireReader, WireWriter};

fn bench_operations(c: &mut Criterion) {
    let u = 1024usize;
    let docs = exact_corpus(u, docs_for(u), 64);
    let key = MasterKey::from_seed(0xE3);

    let mut group = c.benchmark_group("e3_comm_overhead");
    group.sample_size(20);

    let mut s1 = InMemoryScheme1Client::new_in_memory(
        key.clone(),
        Scheme1Config::fast_profile(docs.len() as u64),
    );
    s1.store(&docs).unwrap();
    group.bench_function("scheme1_search_2_rounds", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            std::hint::black_box(s1.search(&probe_keyword(i, u)).unwrap())
        });
    });

    let mut s2 = InMemoryScheme2Client::new_in_memory(
        key,
        Scheme2Config::standard().with_chain_length(1 << 16),
    );
    s2.store(&docs).unwrap();
    group.bench_function("scheme2_search_1_round", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            std::hint::black_box(s2.search(&probe_keyword(i, u)).unwrap())
        });
    });

    group.bench_function("wire_encode_decode_1kb", |b| {
        let payload = vec![0xABu8; 1024];
        b.iter(|| {
            let mut w = WireWriter::new();
            w.put_u8(1).put_u64(42).put_bytes(&payload);
            let msg = w.finish();
            let mut r = WireReader::new(&msg);
            let _ = r.get_u8().unwrap();
            let _ = r.get_u64().unwrap();
            std::hint::black_box(r.get_bytes().unwrap());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_operations);
criterion_main!(benches);
