//! E4 bench: single-document update latency vs database capacity.
//! Reproduces the Fig. 1 vs Fig. 3 update-protocol contrast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sse_bench::corpus::exact_corpus;
use sse_core::scheme1::{InMemoryScheme1Client, Scheme1Config};
use sse_core::scheme2::{InMemoryScheme2Client, Scheme2Config};
use sse_core::types::{Document, MasterKey};

fn bench_update_cost(c: &mut Criterion) {
    let key = MasterKey::from_seed(0xE4);
    let corpus = exact_corpus(512, 256, 32);

    let mut group = c.benchmark_group("e4_update_cost");
    group.sample_size(20);

    for cap in [1024u64, 16384, 262144] {
        let mut s1 =
            InMemoryScheme1Client::new_in_memory(key.clone(), Scheme1Config::fast_profile(cap));
        s1.store(&corpus).unwrap();
        group.bench_with_input(BenchmarkId::new("scheme1_capacity", cap), &cap, |b, _| {
            b.iter(|| {
                // Toggle the same id in and out: steady-state updates.
                s1.store(&[Document::new(300, vec![0u8; 32], ["kw-000001"])])
                    .unwrap();
            });
        });
    }

    let mut s2 = InMemoryScheme2Client::new_in_memory(
        key,
        Scheme2Config::standard().with_chain_length(1 << 14),
    );
    s2.store(&corpus).unwrap();
    group.bench_function("scheme2_capacity_independent", |b| {
        let mut id = 1000u64;
        b.iter(|| {
            id += 1;
            s2.store(&[Document::new(id, vec![0u8; 32], ["kw-000001"])])
                .unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, bench_update_cost);
criterion_main!(benches);
