//! The TCP daemon under concurrency: several clients on separate tenants
//! drive interleaved Scheme 2 updates and searches at once, and every
//! search result must equal what the same operation sequence produces
//! against a private in-memory server (the sequential oracle). Shutdown
//! must drain and join every daemon thread.

use sse_repro::core::scheme2::{Scheme2Client, Scheme2Config};
use sse_repro::core::types::{Document, Keyword, MasterKey, SearchHits};
use sse_repro::server::daemon::{Daemon, ServerConfig};
use sse_repro::server::proto::SchemeId;
use sse_repro::server::transport::TcpTransport;
use std::net::TcpStream;
use std::time::Duration;

const CLIENTS: usize = 4;
const ROUNDS: u64 = 4;

/// The deterministic op sequence client `i` runs: each round stores a
/// small batch, then searches two keywords (one shared hot keyword, one
/// per-client keyword).
fn round_docs(client: u64, round: u64) -> Vec<Document> {
    let base = round * 10;
    vec![
        Document::new(
            base,
            format!("c{client}-r{round}-a").into_bytes(),
            ["hot", "warm"],
        ),
        Document::new(
            base + 1,
            format!("c{client}-r{round}-b").into_bytes(),
            [format!("own-{client}").as_str(), "hot"],
        ),
    ]
}

fn sorted(mut hits: SearchHits) -> SearchHits {
    hits.sort();
    hits
}

/// Run the op sequence against any transport-backed client, returning the
/// transcript of all search results.
fn run_ops<T: sse_repro::net::link::Transport>(
    sse: &mut Scheme2Client<T>,
    client: u64,
) -> Vec<SearchHits> {
    let mut transcript = Vec::new();
    for round in 0..ROUNDS {
        sse.store(&round_docs(client, round)).unwrap();
        transcript.push(sorted(sse.search(&Keyword::new("hot")).unwrap()));
        transcript.push(sorted(
            sse.search(&Keyword::new(format!("own-{client}"))).unwrap(),
        ));
    }
    transcript
}

#[test]
fn concurrent_tenants_match_sequential_oracle() {
    let daemon = Daemon::spawn(ServerConfig {
        workers: 3,
        queue_depth: 4, // small on purpose: exercises BUSY + client retry
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = daemon.local_addr();

    let joins: Vec<_> = (0..CLIENTS as u64)
        .map(|client| {
            std::thread::spawn(move || {
                let transport =
                    TcpTransport::connect(addr, &format!("tenant-{client}"), SchemeId::Scheme2)
                        .unwrap();
                let mut sse = Scheme2Client::new_seeded(
                    transport,
                    MasterKey::from_seed(100 + client),
                    Scheme2Config::standard(),
                    client,
                );
                run_ops(&mut sse, client)
            })
        })
        .collect();
    let concurrent: Vec<Vec<SearchHits>> = joins.into_iter().map(|j| j.join().unwrap()).collect();

    // Oracle: the same per-client sequences run sequentially, each against
    // its own in-memory server (what "separate tenants" must behave like).
    for (client, observed) in concurrent.iter().enumerate() {
        let client = client as u64;
        let mut oracle = Scheme2Client::new_in_memory(
            MasterKey::from_seed(100 + client),
            Scheme2Config::standard(),
        );
        let expected = run_ops(&mut oracle, client);
        assert_eq!(observed, &expected, "tenant-{client} diverged from oracle");
        // Shape sanity: round r's "hot" search sees both docs of every
        // round so far; the per-client keyword sees one per round.
        for round in 0..ROUNDS as usize {
            assert_eq!(observed[2 * round].len(), 2 * (round + 1));
            assert_eq!(observed[2 * round + 1].len(), round + 1);
        }
    }

    let stats = daemon.stats();
    assert!(
        stats.requests_ok >= (CLIENTS as u64) * ROUNDS * 3,
        "every store and search was served: {stats:?}"
    );
    assert_eq!(stats.requests_err, 0, "no protocol errors: {stats:?}");
    assert_eq!(daemon.tenant_count(), CLIENTS);

    // Graceful shutdown drains and joins every thread the daemon spawned.
    let report = daemon.shutdown();
    assert_eq!(report.workers_joined, 3);
    assert!(report.connections_joined >= CLIENTS);

    // The listener is gone: new connections are refused (or time out).
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    assert!(refused.is_err(), "listener still accepting after shutdown");
}

#[test]
fn scheme1_and_scheme2_share_a_tenant_name_without_mixing() {
    use sse_repro::core::scheme1::{Scheme1Client, Scheme1Config};

    let daemon = Daemon::spawn(ServerConfig::default()).unwrap();
    let addr = daemon.local_addr();

    // Same tenant string, different schemes: routed to different databases.
    let t1 = TcpTransport::connect(addr, "shared", SchemeId::Scheme1).unwrap();
    let t2 = TcpTransport::connect(addr, "shared", SchemeId::Scheme2).unwrap();
    let mut c1 = Scheme1Client::new_seeded(
        t1,
        MasterKey::from_seed(1),
        Scheme1Config::fast_profile(4096),
        7,
    );
    let mut c2 =
        Scheme2Client::new_seeded(t2, MasterKey::from_seed(1), Scheme2Config::standard(), 7);

    c1.store(&[Document::new(0, b"s1".to_vec(), ["alpha"])])
        .unwrap();
    c2.store(&[Document::new(0, b"s2".to_vec(), ["alpha"])])
        .unwrap();
    let h1 = c1.search(&Keyword::new("alpha")).unwrap();
    let h2 = c2.search(&Keyword::new("alpha")).unwrap();
    assert_eq!(h1, vec![(0, b"s1".to_vec())]);
    assert_eq!(h2, vec![(0, b"s2".to_vec())]);
    assert_eq!(daemon.tenant_count(), 2);
    daemon.shutdown();
}

#[test]
fn admin_stats_are_queryable_over_the_wire() {
    let daemon = Daemon::spawn(ServerConfig::default()).unwrap();
    let addr = daemon.local_addr();

    let transport = TcpTransport::connect(addr, "t", SchemeId::Scheme2).unwrap();
    let mut sse = Scheme2Client::new_seeded(
        transport,
        MasterKey::from_seed(3),
        Scheme2Config::standard(),
        3,
    );
    sse.store(&[Document::new(0, b"doc".to_vec(), ["kw"])])
        .unwrap();
    sse.search(&Keyword::new("kw")).unwrap();

    let mut admin = TcpTransport::connect(addr, "t", SchemeId::Scheme2).unwrap();
    let stats = admin.admin_stats().unwrap();
    assert!(stats.requests_ok >= 2, "{stats:?}");
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0, "{stats:?}");
    assert!(
        stats.p50_ns > 0 && stats.p50_ns <= stats.p99_ns,
        "{stats:?}"
    );

    admin.admin_shutdown().unwrap();
    daemon.wait_for_shutdown_request();
    daemon.shutdown();
}

/// The acceptance round-trip for durable serving: two tenants populate
/// their databases over TCP, the daemon shuts down (checkpointing), a new
/// daemon reopens the same data directory, and both tenants' searches
/// return identical results over fresh connections — zero re-uploads.
#[test]
fn durable_daemon_restart_serves_identical_searches_without_reupload() {
    use sse_repro::core::scheme1::{Scheme1Client, Scheme1Config};

    let data_dir = std::env::temp_dir().join(format!(
        "sse-daemon-restart-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&data_dir);
    let config = ServerConfig {
        data_dir: Some(data_dir.clone()),
        ..ServerConfig::default()
    };

    let alice_key = MasterKey::from_seed(11);
    let bob_key = MasterKey::from_seed(22);
    let s1_config = Scheme1Config::fast_profile(4096);
    let s2_config = Scheme2Config::standard();

    // Session 1: populate both tenants, remember what the searches said.
    let (expected_alice, expected_bob, bob_state) = {
        let daemon = Daemon::spawn(config.clone()).unwrap();
        let addr = daemon.local_addr();

        let t = TcpTransport::connect(addr, "alice", SchemeId::Scheme1).unwrap();
        let mut alice = Scheme1Client::new_seeded(t, alice_key.clone(), s1_config.clone(), 1);
        alice
            .store(&[
                Document::new(0, b"alice zero".to_vec(), ["alpha"]),
                Document::new(1, b"alice one".to_vec(), ["alpha", "beta"]),
            ])
            .unwrap();

        let t = TcpTransport::connect(addr, "bob", SchemeId::Scheme2).unwrap();
        let mut bob = Scheme2Client::new_seeded(t, bob_key.clone(), s2_config.clone(), 1);
        bob.store(&[
            Document::new(0, b"bob zero".to_vec(), ["gamma"]),
            Document::new(1, b"bob one".to_vec(), ["gamma", "delta"]),
        ])
        .unwrap();

        let expected_alice = sorted(alice.search(&Keyword::new("alpha")).unwrap());
        let expected_bob = sorted(bob.search(&Keyword::new("gamma")).unwrap());
        let bob_state = bob.state();

        let report = daemon.shutdown();
        assert_eq!(
            report.tenants_checkpointed, 2,
            "graceful shutdown checkpoints every tenant"
        );
        (expected_alice, expected_bob, bob_state)
    };
    assert_eq!(expected_alice.len(), 2);
    assert_eq!(expected_bob.len(), 2);

    // Session 2: a new daemon process over the same directory.
    let daemon = Daemon::spawn(config).unwrap();
    assert_eq!(
        daemon.tenant_count(),
        2,
        "both tenant databases reopen before the listener serves"
    );
    let addr = daemon.local_addr();

    // Scheme 1 clients are stateless beyond the key: a brand-new client
    // must see everything, with no re-upload.
    let t = TcpTransport::connect(addr, "alice", SchemeId::Scheme1).unwrap();
    let mut alice = Scheme1Client::new_seeded(t, alice_key, s1_config, 9);
    assert_eq!(
        sorted(alice.search(&Keyword::new("alpha")).unwrap()),
        expected_alice
    );

    // Scheme 2 restores its persisted counter state, nothing else.
    let t = TcpTransport::connect(addr, "bob", SchemeId::Scheme2).unwrap();
    let mut bob = Scheme2Client::new_seeded(t, bob_key, s2_config, 9);
    bob.restore_state(bob_state);
    assert_eq!(
        sorted(bob.search(&Keyword::new("gamma")).unwrap()),
        expected_bob
    );
    assert_eq!(sorted(bob.search(&Keyword::new("delta")).unwrap()).len(), 1);

    // Checkpointed shutdown means the restart replayed no WAL.
    let stats = daemon.stats();
    assert_eq!(
        stats.wal_recoveries, 0,
        "clean shutdown left nothing to recover: {stats:?}"
    );
    assert_eq!(stats.torn_tails_truncated, 0, "{stats:?}");

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}

/// A connection that goes quiet past the idle timeout is reaped by the
/// daemon; the client's next request fails cleanly and the transport
/// re-dials, so the connection after that succeeds.
#[test]
fn idle_connections_are_reaped_and_clients_reattach() {
    let daemon = Daemon::spawn(ServerConfig {
        idle_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = daemon.local_addr();

    let transport = TcpTransport::connect(addr, "sleepy", SchemeId::Scheme2).unwrap();
    let mut sse = Scheme2Client::new_seeded(
        transport,
        MasterKey::from_seed(5),
        Scheme2Config::standard(),
        5,
    );
    sse.store(&[Document::new(0, b"doc".to_vec(), ["kw"])])
        .unwrap();

    // Outlive the idle timeout; the server closes the connection.
    std::thread::sleep(Duration::from_millis(600));

    // The first post-idle op fails (its connection is gone — at-most-once
    // forbids a silent retry) but heals the transport for the next one.
    let first = sse.search(&Keyword::new("kw"));
    assert!(first.is_err(), "idle connection was not reaped");
    let second = sse.search(&Keyword::new("kw")).unwrap();
    assert_eq!(second, vec![(0, b"doc".to_vec())]);
    assert!(
        sse.transport_mut().reconnects() >= 1,
        "transport should have re-dialed after the reap"
    );

    let stats = daemon.stats();
    assert!(
        stats.reconnects >= 1,
        "daemon should count the re-attach: {stats:?}"
    );
    daemon.shutdown();
}

const SHARED_CLIENTS: u64 = 16;
const SHARED_SHARDS: usize = 8;
const SHARED_ROUNDS: u64 = 3;

/// The op sequence for the shared-tenant test: ids are strided by client
/// (the tenant's doc store is shared, so ids must be globally unique), and
/// keywords mix an overlapping string every client uses (`hot16`) with a
/// per-client disjoint one — under distinct master keys the shared string
/// still maps to distinct tags, so shard routing sees both patterns.
fn shared_round_docs(client: u64, round: u64) -> Vec<Document> {
    let base = (round * SHARED_CLIENTS + client) * 2;
    vec![
        Document::new(
            base,
            format!("s{client}-r{round}-a").into_bytes(),
            ["hot16", "warm16"],
        ),
        Document::new(
            base + 1,
            format!("s{client}-r{round}-b").into_bytes(),
            [format!("own16-{client}").as_str(), "hot16"],
        ),
    ]
}

/// Per-client sequence over the shared tenant. Odd clients ship their
/// stores through the batched `UPDATE_MANY` path, even clients through
/// plain per-message DATA requests, so both request kinds race on the
/// same shard locks.
fn shared_ops<T: sse_repro::net::link::Transport>(
    sse: &mut Scheme2Client<T>,
    client: u64,
) -> Vec<SearchHits> {
    let mut transcript = Vec::new();
    for round in 0..SHARED_ROUNDS {
        let docs = shared_round_docs(client, round);
        if client % 2 == 1 {
            sse.store_batch(&docs).unwrap();
        } else {
            sse.store(&docs).unwrap();
        }
        transcript.push(sorted(sse.search(&Keyword::new("hot16")).unwrap()));
        transcript.push(sorted(
            sse.search(&Keyword::new(format!("own16-{client}")))
                .unwrap(),
        ));
    }
    transcript
}

/// Sixteen clients hammer ONE sharded tenant database concurrently —
/// distinct master keys, so their keyword sets are disjoint as tags even
/// where the strings overlap — and every client's transcript must be
/// linearizable: identical to the same sequence run sequentially against
/// a private in-memory server. Any cross-shard routing error, lost update
/// under contention, or UPDATE_MANY/DATA interleaving bug diverges here.
#[test]
fn sixteen_clients_share_a_sharded_tenant_linearizably() {
    use sse_repro::server::tenant::TenantParams;

    let daemon = Daemon::spawn(ServerConfig {
        workers: SHARED_SHARDS,
        queue_depth: 64,
        tenant_params: TenantParams {
            shards: SHARED_SHARDS,
            ..TenantParams::default()
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = daemon.local_addr();

    let joins: Vec<_> = (0..SHARED_CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let transport =
                    TcpTransport::connect(addr, "shared-shardy", SchemeId::Scheme2).unwrap();
                let mut sse = Scheme2Client::new_seeded(
                    transport,
                    MasterKey::from_seed(500 + client),
                    Scheme2Config::standard(),
                    client,
                );
                shared_ops(&mut sse, client)
            })
        })
        .collect();
    let concurrent: Vec<Vec<SearchHits>> = joins.into_iter().map(|j| j.join().unwrap()).collect();

    for (client, observed) in concurrent.iter().enumerate() {
        let client = client as u64;
        let mut oracle = Scheme2Client::new_in_memory(
            MasterKey::from_seed(500 + client),
            Scheme2Config::standard(),
        );
        let expected = shared_ops(&mut oracle, client);
        assert_eq!(
            observed, &expected,
            "client {client} on the shared tenant diverged from its sequential oracle"
        );
        for round in 0..SHARED_ROUNDS as usize {
            assert_eq!(observed[2 * round].len(), 2 * (round + 1));
            assert_eq!(observed[2 * round + 1].len(), round + 1);
        }
    }

    let stats = daemon.stats();
    assert_eq!(stats.requests_err, 0, "no protocol errors: {stats:?}");
    assert!(stats.requests_ok >= SHARED_CLIENTS * SHARED_ROUNDS * 3);
    assert_eq!(daemon.tenant_count(), 1, "one shared tenant database");

    // The per-shard contention counters are live and sized to the tenant's
    // shard count (whether any acquisition contended is timing-dependent).
    let mut admin = TcpTransport::connect(addr, "shared-shardy", SchemeId::Scheme2).unwrap();
    let snap = admin.admin_stats().unwrap();
    assert_eq!(
        snap.shard_contention.len(),
        SHARED_SHARDS,
        "STATS exposes one contention counter per shard: {snap:?}"
    );

    daemon.shutdown();
}

/// An `UPDATE_MANY` envelope touching k keywords (k shards) is
/// all-or-nothing to racing searches. The writer stores documents tagged
/// with four keywords per envelope (one batched request, four shards);
/// a concurrent reader sharing the master key searches the keywords one
/// by one. Because the batch applies under the union of its shard locks,
/// any doc id visible under an earlier-read keyword must be visible under
/// every later-read one — a shard-by-shard (non-atomic) apply leaves a
/// window where the subset chain breaks.
#[test]
fn update_many_is_all_or_nothing_to_racing_searches() {
    use sse_repro::core::scheme2::Scheme2ClientState;
    use sse_repro::server::tenant::TenantParams;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const ENVELOPES: u64 = 200;
    const KWS: [&str; 4] = ["atom-0", "atom-1", "atom-2", "atom-3"];

    let daemon = Daemon::spawn(ServerConfig {
        workers: 4,
        queue_depth: 64,
        tenant_params: TenantParams {
            shards: 8,
            ..TenantParams::default()
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = daemon.local_addr();
    let key = MasterKey::from_seed(77);
    let done = Arc::new(AtomicBool::new(false));

    // Writer: every store_batch is one UPDATE_MANY envelope appending one
    // generation to each of the four keywords. It never searches, so under
    // CtrPolicy::OnSearchOnly every generation stays at counter 1 and the
    // reader below can unlock all of them with one restored counter.
    let writer = {
        let key = key.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            let transport = TcpTransport::connect(addr, "atomic", SchemeId::Scheme2).unwrap();
            let mut sse = Scheme2Client::new_seeded(transport, key, Scheme2Config::standard(), 1);
            for n in 0..ENVELOPES {
                sse.store_batch(&[Document::new(n, format!("atomic-{n}").into_bytes(), KWS)])
                    .unwrap();
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    // Reader: same master key, counter pinned to the writer's value.
    let reader = {
        let done = done.clone();
        std::thread::spawn(move || {
            let transport = TcpTransport::connect(addr, "atomic", SchemeId::Scheme2).unwrap();
            let mut sse = Scheme2Client::new_seeded(transport, key, Scheme2Config::standard(), 2);
            sse.restore_state(Scheme2ClientState {
                ctr: 1,
                epoch: 0,
                searched_since_update: true,
            });
            let ids = |sse: &mut Scheme2Client<TcpTransport>, kw: &str| -> BTreeSet<u64> {
                sse.search(&Keyword::new(kw))
                    .unwrap()
                    .into_iter()
                    .map(|(id, _)| id)
                    .collect()
            };
            let mut passes = 0u64;
            loop {
                let finished = done.load(Ordering::SeqCst);
                let mut prev: Option<(usize, BTreeSet<u64>)> = None;
                for (i, kw) in KWS.iter().enumerate() {
                    let seen = ids(&mut sse, kw);
                    if let Some((j, earlier)) = &prev {
                        assert!(
                            earlier.is_subset(&seen),
                            "torn UPDATE_MANY: ids {:?} visible under {} but not under {} \
                             (read later)",
                            earlier.difference(&seen).collect::<Vec<_>>(),
                            KWS[*j],
                            kw,
                        );
                    }
                    prev = Some((i, seen));
                }
                passes += 1;
                if finished {
                    break;
                }
            }
            // Quiesced: every keyword sees every envelope.
            let full: BTreeSet<u64> = (0..ENVELOPES).collect();
            for kw in KWS {
                assert_eq!(ids(&mut sse, kw), full, "{kw} missing envelopes at rest");
            }
            passes
        })
    };

    writer.join().unwrap();
    let passes = reader.join().unwrap();
    assert!(
        passes >= 2,
        "reader never raced the writer ({passes} passes)"
    );

    let stats = daemon.stats();
    assert_eq!(stats.requests_err, 0, "no protocol errors: {stats:?}");
    daemon.shutdown();
}

/// Regression test for the BUSY retry budget: it is measured on the
/// monotonic clock and configurable. Against a server that answers BUSY
/// forever, a transport with a short budget must fail the request with
/// `TimedOut` no earlier than the budget and nowhere near the 10 s
/// default — i.e. the override is honored and the loop cannot spin
/// unbounded (or be starved/stretched by wall-clock steps, which the
/// monotonic `Instant` source is immune to by construction).
#[test]
fn busy_deadline_is_monotonic_and_bounded() {
    use sse_repro::net::frame::{encode_frame, FrameDecoder};
    use sse_repro::net::link::Transport;
    use sse_repro::server::proto::{self, HELLO_SEQ, STATUS_BUSY, STATUS_OK};
    use sse_repro::server::transport::DEFAULT_BUSY_RETRY_DEADLINE;
    use std::io::{Read, Write};
    use std::time::Instant;

    // A minimal daemon impostor: accept one connection, ack the hello,
    // then answer every request with BUSY (correctly correlated, so the
    // transport keeps retrying rather than erroring out).
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut decoder = FrameDecoder::new();
        let mut buf = [0u8; 4096];
        let mut greeted = false;
        loop {
            let frame = loop {
                if let Some(f) = decoder.next_frame().unwrap() {
                    break f;
                }
                match stream.read(&mut buf) {
                    Ok(0) | Err(_) => return, // client hung up: test over
                    Ok(n) => decoder.push(&buf[..n]),
                }
            };
            let reply = if greeted {
                let (_, seq, _) = proto::decode_request(&frame).unwrap();
                proto::encode_response(STATUS_BUSY, seq, &[])
            } else {
                greeted = true;
                proto::encode_response(STATUS_OK, HELLO_SEQ, &[])
            };
            if stream.write_all(&encode_frame(&reply)).is_err() {
                return;
            }
        }
    });

    let deadline = Duration::from_millis(250);
    let mut transport = TcpTransport::connect(addr, "busy", SchemeId::Scheme2)
        .unwrap()
        .with_busy_retry_deadline(deadline);

    let started = Instant::now();
    let err = transport.round_trip(b"any scheme payload").unwrap_err();
    let elapsed = started.elapsed();

    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut, "{err}");
    assert!(
        elapsed >= deadline,
        "gave up after {elapsed:?}, before the {deadline:?} budget"
    );
    // Bounded: one more capped backoff past the budget at most, and far
    // from the default budget the override replaced.
    assert!(
        elapsed < DEFAULT_BUSY_RETRY_DEADLINE / 4,
        "spun for {elapsed:?} against a {deadline:?} budget"
    );
    assert!(
        transport.busy_retries() >= 2,
        "expected repeated BUSY retries, saw {}",
        transport.busy_retries()
    );

    drop(transport); // closes the socket; the impostor thread exits
    server.join().unwrap();
}

/// Regression test for BUSY semantics under the per-worker run queues
/// (DESIGN.md §4k): when a connection pipelines more requests than the
/// scheduler can hold, the overflow must come back as cleanly correlated
/// BUSY responses — exactly one response per seq, the accepted subset
/// completing in dispatch order on a single worker (spill and steal may
/// not reorder one connection's stream), and every BUSY'd seq must
/// succeed when retried after the queue drains.
#[test]
fn pipelined_overflow_answers_busy_without_reordering_the_connection() {
    use sse_repro::net::frame::encode_frame;
    use sse_repro::net::link::Transport;
    use sse_repro::server::proto::{
        self, Hello, HELLO_SEQ, KIND_SEARCH_MANY, STATUS_BUSY, STATUS_OK,
    };
    use std::collections::BTreeMap;
    use std::io::{Read, Write};

    /// Remembers the bytes of the last single round trip, so the test can
    /// replay one warm (read-only) search verbatim over a bare socket.
    struct Capture {
        inner: TcpTransport,
        last: Vec<u8>,
    }
    impl Transport for Capture {
        fn round_trip(&mut self, request: &[u8]) -> std::io::Result<Vec<u8>> {
            self.last = request.to_vec();
            self.inner.round_trip(request)
        }
    }

    fn read_response(stream: &mut TcpStream) -> (u8, u32) {
        let mut len = [0u8; 4];
        stream.read_exact(&mut len).unwrap();
        let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
        stream.read_exact(&mut body).unwrap();
        let (status, seq, _) = proto::decode_response(&body).unwrap();
        (status, seq)
    }

    // One worker and a two-deep queue: with the worker chewing on a
    // fan-out batch, a pipelined burst must overflow into BUSY.
    let daemon = Daemon::spawn(ServerConfig {
        workers: 1,
        queue_depth: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = daemon.local_addr().to_string();

    // Warm the tenant and capture one memo-served search request.
    let transport = Capture {
        inner: TcpTransport::connect(&addr, "pipelined", SchemeId::Scheme2).unwrap(),
        last: Vec::new(),
    };
    let key = MasterKey::from_seed(0x91D);
    let mut sse = Scheme2Client::new_seeded(transport, key, Scheme2Config::standard(), 5);
    sse.store(&round_docs(0, 0)).unwrap();
    sse.search(&Keyword::new("hot")).unwrap();
    sse.search(&Keyword::new("hot")).unwrap();
    let search_request = sse.transport_mut().last.clone();
    drop(sse);
    assert!(!search_request.is_empty());

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(&encode_frame(
            &Hello {
                tenant: "pipelined".into(),
                scheme: SchemeId::Scheme2,
            }
            .encode(),
        ))
        .unwrap();
    assert_eq!(read_response(&mut stream), (STATUS_OK, HELLO_SEQ));

    // Each request is a SEARCH_MANY batch (8 parts of the same warm
    // search) so the lone worker's service time dwarfs the reactor's
    // dispatch of the rest of the burst.
    const BURST: u32 = 24;
    let batch = proto::encode_batch(&vec![search_request; 8]);
    let mut responded: BTreeMap<u32, u8> = BTreeMap::new();
    let mut busy_seqs: Vec<u32> = Vec::new();
    let mut rounds = 0u32;
    while busy_seqs.is_empty() {
        rounds += 1;
        assert!(rounds <= 10, "queue never overflowed into BUSY");
        let base = (rounds - 1) * BURST;
        let mut burst = Vec::new();
        for i in 0..BURST {
            burst.extend_from_slice(&encode_frame(&proto::encode_request(
                KIND_SEARCH_MANY,
                base + 1 + i,
                &batch,
            )));
        }
        stream.write_all(&burst).unwrap();
        let mut ok_order = Vec::new();
        let mut busy_order = Vec::new();
        for _ in 0..BURST {
            let (status, seq) = read_response(&mut stream);
            assert!(
                responded.insert(seq, status).is_none(),
                "seq {seq} answered twice"
            );
            match status {
                STATUS_OK => ok_order.push(seq),
                STATUS_BUSY => busy_order.push(seq),
                other => panic!("seq {seq}: unexpected status {other}"),
            }
        }
        // Exactly one response per pipelined seq, and each status
        // subsequence preserves the connection's dispatch order: the
        // single worker serves accepted jobs FIFO, and the reactor
        // answers overflow BUSY in receive order.
        assert_eq!(responded.len() as u32, rounds * BURST);
        assert!(ok_order.windows(2).all(|w| w[0] < w[1]), "{ok_order:?}");
        assert!(busy_order.windows(2).all(|w| w[0] < w[1]), "{busy_order:?}");
        busy_seqs = busy_order;
    }

    // Every rejected seq succeeds when retried closed-loop: BUSY told
    // the client to back off, not that the request was lost or the
    // connection poisoned.
    for &seq in &busy_seqs {
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(
                attempts <= 50,
                "seq {seq} still BUSY after {attempts} tries"
            );
            stream
                .write_all(&encode_frame(&proto::encode_request(
                    KIND_SEARCH_MANY,
                    seq,
                    &batch,
                )))
                .unwrap();
            let (status, got) = read_response(&mut stream);
            assert_eq!(got, seq);
            if status == STATUS_OK {
                break;
            }
            assert_eq!(status, STATUS_BUSY);
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    let stats = daemon.stats();
    assert!(
        stats.requests_busy >= busy_seqs.len() as u64,
        "stats lost BUSY rejections: {stats:?}"
    );
    assert_eq!(stats.requests_err, 0, "no protocol errors: {stats:?}");
    drop(stream);
    daemon.shutdown();
}

/// The `SEARCH_MANY` envelope end to end, both schemes: a batched search
/// over a sharded tenant must return exactly what the same keywords yield
/// one at a time, with absent keywords coming back empty in position —
/// and the Scheme 2 repeat searches must show up as memo hits in the
/// daemon's STATS.
#[test]
fn search_many_envelope_matches_sequential_searches() {
    use sse_repro::core::scheme1::{Scheme1Client, Scheme1Config};
    use sse_repro::server::tenant::TenantParams;

    let daemon = Daemon::spawn(ServerConfig {
        workers: 4,
        tenant_params: TenantParams {
            shards: 8,
            ..TenantParams::default()
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = daemon.local_addr();

    let keywords: Vec<Keyword> = (0..8).map(|i| Keyword::new(format!("kw-{i}"))).collect();
    let mut with_absent = keywords.clone();
    with_absent.insert(3, Keyword::new("never-stored"));

    // Scheme 2: per-keyword Search parts in one envelope round.
    let t = TcpTransport::connect(addr, "many2", SchemeId::Scheme2).unwrap();
    let mut s2 =
        Scheme2Client::new_seeded(t, MasterKey::from_seed(41), Scheme2Config::standard(), 41);
    for round in 0..4u64 {
        let docs: Vec<Document> = keywords
            .iter()
            .enumerate()
            .map(|(i, w)| {
                Document::new(
                    round * 100 + i as u64,
                    format!("s2-r{round}-k{i}").into_bytes(),
                    [w.as_str()],
                )
            })
            .collect();
        s2.store(&docs).unwrap();
    }
    let individual: Vec<SearchHits> = with_absent
        .iter()
        .map(|w| sorted(s2.search(w).unwrap()))
        .collect();
    let batched: Vec<SearchHits> = s2
        .search_batch(&with_absent)
        .unwrap()
        .into_iter()
        .map(sorted)
        .collect();
    assert_eq!(batched, individual, "scheme 2 batch diverged");
    assert!(batched[3].is_empty(), "absent keyword must be empty");

    // Scheme 1: batched find round + batched reveal round.
    let t = TcpTransport::connect(addr, "many1", SchemeId::Scheme1).unwrap();
    let mut s1 = Scheme1Client::new_seeded(
        t,
        MasterKey::from_seed(42),
        Scheme1Config::fast_profile(4096),
        42,
    );
    let docs: Vec<Document> = keywords
        .iter()
        .enumerate()
        .map(|(i, w)| Document::new(i as u64, format!("s1-k{i}").into_bytes(), [w.as_str()]))
        .collect();
    s1.store(&docs).unwrap();
    let individual: Vec<SearchHits> = with_absent
        .iter()
        .map(|w| sorted(s1.search(w).unwrap()))
        .collect();
    let batched: Vec<SearchHits> = s1
        .search_batch(&with_absent)
        .unwrap()
        .into_iter()
        .map(sorted)
        .collect();
    assert_eq!(batched, individual, "scheme 1 batch diverged");
    assert!(batched[3].is_empty(), "absent keyword must be empty");

    // The Scheme 2 repeats above hit the server-side memo; the counters
    // surface through ADMIN_STATS.
    let mut admin = TcpTransport::connect(addr, "many2", SchemeId::Scheme2).unwrap();
    let stats = admin.admin_stats().unwrap();
    assert!(
        stats.search_cache_hits > 0,
        "repeat searches must hit the memo: {stats:?}"
    );
    assert!(stats.search_cache_misses > 0, "{stats:?}");
    assert_eq!(stats.requests_err, 0, "{stats:?}");

    daemon.shutdown();
}
