//! Durability integration: scheme servers over the WAL-backed document
//! store, across process-style restarts and crash simulations.

use sse_repro::core::scheme1::{Scheme1Client, Scheme1Config, Scheme1Server};
use sse_repro::core::scheme2::{Scheme2Client, Scheme2Config, Scheme2Server};
use sse_repro::core::types::{Document, Keyword, MasterKey};
use sse_repro::net::link::MeteredLink;
use sse_repro::net::meter::Meter;
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sse-persist-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn docs() -> Vec<Document> {
    vec![
        Document::new(0, b"durable zero".to_vec(), ["alpha"]),
        Document::new(1, b"durable one".to_vec(), ["alpha", "beta"]),
        Document::new(2, b"durable two".to_vec(), ["beta"]),
    ]
}

#[test]
fn scheme2_blobs_survive_restart_and_reindex() {
    let dir = temp_dir("s2");
    let config = Scheme2Config::standard().with_chain_length(128);
    let key = MasterKey::from_seed(1);

    // Session 1.
    let saved_state = {
        let server = Scheme2Server::open_durable(config.clone(), &dir).unwrap();
        let mut client = Scheme2Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            1,
        );
        client.store(&docs()).unwrap();
        assert_eq!(client.search(&Keyword::new("alpha")).unwrap().len(), 2);
        client.state()
    };

    // Session 2: blobs recovered; metadata re-indexed client-side.
    {
        let server = Scheme2Server::open_durable(config.clone(), &dir).unwrap();
        assert_eq!(server.stored_docs(), 3, "blobs must survive restart");
        let mut client =
            Scheme2Client::new_seeded(MeteredLink::new(server, Meter::new()), key, config, 2);
        client.restore_state(saved_state);
        client.reinitialize(&docs()).unwrap();
        let hits = client.search(&Keyword::new("beta")).unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].1, b"durable one".to_vec());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn scheme1_durable_server_round_trip() {
    let dir = temp_dir("s1");
    let config = Scheme1Config::fast_profile(64);
    let key = MasterKey::from_seed(2);
    {
        let server = Scheme1Server::open_durable(64, &dir).unwrap();
        let mut client = Scheme1Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            1,
        );
        client.store(&docs()).unwrap();
        assert_eq!(client.search(&Keyword::new("alpha")).unwrap().len(), 2);
    }
    {
        let server = Scheme1Server::open_durable(64, &dir).unwrap();
        assert_eq!(server.stored_docs(), 3);
        // The index journal replays the first run's mutations on open, so
        // searches work immediately; re-storing would XOR-toggle the
        // recovered postings back off.
        let mut client =
            Scheme1Client::new_seeded(MeteredLink::new(server, Meter::new()), key, config, 2);
        assert_eq!(client.search(&Keyword::new("beta")).unwrap().len(), 2);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn scheme1_index_snapshot_restores_search_without_reindex() {
    let dir = temp_dir("s1-idx");
    let config = Scheme1Config::fast_profile(64);
    let key = MasterKey::from_seed(3);
    {
        let server = Scheme1Server::open_durable(64, &dir).unwrap();
        let mut client = Scheme1Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            1,
        );
        client.store(&docs()).unwrap();
        // Checkpoint both halves: blobs + keyword index.
        client
            .transport_mut()
            .service_mut()
            .checkpoint(&dir)
            .unwrap();
        // Post-checkpoint update lands only in the WAL/live index.
        client
            .store(&[Document::new(3, b"late".to_vec(), ["alpha"])])
            .unwrap();
        client
            .transport_mut()
            .service_mut()
            .checkpoint(&dir)
            .unwrap();
    }
    // Restart: searches work immediately, no client re-indexing.
    {
        let server = Scheme1Server::open_durable(64, &dir).unwrap();
        assert_eq!(server.unique_keywords(), 2);
        let mut client =
            Scheme1Client::new_seeded(MeteredLink::new(server, Meter::new()), key, config, 2);
        let hits = client.search(&Keyword::new("alpha")).unwrap();
        assert_eq!(hits.len(), 3);
        assert_eq!(client.search(&Keyword::new("beta")).unwrap().len(), 2);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn scheme2_index_snapshot_restores_search_without_reindex() {
    let dir = temp_dir("s2-idx");
    let config = Scheme2Config::standard().with_chain_length(128);
    let key = MasterKey::from_seed(4);
    let saved_state = {
        let server = Scheme2Server::open_durable(config.clone(), &dir).unwrap();
        let mut client = Scheme2Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            1,
        );
        client.store(&docs()).unwrap();
        client.search(&Keyword::new("alpha")).unwrap();
        client
            .store(&[Document::new(3, b"late".to_vec(), ["beta"])])
            .unwrap();
        client
            .transport_mut()
            .service_mut()
            .checkpoint(&dir)
            .unwrap();
        client.state()
    };
    {
        let server = Scheme2Server::open_durable(config.clone(), &dir).unwrap();
        assert_eq!(server.unique_keywords(), 2);
        let mut client =
            Scheme2Client::new_seeded(MeteredLink::new(server, Meter::new()), key, config, 2);
        client.restore_state(saved_state);
        // All generations recovered: both the pre- and post-search ones.
        assert_eq!(client.search(&Keyword::new("beta")).unwrap().len(), 3);
        assert_eq!(client.search(&Keyword::new("alpha")).unwrap().len(), 2);
        // And the database keeps accepting updates.
        client
            .store(&[Document::new(9, b"post-restart".to_vec(), ["beta"])])
            .unwrap();
        assert_eq!(client.search(&Keyword::new("beta")).unwrap().len(), 4);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn remote_checkpoint_round_trips_both_schemes() {
    // Scheme 2.
    let dir = temp_dir("remote-ckpt-s2");
    let config = Scheme2Config::standard().with_chain_length(64);
    let key = MasterKey::from_seed(7);
    let state = {
        let server = Scheme2Server::open_durable(config.clone(), &dir).unwrap();
        let mut client = Scheme2Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            1,
        );
        client.store(&docs()).unwrap();
        client.request_checkpoint().unwrap();
        client.state()
    };
    {
        let server = Scheme2Server::open_durable(config.clone(), &dir).unwrap();
        let mut client = Scheme2Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key,
            config.clone(),
            2,
        );
        client.restore_state(state);
        assert_eq!(client.search(&Keyword::new("alpha")).unwrap().len(), 2);
    }
    std::fs::remove_dir_all(&dir).unwrap();

    // Scheme 1.
    let dir = temp_dir("remote-ckpt-s1");
    let s1_config = Scheme1Config::fast_profile(64);
    let key = MasterKey::from_seed(8);
    {
        let server = Scheme1Server::open_durable(64, &dir).unwrap();
        let mut client = Scheme1Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            s1_config.clone(),
            1,
        );
        client.store(&docs()).unwrap();
        client.request_checkpoint().unwrap();
    }
    {
        let server = Scheme1Server::open_durable(64, &dir).unwrap();
        let mut client =
            Scheme1Client::new_seeded(MeteredLink::new(server, Meter::new()), key, s1_config, 2);
        assert_eq!(client.search(&Keyword::new("beta")).unwrap().len(), 2);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_on_in_memory_server_is_a_clean_error() {
    use sse_repro::core::scheme2::InMemoryScheme2Client;
    let mut client = InMemoryScheme2Client::new_in_memory(
        MasterKey::from_seed(9),
        Scheme2Config::standard().with_chain_length(16),
    );
    let err = client.request_checkpoint().unwrap_err();
    assert!(err.to_string().contains("in-memory"));
}

#[test]
fn corrupt_index_snapshot_is_rejected() {
    let dir = temp_dir("s1-idx-corrupt");
    {
        let server = Scheme1Server::open_durable(64, &dir).unwrap();
        let mut client = Scheme1Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            MasterKey::from_seed(5),
            Scheme1Config::fast_profile(64),
            1,
        );
        client.store(&docs()).unwrap();
        client
            .transport_mut()
            .service_mut()
            .checkpoint(&dir)
            .unwrap();
    }
    let snap = dir.join("scheme1.index");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&snap, &bytes).unwrap();
    assert!(Scheme1Server::open_durable(64, &dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn scheme1_index_capacity_mismatch_is_rejected() {
    let dir = temp_dir("s1-idx-cap");
    {
        let server = Scheme1Server::open_durable(64, &dir).unwrap();
        server.checkpoint(&dir).unwrap();
    }
    // Reopen with a different capacity: the snapshot must not silently load.
    assert!(Scheme1Server::open_durable(128, &dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_wal_tail_does_not_lose_acknowledged_docs() {
    use std::io::Write;
    let dir = temp_dir("torn");
    {
        let mut store = sse_repro::storage::store::DocStore::open(
            &dir,
            sse_repro::storage::store::StoreOptions::default(),
        )
        .unwrap();
        store.put(1, b"acked-one").unwrap();
        store.put(2, b"acked-two").unwrap();
    }
    // Crash mid-append: garbage frame at the tail.
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("store.wal"))
            .unwrap();
        f.write_all(&999u32.to_le_bytes()).unwrap();
        f.write_all(b"torn").unwrap();
    }
    let store = sse_repro::storage::store::DocStore::open(
        &dir,
        sse_repro::storage::store::StoreOptions::default(),
    )
    .unwrap();
    assert_eq!(store.get(1).unwrap(), b"acked-one");
    assert_eq!(store.get(2).unwrap(), b"acked-two");
    assert_eq!(store.len(), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_then_more_updates_then_restart() {
    let dir = temp_dir("ckpt-mix");
    {
        let mut store = sse_repro::storage::store::DocStore::open(
            &dir,
            sse_repro::storage::store::StoreOptions::default(),
        )
        .unwrap();
        for i in 0..30u64 {
            store.put(i, format!("pre-{i}").as_bytes()).unwrap();
        }
        store.checkpoint().unwrap();
        for i in 30..40u64 {
            store.put(i, format!("post-{i}").as_bytes()).unwrap();
        }
        store.delete(5).unwrap();
    }
    let store = sse_repro::storage::store::DocStore::open(
        &dir,
        sse_repro::storage::store::StoreOptions::default(),
    )
    .unwrap();
    assert_eq!(store.len(), 39);
    assert_eq!(store.get(0).unwrap(), b"pre-0");
    assert_eq!(store.get(39).unwrap(), b"post-39");
    assert!(!store.contains(5));
    std::fs::remove_dir_all(&dir).unwrap();
}
