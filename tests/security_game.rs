//! The adaptive-security claim (Theorem 1) as a regression test: the
//! simulator's views must be statistically indistinguishable from real
//! views, and the harness must still catch a deliberately broken scheme.

use sse_repro::core::scheme1::Scheme1Config;
use sse_repro::core::security::{
    estimate_advantage, extract_scheme1_view, simulate_view, History, SimulatorParams, Statistic,
    Trace,
};
use sse_repro::core::types::{Keyword, MasterKey};
use sse_repro::phr::workload::{generate_corpus, CorpusConfig};

struct Populations {
    real: Vec<Vec<u8>>,
    simulated: Vec<Vec<u8>>,
    simulated2: Vec<Vec<u8>>,
    broken: Vec<Vec<u8>>,
}

fn build_populations(trials: u64) -> Populations {
    let config = Scheme1Config::fast_profile(64);
    let docs = generate_corpus(&CorpusConfig {
        docs: 20,
        vocab_size: 48,
        keywords_per_doc: (2, 4),
        payload_bytes: 32,
        seed: 0xE8,
        ..CorpusConfig::default()
    });
    // Adaptive flavor: repeated and fresh queries mixed.
    let queries = vec![
        Keyword::new("kw-00000"),
        Keyword::new("kw-00002"),
        Keyword::new("kw-00000"),
        Keyword::new("kw-00005"),
    ];
    let history = History::new(docs, queries);
    let trace = Trace::from_history(&history);
    let params = SimulatorParams::from_config(&config);

    let real = (0..trials)
        .map(|i| {
            let key = MasterKey::from_seed(50_000 + i);
            extract_scheme1_view(&history, &key, config.clone(), i, false).index_bytes_only()
        })
        .collect();
    let broken = (0..trials)
        .map(|i| {
            let key = MasterKey::from_seed(50_000 + i);
            extract_scheme1_view(&history, &key, config.clone(), i, true).index_bytes_only()
        })
        .collect();
    let simulated = (0..trials)
        .map(|i| simulate_view(&trace, &params, 90_000 + i).index_bytes_only())
        .collect();
    let simulated2 = (0..trials)
        .map(|i| simulate_view(&trace, &params, 70_000 + i).index_bytes_only())
        .collect();
    Populations {
        real,
        simulated,
        simulated2,
        broken,
    }
}

#[test]
fn real_views_are_indistinguishable_from_simulated() {
    let p = build_populations(60);
    for &stat in Statistic::all() {
        let floor = estimate_advantage(stat, &p.simulated, &p.simulated2).advantage;
        let honest = estimate_advantage(stat, &p.real, &p.simulated).advantage;
        // The honest advantage must be within sampling noise of the floor.
        assert!(
            honest <= floor + 0.25,
            "{}: advantage {honest:.3} far above noise floor {floor:.3}",
            stat.name()
        );
    }
}

#[test]
fn broken_mask_is_detected() {
    let p = build_populations(40);
    // Posting bit arrays are overwhelmingly zero: bit density nails it.
    let r = estimate_advantage(Statistic::BitDensity, &p.broken, &p.simulated);
    assert!(
        r.advantage > 0.9,
        "bit-density must expose the unmasked index, got {:.3}",
        r.advantage
    );
    assert!(
        r.mean_a < r.mean_b,
        "broken views must have lower ones-density than simulated"
    );
}

#[test]
fn simulated_views_have_correct_structure() {
    let config = Scheme1Config::fast_profile(64);
    let docs = generate_corpus(&CorpusConfig {
        docs: 10,
        vocab_size: 30,
        seed: 0xE9,
        ..CorpusConfig::default()
    });
    let history = History::new(docs, vec![Keyword::new("kw-00001")]);
    let trace = Trace::from_history(&history);
    let params = SimulatorParams::from_config(&config);

    let key = MasterKey::from_seed(123);
    let real = extract_scheme1_view(&history, &key, config, 0, false);
    let sim = simulate_view(&trace, &params, 0);

    // Same number of docs, same blob lengths, same table arity, same
    // trapdoor count — the simulator reproduces everything the trace fixes.
    assert_eq!(real.ids, sim.ids);
    assert_eq!(real.encrypted_docs.len(), sim.encrypted_docs.len());
    for (r, s) in real.encrypted_docs.iter().zip(sim.encrypted_docs.iter()) {
        assert_eq!(r.len(), s.len(), "ciphertext lengths are public");
    }
    assert_eq!(real.representations.len(), sim.representations.len());
    for (r, s) in real.representations.iter().zip(sim.representations.iter()) {
        assert_eq!(r.1.len(), s.1.len(), "masked index width");
        assert_eq!(r.2.len(), s.2.len(), "F(r) width");
    }
    assert_eq!(real.trapdoors.len(), sim.trapdoors.len());
    assert_eq!(real.to_bytes().len(), sim.to_bytes().len());
}

#[test]
fn trace_never_contains_keywords_or_plaintext() {
    // Structural guarantee: serialize the trace's contents and check that
    // no query keyword and no document plaintext appears in it.
    let docs = vec![
        sse_repro::core::types::Document::new(0, b"SECRET-PAYLOAD".to_vec(), ["confidential-kw"]),
        sse_repro::core::types::Document::new(
            1,
            b"OTHER-PAYLOAD".to_vec(),
            ["confidential-kw", "second-kw"],
        ),
    ];
    let history = History::new(docs, vec![Keyword::new("confidential-kw")]);
    let trace = Trace::from_history(&history);
    let rendered = format!("{trace:?}");
    assert!(!rendered.contains("confidential-kw"));
    assert!(!rendered.contains("SECRET-PAYLOAD"));
    // The trace does carry result ids and sizes — by design.
    assert!(rendered.contains("unique_keywords: 2"));
}
