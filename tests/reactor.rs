//! Reactor-specific regression tests over real sockets: slow-loris and
//! slow-reader clients must be evicted with bounded memory, and a reactor
//! thread that dies mid-load must trip a graceful, accounted shutdown.

use sse_repro::net::frame::encode_frame;
use sse_repro::server::daemon::{Daemon, ServerConfig};
use sse_repro::server::proto::{
    self, Hello, SchemeId, ADMIN_STATS, HELLO_SEQ, KIND_ADMIN, STATUS_OK,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn hello_bytes() -> Vec<u8> {
    encode_frame(
        &Hello {
            tenant: "reactor-test".into(),
            scheme: SchemeId::Scheme1,
        }
        .encode(),
    )
}

/// Read exactly one `[len][body]` frame.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut body)?;
    Ok(body)
}

fn expect_ok(stream: &mut TcpStream, seq: u32) {
    let body = read_frame(stream).expect("response frame");
    let (status, got_seq, _) = proto::decode_response(&body).expect("response envelope");
    assert_eq!((status, got_seq), (STATUS_OK, seq));
}

/// Poll the daemon's stats until `pred` holds or the deadline passes.
fn wait_for_stats(
    daemon: &Daemon,
    deadline: Duration,
    pred: impl Fn(&sse_repro::server::proto::StatsSnapshot) -> bool,
) -> sse_repro::server::proto::StatsSnapshot {
    let start = Instant::now();
    loop {
        let snap = daemon.stats();
        if pred(&snap) || start.elapsed() > deadline {
            return snap;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A client dripping one header byte per tick never completes a frame, so
/// it never counts as activity: the idle deadline reaps it even though
/// the socket is "busy". (The thread-per-connection daemon had the same
/// deadline; the regression risk is the reactor resetting the clock on
/// partial reads.)
#[test]
fn slow_loris_client_is_reaped_by_the_idle_deadline() {
    let daemon = Daemon::spawn(ServerConfig {
        workers: 1,
        idle_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = daemon.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    // A frame that will never complete: 1000 declared bytes, dripped one
    // byte per 30ms. 150ms idle deadline ⇒ reaped after ~5 drips.
    let mut doomed = 1000u32.to_le_bytes().to_vec();
    doomed.extend_from_slice(&[0u8; 8]);
    let start = Instant::now();
    let mut evicted = false;
    for byte in doomed.iter() {
        if stream.write_all(std::slice::from_ref(byte)).is_err() {
            evicted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(30));
        if start.elapsed() > Duration::from_secs(3) {
            break;
        }
    }
    if !evicted {
        // Writes may keep landing in kernel buffers after the server
        // closed; a read observes the close (EOF or reset) directly.
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut buf = [0u8; 1];
        evicted = matches!(stream.read(&mut buf), Ok(0) | Err(_));
    }
    assert!(evicted, "slow-loris client still connected after deadline");
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "eviction took too long: {:?}",
        start.elapsed()
    );
    let snap = wait_for_stats(&daemon, Duration::from_secs(2), |s| {
        s.conns_idle_reaped >= 1
    });
    assert!(
        snap.conns_idle_reaped >= 1,
        "idle reap not counted: {snap:?}"
    );
    daemon.shutdown();
}

/// A client that floods requests and never reads its responses must hit
/// the bounded write queue and be disconnected — the daemon's memory
/// stays flat instead of buffering responses without bound.
#[test]
fn never_draining_reader_is_disconnected_at_the_write_queue_bound() {
    let daemon = Daemon::spawn(ServerConfig {
        workers: 1,
        queue_depth: 64,
        // Small bound so the test hits it within kernel-buffer noise:
        // each ADMIN_STATS response is a few hundred bytes.
        write_queue_limit: 8 * 1024,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = daemon.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&hello_bytes()).unwrap();
    expect_ok(&mut stream, HELLO_SEQ);

    // Pipeline thousands of stats requests without ever reading. The
    // responses fill the kernel send buffer, then the reactor's write
    // queue, then the bound trips and the connection is cut.
    let request = encode_frame(&proto::encode_request(KIND_ADMIN, 1, &[ADMIN_STATS]));
    let mut burst = Vec::with_capacity(request.len() * 64);
    for _ in 0..64 {
        burst.extend_from_slice(&request);
    }
    let start = Instant::now();
    let mut disconnected = false;
    while start.elapsed() < Duration::from_secs(10) {
        if stream.write_all(&burst).is_err() {
            disconnected = true;
            break;
        }
    }
    assert!(disconnected, "slow reader was never disconnected");
    let snap = wait_for_stats(&daemon, Duration::from_secs(2), |s| {
        s.slow_reader_disconnects >= 1
    });
    assert!(
        snap.slow_reader_disconnects >= 1,
        "disconnect not counted as slow reader: {snap:?}"
    );
    daemon.shutdown();
}

/// Killing the reactor thread mid-load must start a graceful drain (the
/// daemon can never accept again) and be visible in the shutdown report
/// as a panicked thread — not read as a clean exit.
#[test]
fn reactor_panic_mid_load_trips_shutdown_and_is_counted() {
    let daemon = Daemon::spawn(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = daemon.local_addr();

    // Background load that tolerates the daemon dying under it.
    let clients: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let Ok(mut stream) = TcpStream::connect(addr) else {
                    return;
                };
                let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
                if stream.write_all(&hello_bytes()).is_err() {
                    return;
                }
                let _ = read_frame(&mut stream);
                let request = encode_frame(&proto::encode_request(KIND_ADMIN, 2, &[ADMIN_STATS]));
                for _ in 0..200 {
                    if stream.write_all(&request).is_err() || read_frame(&mut stream).is_err() {
                        return;
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(50));
    daemon.inject_reactor_panic();

    // The dying reactor must request shutdown itself; bounded wait so a
    // regression fails the test instead of hanging it.
    let signal = daemon.shutdown_signal();
    let start = Instant::now();
    while !signal.is_requested() && start.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        signal.is_requested(),
        "reactor death did not trip the shutdown signal"
    );
    for join in clients {
        let _ = join.join();
    }

    let report = daemon.shutdown();
    assert!(
        report.threads_panicked >= 1,
        "reactor panic not counted: {report:?}"
    );
    // Workers still drained cleanly.
    assert_eq!(report.workers_joined, 2);
}
