//! Degradation round-trip tests: disk-full and failed-fsync faults must
//! degrade a tenant gracefully, never lose an acked write, and heal.
//!
//! Two layers, mirroring `fault_injection.rs`'s sweep style:
//!
//! * **Scheme-server sweeps** — a seeded trace is first run under a
//!   counting [`FaultVfs`] to enumerate every group-commit write point
//!   and every fsync point, then re-run once per point with a one-write
//!   ENOSPC window (or a one-shot `fail_sync_at`) parked on that point.
//!   The op that hits the fault must fail cleanly and flip the server to
//!   `Degraded`; every keyword must still answer with at least the acked
//!   prefix (and nothing beyond the one in-doubt op) while degraded;
//!   `repair()` must restore `Healthy`; the failed op retried plus the
//!   rest of the trace must then land; and a real-filesystem reopen must
//!   match the full oracle — zero acked writes lost.
//!
//! * **Daemon round trip** — a durable daemon runs over a [`FaultVfs`]
//!   with a seeded ENOSPC window and a fast background scrub. Stores are
//!   driven until one hits the full disk: the tenant must report
//!   `Degraded`, a search must return byte-identical results to its
//!   pre-degradation baseline, and re-issuing the failed store must
//!   succeed *through* the transport's `STATUS_DEGRADED` backoff (the op
//!   backs off, it is not dropped) once the scrub's probe write clears
//!   the window. Graceful shutdown then a fault-free restart must serve
//!   the same results to a fresh client.
//!
//! Both layers run per storage backend; `FAULT_BACKEND=btree|lsm`
//! narrows a run so CI can matrix the suite, and `FAULT_SEED` reseeds
//! the schedules.

use sse_repro::core::health::HealthState;
use sse_repro::core::scheme1::{Scheme1Client, Scheme1Config, Scheme1Server};
use sse_repro::core::scheme2::{Scheme2Client, Scheme2ClientState, Scheme2Config, Scheme2Server};
use sse_repro::core::types::{Document, Keyword, MasterKey, SearchHits};
use sse_repro::net::link::MeteredLink;
use sse_repro::net::meter::Meter;
use sse_repro::server::daemon::{Daemon, ServerConfig};
use sse_repro::server::proto::SchemeId;
use sse_repro::server::tenant::TenantParams;
use sse_repro::server::transport::TcpTransport;
use sse_repro::storage::{BackendKind, FaultConfig, FaultVfs, RealVfs};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const KEYWORDS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
/// Scheme 1 document-id capacity for the scheme-server sweeps.
const CAPACITY: u64 = 64;
/// Length of the sweep trace (short: the sweep reruns it once per write
/// point *and* once per sync point, per scheme, per backend).
const TRACE_OPS: usize = 24;

fn fault_seed() -> u64 {
    std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD15A57E2)
}

fn fault_backends() -> Vec<BackendKind> {
    match std::env::var("FAULT_BACKEND") {
        Ok(s) => vec![s.parse().expect("FAULT_BACKEND must be btree or lsm")],
        Err(_) => BackendKind::all().to_vec(),
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sse-degr-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

enum Op {
    Store(Document),
    Search(Keyword),
}

fn is_mutation(op: &Op) -> bool {
    matches!(op, Op::Store(_))
}

fn doc_data(id: u64) -> Vec<u8> {
    format!("doc-{id}").into_bytes()
}

/// Seeded mixed trace: ~70% single-document stores (1–2 keywords, so
/// mutations routinely straddle the 2-shard server's journals), ~30%
/// searches.
fn build_trace(seed: u64) -> Vec<Op> {
    let mut ops = Vec::with_capacity(TRACE_OPS);
    let mut next_id = 0u64;
    for i in 0..TRACE_OPS {
        let roll = splitmix64(seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        if roll % 10 < 3 && next_id > 0 {
            let kw = KEYWORDS[(roll >> 8) as usize % KEYWORDS.len()];
            ops.push(Op::Search(Keyword::new(kw)));
        } else {
            let id = next_id;
            next_id += 1;
            assert!(id < CAPACITY, "trace outgrew the scheme-1 capacity");
            let mut kws = BTreeSet::new();
            kws.insert(KEYWORDS[(roll >> 8) as usize % KEYWORDS.len()]);
            kws.insert(KEYWORDS[(roll >> 16) as usize % KEYWORDS.len()]);
            ops.push(Op::Store(Document::new(id, doc_data(id), kws)));
        }
    }
    ops
}

/// Keyword → set of matching doc ids: the observable state of an index.
type Index = BTreeMap<Keyword, BTreeSet<u64>>;

fn empty_index() -> Index {
    KEYWORDS
        .iter()
        .map(|k| (Keyword::new(*k), BTreeSet::new()))
        .collect()
}

/// `oracle[c]` = the true index after the first `c` ops of `trace`.
fn oracle_states(trace: &[Op]) -> Vec<Index> {
    let mut states = Vec::with_capacity(trace.len() + 1);
    let mut cur = empty_index();
    states.push(cur.clone());
    for op in trace {
        if let Op::Store(doc) = op {
            for kw in &doc.keywords {
                cur.get_mut(kw).unwrap().insert(doc.id);
            }
        }
        states.push(cur.clone());
    }
    states
}

fn ids_checked(hits: &SearchHits) -> BTreeSet<u64> {
    for (id, data) in hits {
        assert_eq!(*data, doc_data(*id), "corrupt payload for doc {id}");
    }
    hits.iter().map(|(id, _)| *id).collect()
}

fn observe(mut search: impl FnMut(&Keyword) -> SearchHits) -> Index {
    KEYWORDS
        .iter()
        .map(|k| {
            let kw = Keyword::new(*k);
            let ids = ids_checked(&search(&kw));
            (kw, ids)
        })
        .collect()
}

/// While degraded, the observable index must hold at least everything
/// acked before the failed op (`lo`) and nothing beyond the one in-doubt
/// op (`hi`) — per keyword, because a multi-shard mutation that failed
/// mid-commit may be visible for some of its keywords and not others
/// until the retry settles it.
fn assert_between(observed: &Index, lo: &Index, hi: &Index, context: &str) {
    for (kw, seen) in observed {
        assert!(
            lo[kw].is_subset(seen),
            "{context}: acked doc(s) missing under {kw:?}: acked {:?}, saw {seen:?}",
            lo[kw]
        );
        assert!(
            seen.is_subset(&hi[kw]),
            "{context}: phantom doc(s) under {kw:?}: saw {seen:?}, at most {:?}",
            hi[kw]
        );
    }
}

/// The fault a sweep iteration parks on one scheduled I/O point.
#[derive(Clone, Copy, Debug)]
enum FaultPoint {
    /// One-write ENOSPC window at the N-th `write_all` (stage/append —
    /// every buffer the group-commit path schedules).
    Enospc(u64),
    /// Failed fsync at the N-th `sync_data` (the group-commit barrier).
    FailedSync(u64),
}

impl FaultPoint {
    fn config(self, seed: u64) -> FaultConfig {
        match self {
            FaultPoint::Enospc(w) => FaultConfig {
                seed,
                enospc_start: Some(w),
                enospc_len: 1,
                ..FaultConfig::default()
            },
            FaultPoint::FailedSync(k) => FaultConfig {
                seed,
                fail_sync_at: Some(k),
                ..FaultConfig::default()
            },
        }
    }
}

/// Enumerate the trace's write and sync points with a fault-free
/// counting run (the counts depend only on the op sequence, so they
/// transfer to the fault runs).
fn count_points(writes: u64, syncs: u64) -> Vec<FaultPoint> {
    assert!(writes > 0, "workload scheduled no writes");
    assert!(syncs > 0, "workload scheduled no fsyncs");
    (1..=writes)
        .map(FaultPoint::Enospc)
        .chain((1..=syncs).map(FaultPoint::FailedSync))
        .collect()
}

// ---------------------------------------------------------------------------
// Scheme-server degradation sweeps
// ---------------------------------------------------------------------------

const SWEEP_SHARDS: usize = 2;

fn drive_scheme1<T: sse_repro::net::link::Transport>(
    client: &mut Scheme1Client<T>,
    op: &Op,
) -> sse_repro::core::error::Result<()> {
    match op {
        Op::Store(doc) => client.store(std::slice::from_ref(doc)),
        Op::Search(kw) => client.search(kw).map(|_| ()),
    }
}

fn drive_scheme2<T: sse_repro::net::link::Transport>(
    client: &mut Scheme2Client<T>,
    op: &Op,
) -> sse_repro::core::error::Result<()> {
    match op {
        Op::Store(doc) => client.store(std::slice::from_ref(doc)),
        Op::Search(kw) => client.search(kw).map(|_| ()),
    }
}

/// Shared body of the scheme-1 sweeps. For every enumerated fault point:
/// fail → assert Degraded + acked-prefix searches → `repair()` → assert
/// Healthy → retry the failed op → finish the trace → full-oracle check
/// in-process and again through a real-filesystem reopen.
fn scheme1_degradation_sweep(trace: &[Op], seed: u64, backend: BackendKind) {
    let oracle = oracle_states(trace);
    let config = Scheme1Config::fast_profile(CAPACITY);
    let key = MasterKey::from_seed(seed ^ 0xD1);

    let count_dir = temp_dir("s1-count");
    let counting = FaultVfs::counting();
    let stats = counting.stats();
    {
        let server = Scheme1Server::open_durable_with_backend(
            Arc::new(counting),
            CAPACITY,
            &count_dir,
            SWEEP_SHARDS,
            true,
            backend,
        )
        .unwrap();
        let mut client = Scheme1Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            1,
        );
        for op in trace {
            drive_scheme1(&mut client, op).unwrap();
        }
    }
    let points = count_points(stats.writes(), stats.syncs_seen.load(Ordering::Relaxed));
    let _ = std::fs::remove_dir_all(&count_dir);

    let mut degraded_points = 0u64;
    for point in points {
        let ctx = format!("{point:?} ({backend} backend)");
        let dir = temp_dir("s1-sweep");
        let vfs = FaultVfs::new(RealVfs::arc(), point.config(seed));
        let Ok(server) = Scheme1Server::open_durable_with_backend(
            Arc::new(vfs),
            CAPACITY,
            &dir,
            SWEEP_SHARDS,
            true,
            backend,
        ) else {
            // The fault landed inside the initial open; the "process"
            // never came up. Degradation starts from a live server only.
            let _ = std::fs::remove_dir_all(&dir);
            continue;
        };
        let health = Arc::clone(server.health());
        let mut client = Scheme1Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            1,
        );

        let mut failed_at: Option<usize> = None;
        for (i, op) in trace.iter().enumerate() {
            if drive_scheme1(&mut client, op).is_err() {
                failed_at = Some(i);
                break;
            }
        }
        if let Some(f) = failed_at {
            degraded_points += 1;
            assert_eq!(
                health.state(),
                HealthState::Degraded,
                "{ctx}: failed op {f} must degrade the server"
            );
            assert!(
                !health.reason().is_empty(),
                "{ctx}: degraded without reason"
            );

            // Read-only serving while degraded: every acked doc, no
            // phantom beyond the one in-doubt op.
            let observed = observe(|kw| client.search(kw).unwrap());
            let hi = (f + 1).min(oracle.len() - 1);
            assert_between(&observed, &oracle[f], &oracle[hi], &ctx);

            // Scrub-style repair: the one-shot fault has passed, so the
            // probe write must land and promote the server back.
            client.transport_mut().service_mut().repair().unwrap();
            assert_eq!(health.state(), HealthState::Healthy, "{ctx}: repair");
            let (degradations, recoveries, quarantines) = health.transition_counts();
            assert!(degradations >= 1 && recoveries >= 1, "{ctx}: transitions");
            assert_eq!(quarantines, 0, "{ctx}: ENOSPC must never quarantine");

            // The client retries its in-doubt op, then finishes the
            // trace; the healed server must take all of it.
            for op in &trace[f..] {
                drive_scheme1(&mut client, op).unwrap();
            }
        } else {
            assert_eq!(
                health.state(),
                HealthState::Healthy,
                "{ctx}: no op failed, yet the server degraded"
            );
        }

        let observed = observe(|kw| client.search(kw).unwrap());
        assert_eq!(
            &observed,
            oracle.last().unwrap(),
            "{ctx}: post-recovery state diverged from the oracle"
        );
        drop(client);

        // Restart differential: reopen through the real filesystem — the
        // degradation episode must not have cost a single acked write.
        let server = Scheme1Server::open_durable_with_backend(
            RealVfs::arc(),
            CAPACITY,
            &dir,
            SWEEP_SHARDS,
            true,
            backend,
        )
        .unwrap();
        let mut probe = Scheme1Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            7,
        );
        let observed = observe(|kw| probe.search(kw).unwrap());
        assert_eq!(
            &observed,
            oracle.last().unwrap(),
            "{ctx}: reopened state diverged from the oracle"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        degraded_points > 0,
        "sweep never produced a degradation ({backend} backend)"
    );
}

/// Scheme-2 twin of [`scheme1_degradation_sweep`]. `CtrPolicy::Always`
/// (the base profile) makes the client counter a pure function of
/// attempted updates, so the restart probe can restore it blindly.
fn scheme2_degradation_sweep(trace: &[Op], seed: u64, backend: BackendKind) {
    let oracle = oracle_states(trace);
    let config = Scheme2Config::base(512);
    let key = MasterKey::from_seed(seed ^ 0xD2);

    let count_dir = temp_dir("s2-count");
    let counting = FaultVfs::counting();
    let stats = counting.stats();
    {
        let server = Scheme2Server::open_durable_with_backend(
            Arc::new(counting),
            config.clone(),
            &count_dir,
            SWEEP_SHARDS,
            true,
            backend,
        )
        .unwrap();
        let mut client = Scheme2Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            1,
        );
        for op in trace {
            drive_scheme2(&mut client, op).unwrap();
        }
    }
    let points = count_points(stats.writes(), stats.syncs_seen.load(Ordering::Relaxed));
    let _ = std::fs::remove_dir_all(&count_dir);

    let mut degraded_points = 0u64;
    for point in points {
        let ctx = format!("{point:?} ({backend} backend)");
        let dir = temp_dir("s2-sweep");
        let vfs = FaultVfs::new(RealVfs::arc(), point.config(seed));
        let Ok(server) = Scheme2Server::open_durable_with_backend(
            Arc::new(vfs),
            config.clone(),
            &dir,
            SWEEP_SHARDS,
            true,
            backend,
        ) else {
            let _ = std::fs::remove_dir_all(&dir);
            continue;
        };
        let health = Arc::clone(server.health());
        let mut client = Scheme2Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            1,
        );

        let mut attempted_updates = 0u64;
        let mut failed_at: Option<usize> = None;
        for (i, op) in trace.iter().enumerate() {
            // Write-ahead counting, as in the crash sweeps: the restored
            // counter must be valid whether or not the op landed.
            if is_mutation(op) {
                attempted_updates += 1;
            }
            if drive_scheme2(&mut client, op).is_err() {
                failed_at = Some(i);
                break;
            }
        }
        if let Some(f) = failed_at {
            degraded_points += 1;
            assert_eq!(
                health.state(),
                HealthState::Degraded,
                "{ctx}: failed op {f} must degrade the server"
            );
            assert!(
                !health.reason().is_empty(),
                "{ctx}: degraded without reason"
            );

            let observed = observe(|kw| client.search(kw).unwrap());
            let hi = (f + 1).min(oracle.len() - 1);
            assert_between(&observed, &oracle[f], &oracle[hi], &ctx);

            client.transport_mut().service_mut().repair().unwrap();
            assert_eq!(health.state(), HealthState::Healthy, "{ctx}: repair");
            let (degradations, recoveries, quarantines) = health.transition_counts();
            assert!(degradations >= 1 && recoveries >= 1, "{ctx}: transitions");
            assert_eq!(quarantines, 0, "{ctx}: ENOSPC must never quarantine");

            for op in &trace[f..] {
                if is_mutation(op) {
                    attempted_updates += 1;
                }
                drive_scheme2(&mut client, op).unwrap();
            }
        } else {
            assert_eq!(
                health.state(),
                HealthState::Healthy,
                "{ctx}: no op failed, yet the server degraded"
            );
        }

        let observed = observe(|kw| client.search(kw).unwrap());
        assert_eq!(
            &observed,
            oracle.last().unwrap(),
            "{ctx}: post-recovery state diverged from the oracle"
        );
        drop(client);

        let server = Scheme2Server::open_durable_with_backend(
            RealVfs::arc(),
            config.clone(),
            &dir,
            SWEEP_SHARDS,
            true,
            backend,
        )
        .unwrap();
        let mut probe = Scheme2Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            7,
        );
        probe.restore_state(Scheme2ClientState {
            ctr: attempted_updates,
            epoch: 0,
            searched_since_update: true,
        });
        let observed = observe(|kw| probe.search(kw).unwrap());
        assert_eq!(
            &observed,
            oracle.last().unwrap(),
            "{ctx}: reopened state diverged from the oracle"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        degraded_points > 0,
        "sweep never produced a degradation ({backend} backend)"
    );
}

// ---------------------------------------------------------------------------
// Daemon degradation round trip
// ---------------------------------------------------------------------------

/// One client of either scheme over the daemon's TCP transport.
enum DaemonClient {
    S1(Scheme1Client<TcpTransport>),
    S2(Scheme2Client<TcpTransport>),
}

impl DaemonClient {
    fn connect(
        addr: std::net::SocketAddr,
        scheme: SchemeId,
        key: &MasterKey,
        capacity: u64,
        rng_seed: u64,
    ) -> Self {
        let transport = TcpTransport::connect(addr, "degr", scheme).unwrap();
        match scheme {
            SchemeId::Scheme1 => DaemonClient::S1(Scheme1Client::new_seeded(
                transport,
                key.clone(),
                Scheme1Config::fast_profile(capacity),
                rng_seed,
            )),
            SchemeId::Scheme2 => DaemonClient::S2(Scheme2Client::new_seeded(
                transport,
                key.clone(),
                Scheme2Config::standard(),
                rng_seed,
            )),
        }
    }

    fn store(&mut self, doc: &Document) -> sse_repro::core::error::Result<()> {
        match self {
            DaemonClient::S1(c) => c.store(std::slice::from_ref(doc)),
            DaemonClient::S2(c) => c.store(std::slice::from_ref(doc)),
        }
    }

    fn search(&mut self, kw: &str) -> SearchHits {
        let kw = Keyword::new(kw);
        let mut hits = match self {
            DaemonClient::S1(c) => c.search(&kw).unwrap(),
            DaemonClient::S2(c) => c.search(&kw).unwrap(),
        };
        hits.sort();
        hits
    }

    fn degraded_retries(&mut self) -> u64 {
        match self {
            DaemonClient::S1(c) => c.transport_mut().degraded_retries(),
            DaemonClient::S2(c) => c.transport_mut().degraded_retries(),
        }
    }
}

/// The acceptance round trip: a durable daemon over a seeded ENOSPC
/// window with a fast background scrub.
///
/// 1. Stores under a `stable` keyword land, and its search is baselined.
/// 2. Churn stores run until one hits the full disk: the tenant must be
///    `Degraded`, and the `stable` search must be byte-identical to the
///    baseline while it is.
/// 3. The failed store is re-issued: the transport must absorb
///    `STATUS_DEGRADED` with backoff (retries counted, op not dropped)
///    until the scrub's probe write clears the window, then succeed.
/// 4. Stats must show the degradation, the scrub repair and the recovery;
///    shutdown must join every thread with zero panics.
/// 5. A fault-free restart must serve every acked doc to a fresh client.
fn daemon_degradation_round_trip(scheme: SchemeId, backend: BackendKind) {
    const STABLE_DOCS: u64 = 5;
    const MAX_CHURN: u64 = 250;

    let seed = fault_seed();
    let data_dir = temp_dir(&format!("daemon-{scheme:?}-{backend}"));
    let params = TenantParams {
        shards: 2,
        backend,
        ..TenantParams::default()
    };
    let capacity = params.scheme1_capacity;
    let key = MasterKey::from_seed(seed ^ 0xDAE);

    // The window opens well past tenant creation and the stable phase,
    // wide enough that recovery takes several scrub probe writes — the
    // degraded phase is long enough to observe, short enough to heal
    // within the transport's retry deadline.
    let fault = FaultConfig {
        seed,
        enospc_start: Some(300),
        enospc_len: 20,
        ..FaultConfig::default()
    };
    let config = ServerConfig {
        workers: 2,
        queue_depth: 32,
        tenant_params: params,
        data_dir: Some(data_dir.clone()),
        fault: Some(fault),
        scrub_interval: Some(Duration::from_millis(50)),
        ..ServerConfig::default()
    };
    let daemon = Daemon::spawn(config).unwrap();
    let addr = daemon.local_addr();
    let mut client = DaemonClient::connect(addr, scheme, &key, capacity, 1);

    // Keyword → acked doc ids, the differential oracle for every later
    // verification pass.
    let mut acked: BTreeMap<String, BTreeSet<u64>> = BTreeMap::new();
    for id in 0..STABLE_DOCS {
        client
            .store(&Document::new(id, doc_data(id), ["stable"]))
            .unwrap();
        acked.entry("stable".into()).or_default().insert(id);
    }
    let baseline = client.search("stable");
    assert_eq!(baseline.len(), STABLE_DOCS as usize);

    // Churn until a store hits the ENOSPC window. Each churn doc gets its
    // own keyword so the failed one is in-doubt for exactly one keyword.
    let mut failed: Option<(u64, String)> = None;
    for i in 0..MAX_CHURN {
        let id = 100 + i;
        let kw = format!("churn-{i}");
        match client.store(&Document::new(id, doc_data(id), [kw.as_str()])) {
            Ok(()) => {
                acked.entry(kw).or_default().insert(id);
            }
            Err(_) => {
                failed = Some((id, kw));
                break;
            }
        }
    }
    let (failed_id, failed_kw) = failed
        .unwrap_or_else(|| panic!("{MAX_CHURN} churn stores never reached the ENOSPC window"));

    // The failed write must have flipped the tenant before the error
    // reached the client.
    let stats = daemon.stats();
    assert_eq!(stats.tenants_degraded, 1, "store failed but no degradation");
    assert!(stats.health_degradations >= 1);

    // Read-only serving from the live epoch: byte-identical to the
    // pre-degradation baseline, twice.
    assert_eq!(
        client.search("stable"),
        baseline,
        "degraded search diverged"
    );
    assert_eq!(
        client.search("stable"),
        baseline,
        "degraded search unstable"
    );

    // Re-issue the failed store through the degraded tenant: the worker
    // answers STATUS_DEGRADED, the transport backs off and retries, the
    // background scrub's probe writes burn through the window, and the op
    // finally lands — backed off, never dropped.
    client
        .store(&Document::new(
            failed_id,
            doc_data(failed_id),
            [failed_kw.as_str()],
        ))
        .unwrap();
    acked
        .entry(failed_kw.clone())
        .or_default()
        .insert(failed_id);
    assert!(
        client.degraded_retries() >= 1,
        "the retried store never saw a DEGRADED response"
    );

    // The store's success implies the gate reopened; stats must agree.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = daemon.stats();
        if stats.tenants_degraded == 0 && stats.health_recoveries >= 1 {
            assert!(stats.scrub_passes >= 1, "no scrub pass recorded");
            assert!(stats.scrub_repairs >= 1, "no scrub repair recorded");
            assert!(
                stats.requests_degraded >= 1,
                "no degraded rejection recorded"
            );
            assert_eq!(stats.health_quarantines, 0, "ENOSPC must never quarantine");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "stats never showed the recovery: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Healthy again: a fresh store lands first try, and every acked
    // keyword answers exactly.
    let retries_before = client.degraded_retries();
    client
        .store(&Document::new(900, doc_data(900), ["post-recovery"]))
        .unwrap();
    assert_eq!(
        client.degraded_retries(),
        retries_before,
        "post-recovery store still hit the degraded gate"
    );
    acked.entry("post-recovery".into()).or_default().insert(900);
    assert_eq!(client.search("stable"), baseline);
    for (kw, ids) in &acked {
        assert_eq!(
            &ids_checked(&client.search(kw)),
            ids,
            "healed search under {kw}"
        );
    }

    let saved_state = match &client {
        DaemonClient::S1(_) => None,
        DaemonClient::S2(c) => Some(c.state()),
    };
    drop(client);
    let report = daemon.shutdown();
    assert_eq!(report.threads_panicked, 0, "a daemon thread panicked");
    assert!(report.tenants_checkpointed >= 1);

    // Fault-free restart: a fresh client must see every acked doc — the
    // degradation episode lost nothing across the process boundary.
    let daemon = Daemon::spawn(ServerConfig {
        tenant_params: params,
        data_dir: Some(data_dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut probe = DaemonClient::connect(daemon.local_addr(), scheme, &key, capacity, 9);
    if let (DaemonClient::S2(c), Some(state)) = (&mut probe, saved_state) {
        c.restore_state(state);
    }
    assert_eq!(
        probe.search("stable"),
        baseline,
        "restart lost the baseline"
    );
    for (kw, ids) in &acked {
        assert_eq!(
            &ids_checked(&probe.search(kw)),
            ids,
            "restart search under {kw}"
        );
    }
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn daemon_enospc_degradation_round_trip_scheme1() {
    for backend in fault_backends() {
        daemon_degradation_round_trip(SchemeId::Scheme1, backend);
    }
}

#[test]
fn daemon_enospc_degradation_round_trip_scheme2() {
    for backend in fault_backends() {
        daemon_degradation_round_trip(SchemeId::Scheme2, backend);
    }
}

#[test]
fn scheme1_enospc_and_failed_fsync_at_every_commit_point_degrade_and_recover() {
    let seed = fault_seed();
    for backend in fault_backends() {
        scheme1_degradation_sweep(&build_trace(seed), seed, backend);
    }
}

#[test]
fn scheme2_enospc_and_failed_fsync_at_every_commit_point_degrade_and_recover() {
    let seed = fault_seed();
    for backend in fault_backends() {
        scheme2_degradation_sweep(&build_trace(seed), seed, backend);
    }
}
