//! End-to-end behavior of the storage-backend ADT that the per-trait
//! conformance and crash sweeps don't cover:
//!
//! * a durable tenant written by one backend refuses to open under the
//!   other with a clean, actionable manifest error (both schemes, both
//!   directions);
//! * a checkpoint whose snapshot **rename** is lost to an un-fsynced
//!   directory entry (the `lose_unsynced_renames` fault model) never
//!   loses an acknowledged document — the WAL still covers everything;
//! * an `lsm`-backed daemon tenant surfaces its run/bloom internals
//!   through `STATS` after a wire-driven checkpoint.

use sse_repro::core::scheme1::{Scheme1Client, Scheme1Config, Scheme1Server};
use sse_repro::core::scheme2::{Scheme2Client, Scheme2Config, Scheme2Server};
use sse_repro::core::types::{Document, Keyword, MasterKey};
use sse_repro::net::link::MeteredLink;
use sse_repro::net::meter::Meter;
use sse_repro::server::daemon::{Daemon, ServerConfig};
use sse_repro::server::proto::SchemeId;
use sse_repro::server::tenant::TenantParams;
use sse_repro::server::transport::TcpTransport;
use sse_repro::storage::lsm::LsmDocStore;
use sse_repro::storage::store::{DocStore, StoreOptions};
use sse_repro::storage::{BackendKind, DocBlobStore, FaultConfig, FaultVfs, RealVfs, Vfs};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const CAPACITY: u64 = 128;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sse-bke2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn docs() -> Vec<Document> {
    vec![
        Document::new(1, b"alpha doc".to_vec(), ["alpha", "shared"]),
        Document::new(2, b"beta doc".to_vec(), ["beta", "shared"]),
    ]
}

/// Every (written, requested) backend pair with written != requested.
fn mismatched_pairs() -> Vec<(BackendKind, BackendKind)> {
    let mut pairs = Vec::new();
    for written in BackendKind::all() {
        for requested in BackendKind::all() {
            if written != requested {
                pairs.push((written, requested));
            }
        }
    }
    pairs
}

fn assert_mismatch_error(err: &str, written: BackendKind, requested: BackendKind, context: &str) {
    assert!(
        err.contains("backend mismatch")
            && err.contains(written.as_str())
            && err.contains(requested.as_str()),
        "{context}: expected a clean backend-mismatch error naming \
         `{written}` and `{requested}`, got: {err}"
    );
}

#[test]
fn durable_directory_refuses_the_other_backend() {
    for (written, requested) in mismatched_pairs() {
        // Scheme 1: write real data under `written`, reopen as `requested`.
        let dir = temp_dir(&format!("s1-mismatch-{written}-{requested}"));
        {
            let server = Scheme1Server::open_durable_with_backend(
                RealVfs::arc(),
                CAPACITY,
                &dir,
                1,
                true,
                written,
            )
            .unwrap();
            let mut client = Scheme1Client::new_seeded(
                MeteredLink::new(server, Meter::new()),
                MasterKey::from_seed(7),
                Scheme1Config::fast_profile(CAPACITY),
                7,
            );
            client.store(&docs()).unwrap();
        }
        let err = match Scheme1Server::open_durable_with_backend(
            RealVfs::arc(),
            CAPACITY,
            &dir,
            1,
            true,
            requested,
        ) {
            Ok(_) => panic!("scheme 1 reopen under the wrong backend must fail"),
            Err(e) => e.to_string(),
        };
        assert_mismatch_error(&err, written, requested, "scheme 1");
        let _ = std::fs::remove_dir_all(&dir);

        // Scheme 2: same contract.
        let dir = temp_dir(&format!("s2-mismatch-{written}-{requested}"));
        {
            let server = Scheme2Server::open_durable_with_backend(
                RealVfs::arc(),
                Scheme2Config::standard(),
                &dir,
                1,
                true,
                written,
            )
            .unwrap();
            let mut client = Scheme2Client::new_seeded(
                MeteredLink::new(server, Meter::new()),
                MasterKey::from_seed(7),
                Scheme2Config::standard(),
                7,
            );
            client.store(&docs()).unwrap();
        }
        let err = match Scheme2Server::open_durable_with_backend(
            RealVfs::arc(),
            Scheme2Config::standard(),
            &dir,
            1,
            true,
            requested,
        ) {
            Ok(_) => panic!("scheme 2 reopen under the wrong backend must fail"),
            Err(e) => e.to_string(),
        };
        assert_mismatch_error(&err, written, requested, "scheme 2");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The correct recovery suggestion — reopening under the recorded backend —
/// must actually work, data intact.
#[test]
fn reopening_under_the_recorded_backend_recovers_the_data() {
    for backend in BackendKind::all() {
        let dir = temp_dir(&format!("s2-recorded-{backend}"));
        let key = MasterKey::from_seed(11);
        let state = {
            let server = Scheme2Server::open_durable_with_backend(
                RealVfs::arc(),
                Scheme2Config::standard(),
                &dir,
                1,
                true,
                backend,
            )
            .unwrap();
            let mut client = Scheme2Client::new_seeded(
                MeteredLink::new(server, Meter::new()),
                key.clone(),
                Scheme2Config::standard(),
                11,
            );
            client.store(&docs()).unwrap();
            client.state()
        };
        let server = Scheme2Server::open_durable_with_backend(
            RealVfs::arc(),
            Scheme2Config::standard(),
            &dir,
            1,
            true,
            backend,
        )
        .unwrap();
        let mut client = Scheme2Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key,
            Scheme2Config::standard(),
            11,
        );
        client.restore_state(state);
        let mut hits = client.search(&Keyword::new("shared")).unwrap();
        hits.sort();
        assert_eq!(hits.len(), 2, "{backend}: both stored docs must survive");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// Checkpoint rename loss
// ---------------------------------------------------------------------------

type DocOpener = fn(Arc<dyn Vfs>, &Path) -> sse_repro::storage::Result<Box<dyn DocBlobStore>>;

fn open_doc_btree(
    vfs: Arc<dyn Vfs>,
    dir: &Path,
) -> sse_repro::storage::Result<Box<dyn DocBlobStore>> {
    Ok(Box::new(DocStore::open_with_vfs(
        vfs,
        dir,
        StoreOptions::default(),
    )?))
}

fn open_doc_lsm(
    vfs: Arc<dyn Vfs>,
    dir: &Path,
) -> sse_repro::storage::Result<Box<dyn DocBlobStore>> {
    Ok(Box::new(LsmDocStore::open_with_vfs(
        vfs,
        dir,
        StoreOptions::default(),
    )?))
}

/// The workload whose checkpoint rename we lose: a batch of puts, a
/// checkpoint, more puts, a second checkpoint. Returns acked state.
fn drive_checkpoint_workload(store: &mut dyn DocBlobStore) -> BTreeMap<u64, Vec<u8>> {
    let mut acked = BTreeMap::new();
    for id in 0..8u64 {
        let blob = vec![id as u8 + 1; 20 + id as usize];
        if store.put(id, &blob).is_ok() {
            acked.insert(id, blob);
        } else {
            return acked; // crashed: nothing later can ack
        }
    }
    if store.checkpoint().is_err() {
        return acked;
    }
    for id in 8..12u64 {
        let blob = vec![id as u8 + 1; 20 + id as usize];
        if store.put(id, &blob).is_ok() {
            acked.insert(id, blob);
        } else {
            return acked;
        }
    }
    let _ = store.checkpoint();
    acked
}

/// Satellite crash test: crash at **every** directory-fsync point with
/// un-fsynced renames rolled back. The checkpoint's snapshot rename is
/// then lost exactly as if the directory entry never reached the platter;
/// because the WAL is only reset *after* the rename's dir fsync, recovery
/// must still reproduce every acknowledged put, for both engines.
#[test]
fn checkpoint_rename_loss_never_loses_acked_documents() {
    let seed = 0xC4E5;
    for (name, open) in [
        ("btree", open_doc_btree as DocOpener),
        ("lsm", open_doc_lsm as DocOpener),
    ] {
        // Counting run: how many dir fsyncs does the workload schedule?
        let count_dir = temp_dir(&format!("rl-{name}-count"));
        let counting = FaultVfs::counting();
        let stats = counting.stats();
        {
            let mut store = open(Arc::new(counting), &count_dir).unwrap();
            drive_checkpoint_workload(store.as_mut());
        }
        let dir_syncs = stats.dir_syncs();
        let _ = std::fs::remove_dir_all(&count_dir);
        assert!(
            dir_syncs > 0,
            "{name}: checkpoints must fsync the directory (satellite regression)"
        );

        for k in 1..=dir_syncs {
            let dir = temp_dir(&format!("rl-{name}-{k}"));
            let vfs = FaultVfs::new(
                RealVfs::arc(),
                FaultConfig {
                    seed,
                    crash_at_dir_sync: Some(k),
                    lose_unsynced_renames: true,
                    ..FaultConfig::default()
                },
            );
            let fault_stats = vfs.stats();
            let acked = match open(Arc::new(vfs), &dir) {
                Err(_) => BTreeMap::new(),
                Ok(mut store) => drive_checkpoint_workload(store.as_mut()),
            };
            assert!(
                fault_stats
                    .crashed
                    .load(std::sync::atomic::Ordering::SeqCst),
                "{name}: dir-fsync crash point {k} never fired"
            );
            let store = open(RealVfs::arc(), &dir).unwrap();
            let observed: BTreeMap<u64, Vec<u8>> = store
                .doc_ids()
                .into_iter()
                .map(|id| (id, store.get(id).unwrap()))
                .collect();
            assert_eq!(
                observed, acked,
                "{name}: crash at dir fsync {k} (renames rolled back) \
                 lost or invented documents"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A *failed* (not crashed) directory fsync surfaces as a checkpoint
/// error, the store stays usable, and a later retry checkpoints cleanly.
#[test]
fn failed_dir_fsync_fails_the_checkpoint_but_not_the_store() {
    let dir = temp_dir("rl-fail");
    let vfs = FaultVfs::new(
        RealVfs::arc(),
        FaultConfig {
            seed: 1,
            fail_dir_sync_at: Some(1),
            ..FaultConfig::default()
        },
    );
    let mut store = DocStore::open_with_vfs(Arc::new(vfs), &dir, StoreOptions::default()).unwrap();
    store.put(1, b"first").unwrap();
    let err = DocBlobStore::checkpoint(&mut store)
        .expect_err("checkpoint must report the lost dir fsync");
    assert!(err.to_string().contains("dir fsync"), "got: {err}");
    // The store keeps serving and the next checkpoint (dir fsync 2) works.
    store.put(2, b"second").unwrap();
    DocBlobStore::checkpoint(&mut store).unwrap();
    drop(store);
    let store = DocStore::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(DocBlobStore::get(&store, 1).unwrap(), b"first".to_vec());
    assert_eq!(DocBlobStore::get(&store, 2).unwrap(), b"second".to_vec());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Backend counters over the wire
// ---------------------------------------------------------------------------

/// An `lsm` daemon tenant: updates + a wire CHECKPOINT must show up in the
/// STATS backend counters (runs flushed and live), and search traffic must
/// drive bloom checks. The same counters stay zero for a btree daemon.
#[test]
fn lsm_backend_surfaces_run_counters_through_stats() {
    let data_dir = temp_dir("stats-lsm");
    let daemon = Daemon::spawn(ServerConfig {
        workers: 2,
        data_dir: Some(data_dir.clone()),
        tenant_params: TenantParams {
            backend: BackendKind::Lsm,
            ..TenantParams::default()
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = daemon.local_addr();

    let transport = TcpTransport::connect(addr, "stats-tenant", SchemeId::Scheme2).unwrap();
    let mut client = Scheme2Client::new_seeded(
        transport,
        MasterKey::from_seed(23),
        Scheme2Config::standard(),
        23,
    );
    client.store(&docs()).unwrap();
    client.request_checkpoint().unwrap();
    client
        .store(&[Document::new(3, b"gamma doc".to_vec(), ["gamma", "shared"])])
        .unwrap();
    client.request_checkpoint().unwrap();
    let mut hits = client.search(&Keyword::new("shared")).unwrap();
    hits.sort();
    assert_eq!(hits.len(), 3);

    let stats = daemon.stats();
    assert!(
        stats.backend_runs_flushed >= 2,
        "two checkpoints with dirty tags must flush runs: {stats:?}"
    );
    assert!(
        stats.backend_runs_live >= 1,
        "flushed runs must stay live in the manifest: {stats:?}"
    );
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}
