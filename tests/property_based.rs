//! Property-based integration tests: random operation sequences against a
//! plaintext oracle, for both schemes.

use proptest::prelude::*;
use sse_repro::core::scheme1::{InMemoryScheme1Client, Scheme1Config};
use sse_repro::core::scheme2::{InMemoryScheme2Client, Scheme2Config};
use sse_repro::core::types::{DocId, Document, Keyword, MasterKey};
use std::collections::{BTreeMap, BTreeSet};

/// A compact operation alphabet the strategies generate.
#[derive(Clone, Debug)]
enum Op {
    /// Store a new document with keyword indices from a tiny vocabulary.
    Store { kw_indices: Vec<u8> },
    /// Search one vocabulary keyword.
    Search { kw_index: u8 },
    /// Remove a previously stored document (deletion extension; Scheme 2
    /// arm only — Scheme 1 removal is the XOR toggle, tested separately).
    Remove { victim: usize },
}

const VOCAB: usize = 12;

fn kw(i: u8) -> Keyword {
    Keyword::new(format!("vocab-{}", i as usize % VOCAB))
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => prop::collection::vec(0u8..VOCAB as u8, 1..4)
            .prop_map(|kw_indices| Op::Store { kw_indices }),
        3 => (0u8..VOCAB as u8).prop_map(|kw_index| Op::Search { kw_index }),
        1 => any::<usize>().prop_map(|victim| Op::Remove { victim }),
    ]
}

/// Oracle state: keyword → set of doc ids (Scheme 2 semantics: append-only).
#[derive(Default)]
struct Oracle {
    postings: BTreeMap<Keyword, BTreeSet<DocId>>,
    payloads: BTreeMap<DocId, Vec<u8>>,
}

impl Oracle {
    fn store(&mut self, id: DocId, kws: &[Keyword], payload: &[u8]) {
        for k in kws {
            self.postings.entry(k.clone()).or_default().insert(id);
        }
        self.payloads.insert(id, payload.to_vec());
    }

    fn remove(&mut self, id: DocId, kws: &[Keyword]) {
        for k in kws {
            if let Some(set) = self.postings.get_mut(k) {
                set.remove(&id);
            }
        }
        self.payloads.remove(&id);
    }

    fn search(&self, k: &Keyword) -> BTreeSet<DocId> {
        self.postings.get(k).cloned().unwrap_or_default()
    }
}

fn dedup_kws(indices: &[u8]) -> Vec<Keyword> {
    let set: BTreeSet<u8> = indices.iter().map(|i| i % VOCAB as u8).collect();
    set.into_iter().map(kw).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scheme2_matches_oracle_on_random_workloads(
        ops in prop::collection::vec(op_strategy(), 1..50),
        seed in 0u64..1000,
    ) {
        let mut client = InMemoryScheme2Client::new_in_memory(
            MasterKey::from_seed(seed),
            Scheme2Config::standard().with_chain_length(4096),
        );
        let mut oracle = Oracle::default();
        let mut next_id = 0u64;
        let mut alive: Vec<Document> = Vec::new();
        for op in &ops {
            match op {
                Op::Store { kw_indices } => {
                    let kws = dedup_kws(kw_indices);
                    let payload = next_id.to_le_bytes().to_vec();
                    let doc = Document::new(next_id, payload.clone(), kws.clone());
                    client.store(std::slice::from_ref(&doc)).unwrap();
                    oracle.store(next_id, &kws, &payload);
                    alive.push(doc);
                    next_id += 1;
                }
                Op::Remove { victim } => {
                    if alive.is_empty() {
                        continue;
                    }
                    let doc = alive.remove(victim % alive.len());
                    client.remove(std::slice::from_ref(&doc)).unwrap();
                    let kws: Vec<Keyword> = doc.keywords.iter().cloned().collect();
                    oracle.remove(doc.id, &kws);
                }
                Op::Search { kw_index } => {
                    let k = kw(*kw_index);
                    let hits = client.search(&k).unwrap();
                    let got: BTreeSet<DocId> = hits.iter().map(|(id, _)| *id).collect();
                    prop_assert_eq!(&got, &oracle.search(&k));
                    for (id, payload) in &hits {
                        prop_assert_eq!(payload, oracle.payloads.get(id).unwrap());
                    }
                }
            }
        }
        // Final sweep over the whole vocabulary.
        for i in 0..VOCAB as u8 {
            let k = kw(i);
            let got: BTreeSet<DocId> =
                client.search(&k).unwrap().iter().map(|(id, _)| *id).collect();
            prop_assert_eq!(&got, &oracle.search(&k));
        }
    }

    #[test]
    fn scheme1_matches_oracle_on_random_workloads(
        ops in prop::collection::vec(op_strategy(), 1..40),
        seed in 0u64..1000,
    ) {
        let mut client = InMemoryScheme1Client::new_in_memory(
            MasterKey::from_seed(seed),
            Scheme1Config::fast_profile(128),
        );
        let mut oracle = Oracle::default();
        let mut next_id = 0u64;
        for op in &ops {
            match op {
                Op::Store { kw_indices } => {
                    if next_id >= 128 { continue; } // capacity bound
                    let kws = dedup_kws(kw_indices);
                    let payload = next_id.to_le_bytes().to_vec();
                    let doc = Document::new(next_id, payload.clone(), kws.clone());
                    client.store(std::slice::from_ref(&doc)).unwrap();
                    oracle.store(next_id, &kws, &payload);
                    next_id += 1;
                }
                Op::Remove { .. } => {} // not exercised in the Scheme 1 arm
                Op::Search { kw_index } => {
                    let k = kw(*kw_index);
                    let got: BTreeSet<DocId> =
                        client.search(&k).unwrap().iter().map(|(id, _)| *id).collect();
                    prop_assert_eq!(&got, &oracle.search(&k));
                }
            }
        }
        for i in 0..VOCAB as u8 {
            let k = kw(i);
            let got: BTreeSet<DocId> =
                client.search(&k).unwrap().iter().map(|(id, _)| *id).collect();
            prop_assert_eq!(&got, &oracle.search(&k));
        }
    }

    /// Scheme 1's XOR semantics: toggling the same (doc, keyword) pair an
    /// even number of times is a no-op, odd number of times an insert.
    #[test]
    fn scheme1_xor_toggle_parity(toggles in 1u8..6, seed in 0u64..100) {
        let mut client = InMemoryScheme1Client::new_in_memory(
            MasterKey::from_seed(seed),
            Scheme1Config::fast_profile(16),
        );
        let doc = Document::new(3, b"payload".to_vec(), ["toggled"]);
        for _ in 0..toggles {
            client.store(std::slice::from_ref(&doc)).unwrap();
        }
        let hits = client.search(&Keyword::new("toggled")).unwrap();
        if toggles % 2 == 1 {
            prop_assert_eq!(hits.len(), 1);
        } else {
            prop_assert!(hits.is_empty());
        }
    }
}
