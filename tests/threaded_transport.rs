//! Both schemes over the threaded duplex transport: the same client code
//! must work when the server lives on another thread behind framed
//! channels (the shape of a real network deployment).

use sse_repro::core::query::{execute_query, Query};
use sse_repro::core::scheme1::{Scheme1Client, Scheme1Config, Scheme1Server};
use sse_repro::core::scheme2::{Scheme2Client, Scheme2Config, Scheme2Server};
use sse_repro::core::types::{Document, Keyword, MasterKey};
use sse_repro::net::link::Duplex;
use sse_repro::net::meter::Meter;

fn docs() -> Vec<Document> {
    vec![
        Document::new(0, b"zero".to_vec(), ["alpha", "beta"]),
        Document::new(1, b"one".to_vec(), ["beta"]),
        Document::new(2, b"two".to_vec(), ["gamma"]),
    ]
}

#[test]
fn scheme1_full_lifecycle_over_threads() {
    let config = Scheme1Config::fast_profile(64);
    let server = Scheme1Server::new_in_memory(64);
    let meter = Meter::new();
    let (duplex, handle) = Duplex::spawn(server, meter.clone());
    let mut client = Scheme1Client::new_seeded(duplex, MasterKey::from_seed(1), config, 7);

    client.store(&docs()).unwrap();
    let hits = client.search(&Keyword::new("beta")).unwrap();
    assert_eq!(hits.len(), 2);

    // Updates, batched search and boolean queries all flow over the wire.
    client
        .store(&[Document::new(9, b"nine".to_vec(), ["beta"])])
        .unwrap();
    let many = client
        .search_many(&[Keyword::new("alpha"), Keyword::new("beta")])
        .unwrap();
    assert_eq!(many[0].len(), 1);
    assert_eq!(many[1].len(), 3);
    let q = execute_query(&mut client, &Query::all_of(["alpha", "beta"])).unwrap();
    assert_eq!(q.len(), 1);

    assert!(meter.snapshot().rounds >= 6);
    drop(client);
    handle.join();
}

#[test]
fn scheme2_full_lifecycle_over_threads() {
    let config = Scheme2Config::standard().with_chain_length(128);
    let server = Scheme2Server::new_in_memory(config.clone());
    let meter = Meter::new();
    let (duplex, handle) = Duplex::spawn(server, meter.clone());
    let mut client = Scheme2Client::new_seeded(duplex, MasterKey::from_seed(2), config, 8);

    client.store(&docs()).unwrap();
    for round in 0u64..5 {
        client
            .store(&[Document::new(10 + round, vec![round as u8], ["beta"])])
            .unwrap();
        let hits = client.search(&Keyword::new("beta")).unwrap();
        assert_eq!(hits.len(), 3 + round as usize);
    }
    let many = client
        .search_many(&[Keyword::new("gamma"), Keyword::new("absent")])
        .unwrap();
    assert_eq!(many[0].len(), 1);
    assert!(many[1].is_empty());
    drop(client);
    handle.join();
}

#[test]
fn concurrent_clients_one_server_each() {
    // Multiple independent client/server pairs on threads at once — shakes
    // out any accidental global state.
    let handles: Vec<_> = (0..4u64)
        .map(|i| {
            std::thread::spawn(move || {
                let config = Scheme2Config::standard().with_chain_length(64);
                let server = Scheme2Server::new_in_memory(config.clone());
                let (duplex, sh) = Duplex::spawn(server, Meter::new());
                let mut client =
                    Scheme2Client::new_seeded(duplex, MasterKey::from_seed(100 + i), config, i);
                client
                    .store(&[Document::new(0, vec![i as u8], ["kw"])])
                    .unwrap();
                let hits = client.search(&Keyword::new("kw")).unwrap();
                assert_eq!(hits, vec![(0, vec![i as u8])]);
                drop(client);
                sh.join();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
