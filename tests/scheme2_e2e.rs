//! End-to-end integration tests for Scheme 2 against a plaintext oracle,
//! including optimization-equivalence and chain-lifecycle coverage.

use sse_repro::core::scheme2::{CtrPolicy, InMemoryScheme2Client, Scheme2Config};
use sse_repro::core::types::{DocId, Document, Keyword, MasterKey};
use sse_repro::core::SseError;
use sse_repro::phr::workload::{generate_corpus, CorpusConfig};
use std::collections::{BTreeMap, BTreeSet};

fn oracle(docs: &[Document]) -> BTreeMap<Keyword, BTreeSet<DocId>> {
    let mut idx: BTreeMap<Keyword, BTreeSet<DocId>> = BTreeMap::new();
    for d in docs {
        for w in &d.keywords {
            idx.entry(w.clone()).or_default().insert(d.id);
        }
    }
    idx
}

fn hits_ids(hits: &[(DocId, Vec<u8>)]) -> BTreeSet<DocId> {
    hits.iter().map(|(id, _)| *id).collect()
}

#[test]
fn large_corpus_search_matches_oracle() {
    let corpus = generate_corpus(&CorpusConfig {
        docs: 300,
        vocab_size: 600,
        keywords_per_doc: (2, 8),
        payload_bytes: 64,
        seed: 0xFACE,
        ..CorpusConfig::default()
    });
    let mut client = InMemoryScheme2Client::new_in_memory(
        MasterKey::from_seed(1),
        Scheme2Config::standard().with_chain_length(1024),
    );
    client.store(&corpus).unwrap();
    let idx = oracle(&corpus);
    for (kw, want) in idx.iter().take(120) {
        assert_eq!(&hits_ids(&client.search(kw).unwrap()), want, "keyword {kw}");
    }
}

#[test]
fn every_optimization_combination_gives_identical_results() {
    let corpus = generate_corpus(&CorpusConfig {
        docs: 80,
        vocab_size: 60,
        keywords_per_doc: (1, 5),
        payload_bytes: 24,
        seed: 0xBEEF,
        ..CorpusConfig::default()
    });
    let idx = oracle(&corpus);
    let configs = [
        Scheme2Config::base(2048),
        Scheme2Config::base(2048).with_server_cache(true),
        Scheme2Config::base(2048).with_ctr_policy(CtrPolicy::OnSearchOnly),
        Scheme2Config::standard().with_chain_length(2048),
    ];
    for (ci, config) in configs.into_iter().enumerate() {
        let mut client = InMemoryScheme2Client::new_in_memory(MasterKey::from_seed(2), config);
        // Interleave: store in chunks, search between chunks.
        let mut stored = 0usize;
        for chunk in corpus.chunks(13) {
            client.store(chunk).unwrap();
            stored += chunk.len();
            let probe = idx.keys().nth(stored % idx.len()).unwrap();
            let _ = client.search(probe).unwrap();
        }
        for (kw, want) in idx.iter().step_by(3) {
            assert_eq!(
                &hits_ids(&client.search(kw).unwrap()),
                want,
                "config {ci}, keyword {kw}"
            );
        }
    }
}

#[test]
fn heavy_interleaving_with_repeat_searches() {
    let mut client = InMemoryScheme2Client::new_in_memory(
        MasterKey::from_seed(3),
        Scheme2Config::standard().with_chain_length(4096),
    );
    let kw = Keyword::new("hot");
    let mut expected = BTreeSet::new();
    for round in 0u64..60 {
        let id = round;
        let mut kws = vec!["hot".to_string()];
        if round % 3 == 0 {
            kws.push(format!("cold-{round}"));
        }
        client
            .store(&[Document::new(
                id,
                round.to_le_bytes().to_vec(),
                kws.iter().map(String::as_str),
            )])
            .unwrap();
        expected.insert(id);
        if round % 2 == 0 {
            assert_eq!(
                hits_ids(&client.search(&kw).unwrap()),
                expected,
                "round {round}"
            );
        }
    }
    // Cold keywords still retrievable at the end (long chain walks).
    assert_eq!(
        hits_ids(&client.search(&Keyword::new("cold-0")).unwrap()),
        BTreeSet::from([0])
    );
    assert_eq!(
        hits_ids(&client.search(&Keyword::new("cold-57")).unwrap()),
        BTreeSet::from([57])
    );
}

#[test]
fn opt2_extends_chain_lifetime() {
    // Same workload; Always exhausts, OnSearchOnly survives.
    let workload: Vec<Document> = (0..10u64)
        .map(|i| Document::new(i, vec![], ["kw"]))
        .collect();

    let mut always =
        InMemoryScheme2Client::new_in_memory(MasterKey::from_seed(4), Scheme2Config::base(5));
    let mut result_always = Ok(());
    for d in &workload {
        result_always = always.store(std::slice::from_ref(d));
        if result_always.is_err() {
            break;
        }
    }
    assert!(
        matches!(result_always, Err(SseError::ChainExhausted)),
        "Always policy must exhaust a length-5 chain on 10 updates"
    );

    let mut lazy = InMemoryScheme2Client::new_in_memory(
        MasterKey::from_seed(4),
        Scheme2Config::base(5).with_ctr_policy(CtrPolicy::OnSearchOnly),
    );
    for d in &workload {
        lazy.store(std::slice::from_ref(d)).unwrap();
    }
    // Only 1 counter value consumed for 10 update-only operations.
    assert_eq!(lazy.state().ctr, 1);
    assert_eq!(
        hits_ids(&lazy.search(&Keyword::new("kw")).unwrap()).len(),
        10
    );
}

#[test]
fn full_lifecycle_with_reinitialization() {
    let config = Scheme2Config::base(3);
    let mut client = InMemoryScheme2Client::new_in_memory(MasterKey::from_seed(5), config);
    let mut all_docs: Vec<Document> = Vec::new();

    // Fill the chain.
    for i in 0u64..3 {
        let d = Document::new(i, format!("gen{i}").into_bytes(), ["k"]);
        client.store(std::slice::from_ref(&d)).unwrap();
        all_docs.push(d);
    }
    assert!(matches!(
        client.store(&[Document::new(9, vec![], ["k"])]),
        Err(SseError::ChainExhausted)
    ));

    // Re-initialize and continue for two more epochs.
    for epoch in 1u64..3 {
        client.reinitialize(&all_docs).unwrap();
        assert_eq!(client.state().epoch, epoch);
        assert_eq!(
            hits_ids(&client.search(&Keyword::new("k")).unwrap()).len(),
            all_docs.len(),
            "epoch {epoch} must retain all documents"
        );
        let next_id = 10 * epoch;
        let d = Document::new(next_id, b"fresh".to_vec(), ["k"]);
        client.store(std::slice::from_ref(&d)).unwrap();
        all_docs.push(d);
    }
    assert_eq!(
        hits_ids(&client.search(&Keyword::new("k")).unwrap()).len(),
        all_docs.len()
    );
}

#[test]
fn opt1_cache_saves_work_without_changing_results() {
    let corpus = generate_corpus(&CorpusConfig {
        docs: 50,
        vocab_size: 10,
        keywords_per_doc: (1, 2),
        payload_bytes: 8,
        seed: 0xCAFE,
        ..CorpusConfig::default()
    });
    let run = |cache: bool| {
        let mut client = InMemoryScheme2Client::new_in_memory(
            MasterKey::from_seed(6),
            Scheme2Config::standard()
                .with_chain_length(1024)
                .with_server_cache(cache),
        );
        let kw = Keyword::new("kw-00000");
        let mut results = Vec::new();
        for chunk in corpus.chunks(10) {
            client.store(chunk).unwrap();
            results.push(hits_ids(&client.search(&kw).unwrap()));
            // Repeat search: the cache arm should decrypt nothing new.
            results.push(hits_ids(&client.search(&kw).unwrap()));
        }
        (results, client.server_mut().stats().generations_decrypted)
    };
    let (with_cache, decrypted_cached) = run(true);
    let (without_cache, decrypted_plain) = run(false);
    assert_eq!(with_cache, without_cache, "results identical");
    assert!(
        decrypted_cached < decrypted_plain,
        "cache must reduce decryptions: {decrypted_cached} vs {decrypted_plain}"
    );
}

#[test]
fn stored_index_grows_with_generations_not_capacity() {
    let mut client = InMemoryScheme2Client::new_in_memory(
        MasterKey::from_seed(7),
        Scheme2Config::standard().with_chain_length(4096),
    );
    let mut last = 0usize;
    for i in 0u64..10 {
        client.store(&[Document::new(i, vec![], ["kw"])]).unwrap();
        client.search(&Keyword::new("kw")).unwrap(); // advance ctr
        let size = client.server_mut().index_bytes();
        assert!(size > last, "index must grow by one generation");
        // Each generation is small: sealed id-list + 32-byte commitment.
        assert!(size - last < 200, "generation too large: {}", size - last);
        last = size;
    }
}
