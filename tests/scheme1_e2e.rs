//! End-to-end integration tests for Scheme 1 against a plaintext oracle.

use sse_repro::core::scheme1::{InMemoryScheme1Client, Scheme1Config};
use sse_repro::core::types::{DocId, Document, Keyword, MasterKey};
use sse_repro::phr::workload::{generate_corpus, CorpusConfig};
use std::collections::{BTreeMap, BTreeSet};

/// Plaintext inverted index — ground truth.
fn oracle(docs: &[Document]) -> BTreeMap<Keyword, BTreeSet<DocId>> {
    let mut idx: BTreeMap<Keyword, BTreeSet<DocId>> = BTreeMap::new();
    for d in docs {
        for w in &d.keywords {
            idx.entry(w.clone()).or_default().insert(d.id);
        }
    }
    idx
}

fn hits_ids(hits: &[(DocId, Vec<u8>)]) -> BTreeSet<DocId> {
    hits.iter().map(|(id, _)| *id).collect()
}

#[test]
fn large_corpus_search_matches_oracle() {
    let corpus = generate_corpus(&CorpusConfig {
        docs: 300,
        vocab_size: 600,
        keywords_per_doc: (2, 8),
        payload_bytes: 64,
        seed: 0xA11CE,
        ..CorpusConfig::default()
    });
    let mut client = InMemoryScheme1Client::new_in_memory(
        MasterKey::from_seed(1),
        Scheme1Config::fast_profile(512),
    );
    client.store(&corpus).unwrap();

    let idx = oracle(&corpus);
    assert!(idx.len() > 100, "corpus should have many unique keywords");
    for (kw, want) in idx.iter().take(120) {
        let got = hits_ids(&client.search(kw).unwrap());
        assert_eq!(&got, want, "keyword {kw}");
    }
    // Payloads decrypt to the original data.
    let (kw, ids) = idx.iter().next().unwrap();
    for (id, data) in client.search(kw).unwrap() {
        assert!(ids.contains(&id));
        assert_eq!(data, corpus[id as usize].data);
    }
}

#[test]
fn incremental_updates_match_oracle_at_every_step() {
    let corpus = generate_corpus(&CorpusConfig {
        docs: 120,
        vocab_size: 100,
        keywords_per_doc: (1, 4),
        payload_bytes: 16,
        seed: 0xB0B,
        ..CorpusConfig::default()
    });
    let mut client = InMemoryScheme1Client::new_in_memory(
        MasterKey::from_seed(2),
        Scheme1Config::fast_profile(128),
    );

    let mut stored: Vec<Document> = Vec::new();
    for chunk in corpus.chunks(17) {
        client.store(chunk).unwrap();
        stored.extend_from_slice(chunk);
        let idx = oracle(&stored);
        // Probe a rotating sample of keywords after each batch.
        for (kw, want) in idx.iter().step_by(7) {
            let got = hits_ids(&client.search(kw).unwrap());
            assert_eq!(&got, want, "after {} docs, keyword {kw}", stored.len());
        }
    }
}

#[test]
fn deletion_via_toggle_matches_oracle() {
    let mut client = InMemoryScheme1Client::new_in_memory(
        MasterKey::from_seed(3),
        Scheme1Config::fast_profile(64),
    );
    let docs = vec![
        Document::new(0, b"a".to_vec(), ["k1", "k2"]),
        Document::new(1, b"b".to_vec(), ["k1"]),
        Document::new(2, b"c".to_vec(), ["k2"]),
    ];
    client.store(&docs).unwrap();

    // Toggle doc 0 out of k1 (re-send the same (doc, keyword) pair).
    client
        .store(&[Document::new(0, b"a".to_vec(), ["k1"])])
        .unwrap();
    assert_eq!(
        hits_ids(&client.search(&Keyword::new("k1")).unwrap()),
        BTreeSet::from([1])
    );
    // k2 untouched.
    assert_eq!(
        hits_ids(&client.search(&Keyword::new("k2")).unwrap()),
        BTreeSet::from([0, 2])
    );
    // Toggle it back in.
    client
        .store(&[Document::new(0, b"a".to_vec(), ["k1"])])
        .unwrap();
    assert_eq!(
        hits_ids(&client.search(&Keyword::new("k1")).unwrap()),
        BTreeSet::from([0, 1])
    );
}

#[test]
fn remask_mode_is_equivalent_for_results() {
    let corpus = generate_corpus(&CorpusConfig {
        docs: 60,
        vocab_size: 80,
        seed: 0xC0DE,
        ..CorpusConfig::default()
    });
    let mut plain = InMemoryScheme1Client::new_in_memory(
        MasterKey::from_seed(4),
        Scheme1Config::fast_profile(64),
    );
    let mut remask = InMemoryScheme1Client::new_in_memory(
        MasterKey::from_seed(4),
        Scheme1Config::fast_profile(64).with_remask(),
    );
    plain.store(&corpus).unwrap();
    remask.store(&corpus).unwrap();
    let idx = oracle(&corpus);
    for kw in idx.keys().take(30) {
        // Search twice in remask mode: re-randomization must not corrupt.
        let a = hits_ids(&plain.search(kw).unwrap());
        let b1 = hits_ids(&remask.search(kw).unwrap());
        let b2 = hits_ids(&remask.search(kw).unwrap());
        assert_eq!(a, b1, "{kw}");
        assert_eq!(b1, b2, "{kw} after remask");
    }
}

#[test]
fn secure_profile_2048_bit_works() {
    // One small end-to-end pass in the paper-strength group (slow: modexp
    // on 2048-bit values), proving the fast profile is a drop-in swap.
    let mut client = InMemoryScheme1Client::new_in_memory(
        MasterKey::from_seed(5),
        Scheme1Config::secure_profile(16),
    );
    let docs = vec![
        Document::new(0, b"secret zero".to_vec(), ["x"]),
        Document::new(1, b"secret one".to_vec(), ["x", "y"]),
    ];
    client.store(&docs).unwrap();
    assert_eq!(
        hits_ids(&client.search(&Keyword::new("x")).unwrap()),
        BTreeSet::from([0, 1])
    );
    client
        .store(&[Document::new(2, b"secret two".to_vec(), ["y"])])
        .unwrap();
    assert_eq!(
        hits_ids(&client.search(&Keyword::new("y")).unwrap()),
        BTreeSet::from([1, 2])
    );
}

#[test]
fn server_tree_height_is_logarithmic_in_keywords() {
    let corpus = generate_corpus(&CorpusConfig {
        docs: 400,
        vocab_size: 2000,
        keywords_per_doc: (4, 10),
        payload_bytes: 8,
        seed: 0xD00D,
        ..CorpusConfig::default()
    });
    let mut client = InMemoryScheme1Client::new_in_memory(
        MasterKey::from_seed(6),
        Scheme1Config::fast_profile(512),
    );
    client.store(&corpus).unwrap();
    let server = client.server_mut();
    let u = server.unique_keywords();
    let h = server.tree_height();
    assert!(u > 500, "u = {u}");
    // B+-tree with min fill 8: height <= log_8(u) + 2.
    let bound = (u as f64).log(8.0).ceil() as usize + 2;
    assert!(h <= bound, "height {h} exceeds log bound {bound} for u={u}");
}
