//! Differential testing: seeded random operation traces replayed against
//! three implementations that must agree on every search result —
//!
//! 1. the naive download-everything baseline (`sse_baselines::naive`), an
//!    oracle with no index at all,
//! 2. the real scheme over a single-shard in-memory server, and
//! 3. the same scheme over sharded servers (shard counts 4 and 16).
//!
//! A trace mixes adds, removes, leakage-hiding fake updates and searches.
//! Every search's hit list is compared oracle-vs-scheme and
//! shard-count-vs-shard-count, for both schemes, under three distinct
//! seeds. Any divergence in sharding (wrong shard routing, a mutation
//! applied to one shard twice, a search that misses a shard) surfaces as a
//! result mismatch here.

use sse_baselines::naive::NaiveClient;
use sse_core::scheme::SseClientApi;
use sse_core::scheme1::{Scheme1Client, Scheme1Config, Scheme1Server};
use sse_core::scheme2::{Scheme2Client, Scheme2Config, Scheme2Server};
use sse_core::types::{Document, Keyword, MasterKey, SearchHits};
use sse_net::link::MeteredLink;
use sse_net::meter::Meter;

const SHARD_COUNTS: [usize; 3] = [1, 4, 16];
const SEEDS: [u64; 3] = [11, 271_828, 3_141_592];
const CAPACITY: u64 = 256;

/// Deterministic trace generator (splitmix64).
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n.max(1)
    }
}

/// One step of a trace. Documents are identified by their position in the
/// add-order so every backend sees byte-identical documents.
#[derive(Clone, Debug)]
enum Op {
    Add(Document),
    /// Remove a previously added (and still live) document.
    Remove(Document),
    /// Leakage-hiding fake update: must not change any result.
    FakeUpdate(Vec<Keyword>),
    Search(Keyword),
}

fn keyword(i: usize) -> Keyword {
    Keyword::new(format!("diff-kw-{i}"))
}

/// Generate a seeded trace of `len` operations over a small keyword
/// universe. Removes only target live documents; ids are never reused
/// (Scheme 1's XOR semantics would otherwise toggle a dead id back in).
fn trace(seed: u64, len: usize, universe: usize) -> Vec<Op> {
    let mut rng = SplitMix(seed);
    let mut next_id = 0u64;
    let mut live: Vec<Document> = Vec::new();
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let roll = rng.below(10);
        if roll < 4 || live.is_empty() {
            // Add a fresh document with 1–3 keywords.
            let n_kws = 1 + rng.below(3);
            let mut kws = Vec::with_capacity(n_kws);
            for _ in 0..n_kws {
                kws.push(keyword(rng.below(universe)));
            }
            kws.sort();
            kws.dedup();
            let id = next_id;
            next_id += 1;
            let doc = Document::new(
                id,
                format!("diff-doc-{id}").into_bytes(),
                kws.iter().map(Keyword::as_str),
            );
            live.push(doc.clone());
            ops.push(Op::Add(doc));
        } else if roll < 6 {
            let victim = live.swap_remove(rng.below(live.len()));
            ops.push(Op::Remove(victim));
        } else if roll < 7 {
            let n = 1 + rng.below(3);
            let kws: Vec<Keyword> = (0..n).map(|_| keyword(rng.below(universe))).collect();
            ops.push(Op::FakeUpdate(kws));
        } else {
            ops.push(Op::Search(keyword(rng.below(universe))));
        }
    }
    // Always end with a full sweep of the keyword universe.
    for i in 0..universe {
        ops.push(Op::Search(keyword(i)));
    }
    ops
}

/// Uniform driving surface over the three backends.
trait Backend {
    fn add(&mut self, doc: &Document);
    fn remove(&mut self, doc: &Document);
    fn fake_update(&mut self, kws: &[Keyword]);
    fn search(&mut self, kw: &Keyword) -> SearchHits;
}

struct Oracle(NaiveClient);

impl Backend for Oracle {
    fn add(&mut self, doc: &Document) {
        self.0.add_documents(std::slice::from_ref(doc)).unwrap();
    }
    fn remove(&mut self, doc: &Document) {
        self.0.remove(&[doc.id]);
    }
    fn fake_update(&mut self, _kws: &[Keyword]) {
        // The oracle has no index to re-randomize.
    }
    fn search(&mut self, kw: &Keyword) -> SearchHits {
        self.0.search(kw).unwrap()
    }
}

struct S1(Scheme1Client<MeteredLink<Scheme1Server>>);

impl Backend for S1 {
    fn add(&mut self, doc: &Document) {
        self.0.store(std::slice::from_ref(doc)).unwrap();
    }
    fn remove(&mut self, doc: &Document) {
        // Scheme 1 removal is XOR re-toggling the same document.
        self.0.store(std::slice::from_ref(doc)).unwrap();
    }
    fn fake_update(&mut self, kws: &[Keyword]) {
        self.0.fake_update(kws).unwrap();
    }
    fn search(&mut self, kw: &Keyword) -> SearchHits {
        self.0.search(kw).unwrap()
    }
}

struct S2(Scheme2Client<MeteredLink<Scheme2Server>>);

impl Backend for S2 {
    fn add(&mut self, doc: &Document) {
        self.0.store(std::slice::from_ref(doc)).unwrap();
    }
    fn remove(&mut self, doc: &Document) {
        self.0.remove(std::slice::from_ref(doc)).unwrap();
    }
    fn fake_update(&mut self, kws: &[Keyword]) {
        self.0.fake_update(kws).unwrap();
    }
    fn search(&mut self, kw: &Keyword) -> SearchHits {
        self.0.search(kw).unwrap()
    }
}

fn scheme1_backend(seed: u64, shards: usize) -> S1 {
    let server = Scheme1Server::new_in_memory_sharded(CAPACITY, shards);
    let link = MeteredLink::new(server, Meter::new());
    S1(Scheme1Client::new_seeded(
        link,
        MasterKey::from_seed(seed),
        Scheme1Config::fast_profile(CAPACITY),
        seed ^ 0xD1FF,
    ))
}

fn scheme2_backend(seed: u64, shards: usize) -> S2 {
    let config = Scheme2Config::standard();
    let server = Scheme2Server::new_in_memory_sharded(config.clone(), shards);
    let link = MeteredLink::new(server, Meter::new());
    S2(Scheme2Client::new_seeded(
        link,
        MasterKey::from_seed(seed),
        config,
        seed ^ 0xD1FF,
    ))
}

/// Replay a trace, collecting every search's hits sorted by doc id
/// (backends may order hits differently; the *set* must agree).
fn replay(backend: &mut dyn Backend, ops: &[Op]) -> Vec<SearchHits> {
    let mut results = Vec::new();
    for op in ops {
        match op {
            Op::Add(doc) => backend.add(doc),
            Op::Remove(doc) => backend.remove(doc),
            Op::FakeUpdate(kws) => backend.fake_update(kws),
            Op::Search(kw) => {
                let mut hits = backend.search(kw);
                hits.sort();
                results.push(hits);
            }
        }
    }
    results
}

fn assert_same(
    label: &str,
    seed: u64,
    shards: usize,
    ops: &[Op],
    expected: &[SearchHits],
    got: &[SearchHits],
) {
    assert_eq!(expected.len(), got.len(), "{label}: search count");
    let searches: Vec<&Keyword> = ops
        .iter()
        .filter_map(|op| match op {
            Op::Search(kw) => Some(kw),
            _ => None,
        })
        .collect();
    for (i, (want, have)) in expected.iter().zip(got).enumerate() {
        assert_eq!(
            want, have,
            "{label}: seed {seed}, {shards} shard(s), search #{i} ({:?}) diverged",
            searches[i]
        );
    }
}

fn run_differential(scheme: &str) {
    for seed in SEEDS {
        let ops = trace(seed, 120, 10);
        let oracle_results = replay(
            &mut Oracle(NaiveClient::new(
                &MasterKey::from_seed(seed),
                Meter::new(),
                seed,
            )),
            &ops,
        );
        assert!(
            oracle_results.iter().any(|hits| !hits.is_empty()),
            "degenerate trace: the oracle never found anything (seed {seed})"
        );

        let mut per_shard_count = Vec::new();
        for shards in SHARD_COUNTS {
            let results = match scheme {
                "scheme1" => replay(&mut scheme1_backend(seed, shards), &ops),
                "scheme2" => replay(&mut scheme2_backend(seed, shards), &ops),
                other => panic!("unknown scheme {other}"),
            };
            assert_same(
                &format!("{scheme} vs oracle"),
                seed,
                shards,
                &ops,
                &oracle_results,
                &results,
            );
            per_shard_count.push((shards, results));
        }
        // Sharded vs unsharded: byte-identical result streams.
        let (_, baseline) = &per_shard_count[0];
        for (shards, results) in &per_shard_count[1..] {
            assert_same(
                &format!("{scheme} sharded vs unsharded"),
                seed,
                *shards,
                &ops,
                baseline,
                results,
            );
        }
    }
}

#[test]
fn scheme1_matches_oracle_across_shard_counts_and_seeds() {
    run_differential("scheme1");
}

#[test]
fn scheme2_matches_oracle_across_shard_counts_and_seeds() {
    run_differential("scheme2");
}
