//! Differential testing: seeded random operation traces replayed against
//! three implementations that must agree on every search result —
//!
//! 1. the naive download-everything baseline (`sse_baselines::naive`), an
//!    oracle with no index at all,
//! 2. the real scheme over a single-shard in-memory server, and
//! 3. the same scheme over sharded servers (shard counts 4 and 16).
//!
//! A trace mixes adds, removes, leakage-hiding fake updates and searches.
//! Every search's hit list is compared oracle-vs-scheme and
//! shard-count-vs-shard-count, for both schemes, under three distinct
//! seeds. Any divergence in sharding (wrong shard routing, a mutation
//! applied to one shard twice, a search that misses a shard) surfaces as a
//! result mismatch here.

use sse_baselines::naive::NaiveClient;
use sse_core::scheme::SseClientApi;
use sse_core::scheme1::{Scheme1Client, Scheme1Config, Scheme1Server};
use sse_core::scheme2::{Scheme2Client, Scheme2ClientState, Scheme2Config, Scheme2Server};
use sse_core::types::{Document, Keyword, MasterKey, SearchHits};
use sse_net::link::MeteredLink;
use sse_net::meter::Meter;
use sse_storage::{BackendKind, RealVfs};
use std::path::PathBuf;
use std::sync::Arc;

const SHARD_COUNTS: [usize; 3] = [1, 4, 16];
const SEEDS: [u64; 3] = [11, 271_828, 3_141_592];
const CAPACITY: u64 = 256;

/// Deterministic trace generator (splitmix64).
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n.max(1)
    }
}

/// One step of a trace. Documents are identified by their position in the
/// add-order so every backend sees byte-identical documents.
#[derive(Clone, Debug)]
enum Op {
    Add(Document),
    /// Remove a previously added (and still live) document.
    Remove(Document),
    /// Leakage-hiding fake update: must not change any result.
    FakeUpdate(Vec<Keyword>),
    /// Epoch swap (§5.6): re-initialize under fresh chains from the live
    /// document set. Must not change any result — and must invalidate any
    /// server-side search memo keyed to the old epoch's trapdoors.
    Reinit(Vec<Document>),
    Search(Keyword),
}

fn keyword(i: usize) -> Keyword {
    Keyword::new(format!("diff-kw-{i}"))
}

/// Generate a seeded trace of `len` operations over a small keyword
/// universe. Removes only target live documents; ids are never reused
/// (Scheme 1's XOR semantics would otherwise toggle a dead id back in).
fn trace(seed: u64, len: usize, universe: usize) -> Vec<Op> {
    trace_with_epochs(seed, len, universe, false)
}

/// Like [`trace`], optionally inserting two [`Op::Reinit`] epoch swaps
/// (at one third and two thirds of the trace) carrying the then-live
/// document set.
fn trace_with_epochs(seed: u64, len: usize, universe: usize, epoch_swaps: bool) -> Vec<Op> {
    let mut rng = SplitMix(seed);
    let mut next_id = 0u64;
    let mut live: Vec<Document> = Vec::new();
    let mut ops = Vec::with_capacity(len);
    for i in 0..len {
        if epoch_swaps && (i == len / 3 || i == 2 * len / 3) {
            ops.push(Op::Reinit(live.clone()));
        }
        let roll = rng.below(10);
        if roll < 4 || live.is_empty() {
            // Add a fresh document with 1–3 keywords.
            let n_kws = 1 + rng.below(3);
            let mut kws = Vec::with_capacity(n_kws);
            for _ in 0..n_kws {
                kws.push(keyword(rng.below(universe)));
            }
            kws.sort();
            kws.dedup();
            let id = next_id;
            next_id += 1;
            let doc = Document::new(
                id,
                format!("diff-doc-{id}").into_bytes(),
                kws.iter().map(Keyword::as_str),
            );
            live.push(doc.clone());
            ops.push(Op::Add(doc));
        } else if roll < 6 {
            let victim = live.swap_remove(rng.below(live.len()));
            ops.push(Op::Remove(victim));
        } else if roll < 7 {
            let n = 1 + rng.below(3);
            let kws: Vec<Keyword> = (0..n).map(|_| keyword(rng.below(universe))).collect();
            ops.push(Op::FakeUpdate(kws));
        } else {
            ops.push(Op::Search(keyword(rng.below(universe))));
        }
    }
    // Always end with a full sweep of the keyword universe.
    for i in 0..universe {
        ops.push(Op::Search(keyword(i)));
    }
    ops
}

/// Uniform driving surface over the three backends.
trait Backend {
    fn add(&mut self, doc: &Document);
    fn remove(&mut self, doc: &Document);
    fn fake_update(&mut self, kws: &[Keyword]);
    /// Epoch swap. No-op where the concept doesn't exist (the oracle has
    /// no index; Scheme 1's bit matrix has no chains to exhaust).
    fn reinit(&mut self, docs: &[Document]);
    fn search(&mut self, kw: &Keyword) -> SearchHits;
}

struct Oracle(NaiveClient);

impl Backend for Oracle {
    fn add(&mut self, doc: &Document) {
        self.0.add_documents(std::slice::from_ref(doc)).unwrap();
    }
    fn remove(&mut self, doc: &Document) {
        self.0.remove(&[doc.id]);
    }
    fn fake_update(&mut self, _kws: &[Keyword]) {
        // The oracle has no index to re-randomize.
    }
    fn reinit(&mut self, _docs: &[Document]) {}
    fn search(&mut self, kw: &Keyword) -> SearchHits {
        self.0.search(kw).unwrap()
    }
}

struct S1(Scheme1Client<MeteredLink<Scheme1Server>>);

impl Backend for S1 {
    fn add(&mut self, doc: &Document) {
        self.0.store(std::slice::from_ref(doc)).unwrap();
    }
    fn remove(&mut self, doc: &Document) {
        // Scheme 1 removal is XOR re-toggling the same document.
        self.0.store(std::slice::from_ref(doc)).unwrap();
    }
    fn fake_update(&mut self, kws: &[Keyword]) {
        self.0.fake_update(kws).unwrap();
    }
    fn reinit(&mut self, _docs: &[Document]) {
        // Scheme 1 has no chain epochs to swap.
    }
    fn search(&mut self, kw: &Keyword) -> SearchHits {
        self.0.search(kw).unwrap()
    }
}

struct S2(Scheme2Client<MeteredLink<Scheme2Server>>);

impl Backend for S2 {
    fn add(&mut self, doc: &Document) {
        self.0.store(std::slice::from_ref(doc)).unwrap();
    }
    fn remove(&mut self, doc: &Document) {
        self.0.remove(std::slice::from_ref(doc)).unwrap();
    }
    fn fake_update(&mut self, kws: &[Keyword]) {
        self.0.fake_update(kws).unwrap();
    }
    fn reinit(&mut self, docs: &[Document]) {
        self.0.reinitialize(docs).unwrap();
    }
    fn search(&mut self, kw: &Keyword) -> SearchHits {
        self.0.search(kw).unwrap()
    }
}

fn scheme1_backend(seed: u64, shards: usize) -> S1 {
    let server = Scheme1Server::new_in_memory_sharded(CAPACITY, shards);
    let link = MeteredLink::new(server, Meter::new());
    S1(Scheme1Client::new_seeded(
        link,
        MasterKey::from_seed(seed),
        Scheme1Config::fast_profile(CAPACITY),
        seed ^ 0xD1FF,
    ))
}

fn scheme2_backend(seed: u64, shards: usize) -> S2 {
    let config = Scheme2Config::standard();
    let server = Scheme2Server::new_in_memory_sharded(config.clone(), shards);
    let link = MeteredLink::new(server, Meter::new());
    S2(Scheme2Client::new_seeded(
        link,
        MasterKey::from_seed(seed),
        config,
        seed ^ 0xD1FF,
    ))
}

/// Replay a trace, collecting every search's hits sorted by doc id
/// (backends may order hits differently; the *set* must agree).
fn replay(backend: &mut dyn Backend, ops: &[Op]) -> Vec<SearchHits> {
    let mut results = Vec::new();
    for op in ops {
        match op {
            Op::Add(doc) => backend.add(doc),
            Op::Remove(doc) => backend.remove(doc),
            Op::FakeUpdate(kws) => backend.fake_update(kws),
            Op::Reinit(docs) => backend.reinit(docs),
            Op::Search(kw) => {
                let mut hits = backend.search(kw);
                hits.sort();
                results.push(hits);
            }
        }
    }
    results
}

fn assert_same(
    label: &str,
    seed: u64,
    shards: usize,
    ops: &[Op],
    expected: &[SearchHits],
    got: &[SearchHits],
) {
    assert_eq!(expected.len(), got.len(), "{label}: search count");
    let searches: Vec<&Keyword> = ops
        .iter()
        .filter_map(|op| match op {
            Op::Search(kw) => Some(kw),
            _ => None,
        })
        .collect();
    for (i, (want, have)) in expected.iter().zip(got).enumerate() {
        assert_eq!(
            want, have,
            "{label}: seed {seed}, {shards} shard(s), search #{i} ({:?}) diverged",
            searches[i]
        );
    }
}

fn run_differential(scheme: &str) {
    for seed in SEEDS {
        let ops = trace(seed, 120, 10);
        let oracle_results = replay(
            &mut Oracle(NaiveClient::new(
                &MasterKey::from_seed(seed),
                Meter::new(),
                seed,
            )),
            &ops,
        );
        assert!(
            oracle_results.iter().any(|hits| !hits.is_empty()),
            "degenerate trace: the oracle never found anything (seed {seed})"
        );

        let mut per_shard_count = Vec::new();
        for shards in SHARD_COUNTS {
            let results = match scheme {
                "scheme1" => replay(&mut scheme1_backend(seed, shards), &ops),
                "scheme2" => replay(&mut scheme2_backend(seed, shards), &ops),
                other => panic!("unknown scheme {other}"),
            };
            assert_same(
                &format!("{scheme} vs oracle"),
                seed,
                shards,
                &ops,
                &oracle_results,
                &results,
            );
            per_shard_count.push((shards, results));
        }
        // Sharded vs unsharded: byte-identical result streams.
        let (_, baseline) = &per_shard_count[0];
        for (shards, results) in &per_shard_count[1..] {
            assert_same(
                &format!("{scheme} sharded vs unsharded"),
                seed,
                *shards,
                &ops,
                baseline,
                results,
            );
        }
    }
}

#[test]
fn scheme1_matches_oracle_across_shard_counts_and_seeds() {
    run_differential("scheme1");
}

#[test]
fn scheme2_matches_oracle_across_shard_counts_and_seeds() {
    run_differential("scheme2");
}

// ---------------------------------------------------------------------------
// Warm-cache vs cold-oracle differential (server-side search memo)
// ---------------------------------------------------------------------------

/// In-process transport over a shared server, kept so the test retains a
/// handle to the server and can read its memo counters after the replay
/// (a `MeteredLink` owns its server outright).
struct SharedLink<S>(Arc<S>);

impl sse_net::link::Transport for SharedLink<Scheme2Server> {
    fn round_trip(&mut self, request: &[u8]) -> std::io::Result<Vec<u8>> {
        Ok(self.0.handle_shared(request))
    }
}

/// Lockstep warm-vs-cold replay for Scheme 2: the *cold oracle* runs with
/// the server memo disabled (every search re-walks the chain), the *warm*
/// backend keeps it on. At every search point the warm side answers three
/// ways — a first (miss-then-fill) search, an immediate repeat (memo-
/// served), and periodically a `search_many` plus a `SEARCH_MANY`-envelope
/// `search_batch` window — and each must be byte-identical to the cold
/// oracle, across interleaved single and batched updates and two
/// [`Op::Reinit`] epoch swaps (which must invalidate the memo, not let it
/// serve the dead epoch's results).
fn scheme2_warm_vs_cold(seed: u64, shards: usize) {
    let ops = trace_with_epochs(seed, 90, 10, true);
    let key = MasterKey::from_seed(seed);
    let cold_cfg = Scheme2Config::standard().with_server_cache(false);
    let warm_cfg = Scheme2Config::standard();
    let cold_srv = Arc::new(Scheme2Server::new_in_memory_sharded(
        cold_cfg.clone(),
        shards,
    ));
    let warm_srv = Arc::new(Scheme2Server::new_in_memory_sharded(
        warm_cfg.clone(),
        shards,
    ));
    let mut cold = Scheme2Client::new_seeded(
        SharedLink(cold_srv.clone()),
        key.clone(),
        cold_cfg,
        seed ^ 0xC07D,
    );
    let mut warm =
        Scheme2Client::new_seeded(SharedLink(warm_srv.clone()), key, warm_cfg, seed ^ 0x3A93);

    let sorted = |mut hits: SearchHits| {
        hits.sort();
        hits
    };
    let mut searches = 0usize;
    let mut nonempty = 0usize;
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Add(doc) => {
                cold.store(std::slice::from_ref(doc)).unwrap();
                warm.store(std::slice::from_ref(doc)).unwrap();
            }
            Op::Remove(doc) => {
                cold.remove(std::slice::from_ref(doc)).unwrap();
                warm.remove(std::slice::from_ref(doc)).unwrap();
            }
            Op::FakeUpdate(kws) => {
                // Single-keyword groups drive the batched `UPDATE_MANY`
                // client path, so the memo sees batched invalidations too.
                let groups: Vec<Vec<Keyword>> = kws.iter().map(|k| vec![k.clone()]).collect();
                cold.fake_update_many(&groups).unwrap();
                warm.fake_update_many(&groups).unwrap();
            }
            Op::Reinit(docs) => {
                cold.reinitialize(docs).unwrap();
                warm.reinitialize(docs).unwrap();
            }
            Op::Search(kw) => {
                searches += 1;
                let want = sorted(cold.search(kw).unwrap());
                let first = sorted(warm.search(kw).unwrap());
                assert_eq!(
                    first, want,
                    "seed {seed}, {shards} shard(s), op {i}: warm first search diverged on {kw:?}"
                );
                let repeat = sorted(warm.search(kw).unwrap());
                assert_eq!(
                    repeat, want,
                    "seed {seed}, {shards} shard(s), op {i}: memo-served repeat diverged on {kw:?}"
                );
                if !want.is_empty() {
                    nonempty += 1;
                }
                if searches.is_multiple_of(3) {
                    let window: Vec<Keyword> = (0..5).map(|j| keyword((i + j) % 10)).collect();
                    let want_window: Vec<SearchHits> = window
                        .iter()
                        .map(|w| sorted(cold.search(w).unwrap()))
                        .collect();
                    let many: Vec<SearchHits> = warm
                        .search_many(&window)
                        .unwrap()
                        .into_iter()
                        .map(sorted)
                        .collect();
                    assert_eq!(
                        many, want_window,
                        "seed {seed}, {shards} shard(s), op {i}: search_many diverged"
                    );
                    let batch: Vec<SearchHits> = warm
                        .search_batch(&window)
                        .unwrap()
                        .into_iter()
                        .map(sorted)
                        .collect();
                    assert_eq!(
                        batch, want_window,
                        "seed {seed}, {shards} shard(s), op {i}: search_batch diverged"
                    );
                }
            }
        }
    }
    assert!(nonempty > 0, "degenerate trace: every search came up empty");
    let warm_stats = warm_srv.stats();
    assert!(
        warm_stats.cache_hits > 0,
        "warm replay never hit the memo — the differential is vacuous"
    );
    assert_eq!(
        cold_srv.stats().cache_hits,
        0,
        "cache-disabled oracle must never serve from the memo"
    );
}

/// Scheme 1 has no server-side memo, but its batched search paths must be
/// just as result-stable: at every search point a repeat search, a
/// `search_many` window, and a `search_batch` window are all compared
/// against a cold lockstep replay under interleaved updates.
fn scheme1_warm_vs_cold(seed: u64, shards: usize) {
    let ops = trace(seed, 90, 10);
    let mut cold = scheme1_backend(seed, shards);
    let mut warm = scheme1_backend(seed, shards);

    let sorted = |mut hits: SearchHits| {
        hits.sort();
        hits
    };
    let mut searches = 0usize;
    let mut nonempty = 0usize;
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Search(kw) => {
                searches += 1;
                let want = sorted(cold.search(kw));
                let first = sorted(warm.0.search(kw).unwrap());
                assert_eq!(
                    first, want,
                    "seed {seed}, {shards} shard(s), op {i}: first search diverged on {kw:?}"
                );
                let repeat = sorted(warm.0.search(kw).unwrap());
                assert_eq!(
                    repeat, want,
                    "seed {seed}, {shards} shard(s), op {i}: repeat search diverged on {kw:?}"
                );
                if !want.is_empty() {
                    nonempty += 1;
                }
                if searches.is_multiple_of(3) {
                    let window: Vec<Keyword> = (0..5).map(|j| keyword((i + j) % 10)).collect();
                    let want_window: Vec<SearchHits> =
                        window.iter().map(|w| sorted(cold.search(w))).collect();
                    let many: Vec<SearchHits> = warm
                        .0
                        .search_many(&window)
                        .unwrap()
                        .into_iter()
                        .map(sorted)
                        .collect();
                    assert_eq!(
                        many, want_window,
                        "seed {seed}, {shards} shard(s), op {i}: search_many diverged"
                    );
                    let batch: Vec<SearchHits> = warm
                        .0
                        .search_batch(&window)
                        .unwrap()
                        .into_iter()
                        .map(sorted)
                        .collect();
                    assert_eq!(
                        batch, want_window,
                        "seed {seed}, {shards} shard(s), op {i}: search_batch diverged"
                    );
                }
            }
            other => {
                for b in [&mut cold as &mut dyn Backend, &mut warm] {
                    match other {
                        Op::Add(doc) => b.add(doc),
                        Op::Remove(doc) => b.remove(doc),
                        Op::FakeUpdate(kws) => b.fake_update(kws),
                        Op::Reinit(docs) => b.reinit(docs),
                        Op::Search(_) => unreachable!(),
                    }
                }
            }
        }
    }
    assert!(nonempty > 0, "degenerate trace: every search came up empty");
}

#[test]
fn scheme2_warm_cache_and_batches_match_cold_oracle_across_epoch_swaps() {
    for seed in [SEEDS[0], SEEDS[1]] {
        for shards in [1, 4] {
            scheme2_warm_vs_cold(seed, shards);
        }
    }
}

// ---------------------------------------------------------------------------
// Durable differential (storage backends)
// ---------------------------------------------------------------------------

/// Shard count of the durable replays: high enough that the lsm backend
/// runs one keyword map per shard and batched mutations straddle shards.
const DURABLE_SHARDS: usize = 4;

fn durable_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sse-diff-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Split a trace into three segments for the restart schedule: the server
/// is dropped (journal intact) after segment one, checkpointed at the
/// start of segment two's server, and dropped again before segment three
/// — so the replay crosses a journal-only recovery, a checkpoint that
/// must flush journal-recovered state, and a recovery layered on top of
/// that checkpoint.
fn segments(ops: &[Op]) -> [&[Op]; 3] {
    let third = ops.len() / 3;
    [&ops[..third], &ops[third..2 * third], &ops[2 * third..]]
}

/// Replay `ops` against a durable scheme-1 server on `backend`, restarting
/// the server between segments (see [`segments`]).
fn scheme1_durable_replay(seed: u64, backend: BackendKind, ops: &[Op]) -> Vec<SearchHits> {
    let dir = durable_dir(&format!("s1-{backend}"));
    let config = Scheme1Config::fast_profile(CAPACITY);
    let key = MasterKey::from_seed(seed);
    let mut results = Vec::new();
    for (i, segment) in segments(ops).into_iter().enumerate() {
        let server = Scheme1Server::open_durable_with_backend(
            RealVfs::arc(),
            CAPACITY,
            &dir,
            DURABLE_SHARDS,
            true,
            backend,
        )
        .unwrap();
        if i == 1 {
            server.checkpoint_home().unwrap();
        }
        let mut client = Scheme1Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            seed ^ (i as u64),
        );
        for op in segment {
            match op {
                // Scheme 1 removal is XOR re-toggling the same document;
                // reinit has no chain epochs to swap.
                Op::Add(doc) | Op::Remove(doc) => {
                    client.store(std::slice::from_ref(doc)).unwrap();
                }
                Op::FakeUpdate(kws) => client.fake_update(kws).unwrap(),
                Op::Reinit(_) => {}
                Op::Search(kw) => {
                    let mut hits = client.search(kw).unwrap();
                    hits.sort();
                    results.push(hits);
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    results
}

/// Replay `ops` against a durable scheme-2 server on `backend` with the
/// same restart schedule; the client's chain counter carries across
/// restarts via [`Scheme2ClientState`].
fn scheme2_durable_replay(seed: u64, backend: BackendKind, ops: &[Op]) -> Vec<SearchHits> {
    let dir = durable_dir(&format!("s2-{backend}"));
    let config = Scheme2Config::standard();
    let key = MasterKey::from_seed(seed);
    let mut results = Vec::new();
    let mut state: Option<Scheme2ClientState> = None;
    for (i, segment) in segments(ops).into_iter().enumerate() {
        let server = Scheme2Server::open_durable_with_backend(
            RealVfs::arc(),
            config.clone(),
            &dir,
            DURABLE_SHARDS,
            true,
            backend,
        )
        .unwrap();
        if i == 1 {
            server.checkpoint_home().unwrap();
        }
        let mut client = Scheme2Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            seed ^ (i as u64),
        );
        if let Some(s) = state.take() {
            client.restore_state(s);
        }
        for op in segment {
            match op {
                Op::Add(doc) => client.store(std::slice::from_ref(doc)).unwrap(),
                Op::Remove(doc) => client.remove(std::slice::from_ref(doc)).unwrap(),
                Op::FakeUpdate(kws) => client.fake_update(kws).unwrap(),
                Op::Reinit(docs) => client.reinitialize(docs).unwrap(),
                Op::Search(kw) => {
                    let mut hits = client.search(kw).unwrap();
                    hits.sort();
                    results.push(hits);
                }
            }
        }
        state = Some(client.state());
    }
    let _ = std::fs::remove_dir_all(&dir);
    results
}

/// Durable differential: the same trace replayed against durable servers
/// on every storage backend — across two restarts and a checkpoint — must
/// produce byte-identical search results to the naive no-index oracle.
#[test]
fn durable_backends_match_oracle_across_restarts_and_checkpoints() {
    let seed = SEEDS[0];
    let ops = trace(seed, 80, 10);
    let oracle_results = replay(
        &mut Oracle(NaiveClient::new(
            &MasterKey::from_seed(seed),
            Meter::new(),
            seed,
        )),
        &ops,
    );
    assert!(
        oracle_results.iter().any(|hits| !hits.is_empty()),
        "degenerate trace: the oracle never found anything (seed {seed})"
    );
    for backend in BackendKind::all() {
        let s1 = scheme1_durable_replay(seed, backend, &ops);
        assert_same(
            &format!("scheme1 durable ({backend}) vs oracle"),
            seed,
            DURABLE_SHARDS,
            &ops,
            &oracle_results,
            &s1,
        );
        let s2 = scheme2_durable_replay(seed, backend, &ops);
        assert_same(
            &format!("scheme2 durable ({backend}) vs oracle"),
            seed,
            DURABLE_SHARDS,
            &ops,
            &oracle_results,
            &s2,
        );
    }
}

#[test]
fn scheme1_repeated_and_batched_searches_match_cold_replay() {
    for seed in [SEEDS[0], SEEDS[1]] {
        for shards in [1, 4] {
            scheme1_warm_vs_cold(seed, shards);
        }
    }
}
