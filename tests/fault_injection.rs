//! Deterministic fault-injection torture tests.
//!
//! Two fault surfaces, both on seeded schedules (`FAULT_SEED` env var
//! overrides the default so CI can sweep several schedules):
//!
//! * **Storage crashes** — a ~100-op trace per scheme is first run under a
//!   counting [`FaultVfs`] to enumerate every scheduled write point, then
//!   re-run once per write point with a hard crash (torn final write, all
//!   later I/O refused). After each crash the directory is reopened through
//!   the real filesystem and every keyword is probed: the observable state
//!   must equal the oracle after exactly `completed` or `completed + 1`
//!   ops — each op is atomically in or out, never half-applied.
//!
//! * **Network faults** — the same style of trace runs over a
//!   [`FaultyLink`] that drops, truncates (executed but response lost),
//!   duplicates, and delays whole rounds. Every op either returns the
//!   oracle answer or a clean error; a search may additionally see ops
//!   whose ack was lost (in-doubt), but never an id that was neither
//!   confirmed nor in-doubt — no silent wrong answers.

use sse_repro::core::scheme1::{Scheme1Client, Scheme1Config, Scheme1Server};
use sse_repro::core::scheme2::{Scheme2Client, Scheme2ClientState, Scheme2Config, Scheme2Server};
use sse_repro::core::types::{Document, Keyword, MasterKey, SearchHits};
use sse_repro::net::fault::{FaultyLink, NetFaultConfig};
use sse_repro::net::link::MeteredLink;
use sse_repro::net::meter::Meter;
use sse_repro::storage::FaultVfs;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;

const KEYWORDS: [&str; 6] = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
/// Scheme 1 document-id capacity (bit-array length per keyword).
const CAPACITY: u64 = 128;
/// Length of the torture trace.
const TRACE_OPS: usize = 100;

/// Seed for every schedule in this file. CI runs the suite under several
/// distinct `FAULT_SEED` values; locally it defaults to a fixed seed so
/// failures reproduce.
fn fault_seed() -> u64 {
    std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD15A57E2)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sse-fault-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

enum Op {
    Store(Document),
    Search(Keyword),
}

fn doc_data(id: u64) -> Vec<u8> {
    format!("doc-{id}").into_bytes()
}

/// Seeded mixed trace: ~70% single-document stores (1–2 keywords from the
/// universe), ~30% searches. Ids are sequential so every doc fits the
/// scheme-1 capacity and data is reconstructible from the id alone.
fn build_trace(seed: u64) -> Vec<Op> {
    let mut ops = Vec::with_capacity(TRACE_OPS);
    let mut next_id = 0u64;
    for i in 0..TRACE_OPS {
        let roll = splitmix64(seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        if roll % 10 < 3 && next_id > 0 {
            let kw = KEYWORDS[(roll >> 8) as usize % KEYWORDS.len()];
            ops.push(Op::Search(Keyword::new(kw)));
        } else {
            let id = next_id;
            next_id += 1;
            assert!(id < CAPACITY, "trace outgrew the scheme-1 capacity");
            let mut kws = BTreeSet::new();
            kws.insert(KEYWORDS[(roll >> 8) as usize % KEYWORDS.len()]);
            kws.insert(KEYWORDS[(roll >> 16) as usize % KEYWORDS.len()]);
            ops.push(Op::Store(Document::new(id, doc_data(id), kws)));
        }
    }
    ops
}

/// Keyword → set of matching doc ids: the observable state of an index.
type Index = BTreeMap<Keyword, BTreeSet<u64>>;

fn empty_index() -> Index {
    KEYWORDS
        .iter()
        .map(|k| (Keyword::new(*k), BTreeSet::new()))
        .collect()
}

/// `oracle[c]` = the true index after the first `c` ops of `trace`.
fn oracle_states(trace: &[Op]) -> Vec<Index> {
    let mut states = Vec::with_capacity(trace.len() + 1);
    let mut cur = empty_index();
    states.push(cur.clone());
    for op in trace {
        if let Op::Store(doc) = op {
            for kw in &doc.keywords {
                cur.get_mut(kw).unwrap().insert(doc.id);
            }
        }
        states.push(cur.clone());
    }
    states
}

/// Collapse search hits to an id set, checking payload integrity on the
/// way: a durable (or faulty-network) server may omit documents, but it
/// must never return wrong bytes for an id it does return.
fn ids_checked(hits: &SearchHits) -> BTreeSet<u64> {
    for (id, data) in hits {
        assert_eq!(*data, doc_data(*id), "corrupt payload for doc {id}");
    }
    hits.iter().map(|(id, _)| *id).collect()
}

/// Probe every keyword through `search`, building the observable index.
fn observe(mut search: impl FnMut(&Keyword) -> SearchHits) -> Index {
    KEYWORDS
        .iter()
        .map(|k| {
            let kw = Keyword::new(*k);
            let ids = ids_checked(&search(&kw));
            (kw, ids)
        })
        .collect()
}

/// Assert the post-crash observable index matches the oracle after
/// `completed` ops, or after `completed + 1` (the crashed op's final
/// journal write may have survived intact even though the client saw an
/// error) — one consistent prefix, nothing in between.
fn assert_prefix(observed: &Index, oracle: &[Index], completed: usize, context: &str) {
    let lo = &oracle[completed];
    let hi = &oracle[(completed + 1).min(oracle.len() - 1)];
    assert!(
        observed == lo || observed == hi,
        "{context}: recovered state is not an op-atomic prefix \
         (completed {completed} ops)\nobserved: {observed:?}\nexpected: {lo:?}\n \
         or: {hi:?}"
    );
}

// ---------------------------------------------------------------------------
// Storage crash sweeps
// ---------------------------------------------------------------------------

#[test]
fn scheme1_crash_at_every_write_point_is_op_atomic() {
    let seed = fault_seed();
    let trace = build_trace(seed);
    let oracle = oracle_states(&trace);
    let config = Scheme1Config::fast_profile(CAPACITY);
    let key = MasterKey::from_seed(seed ^ 0x51);

    // Counting run: enumerate the workload's write points (the count
    // depends only on the op sequence, so it transfers to the crash runs).
    let count_dir = temp_dir("s1-count");
    let counting = FaultVfs::counting();
    let stats = counting.stats();
    {
        let server =
            Scheme1Server::open_durable_with_vfs(Arc::new(counting), CAPACITY, &count_dir).unwrap();
        let mut client = Scheme1Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            1,
        );
        for (i, op) in trace.iter().enumerate() {
            match op {
                Op::Store(doc) => client.store(std::slice::from_ref(doc)).unwrap(),
                Op::Search(kw) => {
                    // Fault-free runs must answer exactly.
                    let ids = ids_checked(&client.search(kw).unwrap());
                    assert_eq!(&ids, &oracle[i][kw], "fault-free search diverged at op {i}");
                }
            }
        }
    }
    let write_points = stats.writes();
    let _ = std::fs::remove_dir_all(&count_dir);
    assert!(write_points > 0, "workload scheduled no writes");

    let mut recoveries = 0u64;
    for k in 1..=write_points {
        let dir = temp_dir("s1-crash");
        let vfs = FaultVfs::crashing_at(seed, k);
        // Drive until the crash kills the "process": the first error ends
        // the run, exactly like a real crash ends a real process.
        let completed = match Scheme1Server::open_durable_with_vfs(Arc::new(vfs), CAPACITY, &dir) {
            Err(_) => 0,
            Ok(server) => {
                let mut client = Scheme1Client::new_seeded(
                    MeteredLink::new(server, Meter::new()),
                    key.clone(),
                    config.clone(),
                    1,
                );
                let mut completed = 0usize;
                for op in &trace {
                    let res = match op {
                        Op::Store(doc) => client.store(std::slice::from_ref(doc)),
                        Op::Search(kw) => client.search(kw).map(|_| ()),
                    };
                    if res.is_err() {
                        break;
                    }
                    completed += 1;
                }
                completed
            }
        };

        // The crashed process is gone; recover through the real
        // filesystem, as a restart would.
        let server = Scheme1Server::open_durable(CAPACITY, &dir).unwrap();
        if server.recovery().recovered_anything() {
            recoveries += 1;
        }
        // Scheme 1 clients are stateless beyond the master key: a fresh
        // client (any rng seed) can search everything the dead one wrote.
        let mut probe = Scheme1Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            7,
        );
        let observed = observe(|kw| probe.search(kw).unwrap());
        assert_prefix(
            &observed,
            &oracle,
            completed,
            &format!("crash at write {k}"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        recoveries > 0,
        "{write_points} crash points never exercised recovery"
    );
}

#[test]
fn scheme2_crash_at_every_write_point_is_op_atomic() {
    let seed = fault_seed();
    let trace = build_trace(seed ^ 0x2222);
    let oracle = oracle_states(&trace);
    // CtrPolicy::Always (the base profile) makes the counter a pure
    // function of attempted updates, so crash recovery can restore it
    // without consulting the server.
    let config = Scheme2Config::base(512);
    let key = MasterKey::from_seed(seed ^ 0x52);

    let count_dir = temp_dir("s2-count");
    let counting = FaultVfs::counting();
    let stats = counting.stats();
    {
        let server =
            Scheme2Server::open_durable_with_vfs(Arc::new(counting), config.clone(), &count_dir)
                .unwrap();
        let mut client = Scheme2Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            1,
        );
        for (i, op) in trace.iter().enumerate() {
            match op {
                Op::Store(doc) => client.store(std::slice::from_ref(doc)).unwrap(),
                Op::Search(kw) => {
                    let ids = ids_checked(&client.search(kw).unwrap());
                    assert_eq!(&ids, &oracle[i][kw], "fault-free search diverged at op {i}");
                }
            }
        }
    }
    let write_points = stats.writes();
    let _ = std::fs::remove_dir_all(&count_dir);
    assert!(write_points > 0, "workload scheduled no writes");

    let mut recoveries = 0u64;
    for k in 1..=write_points {
        let dir = temp_dir("s2-crash");
        let vfs = FaultVfs::crashing_at(seed, k);
        let (completed, attempted_updates) =
            match Scheme2Server::open_durable_with_vfs(Arc::new(vfs), config.clone(), &dir) {
                Err(_) => (0, 0),
                Ok(server) => {
                    let mut client = Scheme2Client::new_seeded(
                        MeteredLink::new(server, Meter::new()),
                        key.clone(),
                        config.clone(),
                        1,
                    );
                    let mut completed = 0usize;
                    let mut attempted = 0u64;
                    for op in &trace {
                        let res = match op {
                            Op::Store(doc) => {
                                // Write-ahead: count the update before
                                // issuing it, so the restored counter is
                                // valid whether or not the crashed op's
                                // generation landed.
                                attempted += 1;
                                client.store(std::slice::from_ref(doc))
                            }
                            Op::Search(kw) => client.search(kw).map(|_| ()),
                        };
                        if res.is_err() {
                            break;
                        }
                        completed += 1;
                    }
                    (completed, attempted)
                }
            };

        let server = Scheme2Server::open_durable(config.clone(), &dir).unwrap();
        if server.recovery().recovered_anything() {
            recoveries += 1;
        }
        // Scheme 2 clients carry a counter; restore it at the attempted
        // count. If the crashed update never landed, the trapdoor is one
        // step ahead and the server's chain walk absorbs the gap.
        let mut probe = Scheme2Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            7,
        );
        probe.restore_state(Scheme2ClientState {
            ctr: attempted_updates,
            epoch: 0,
            searched_since_update: true,
        });
        let observed = observe(|kw| probe.search(kw).unwrap());
        assert_prefix(
            &observed,
            &oracle,
            completed,
            &format!("crash at write {k}"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        recoveries > 0,
        "{write_points} crash points never exercised recovery"
    );
}

// ---------------------------------------------------------------------------
// Network fault traces
// ---------------------------------------------------------------------------

fn torture_net_config(seed: u64) -> NetFaultConfig {
    NetFaultConfig {
        seed,
        drop_per_mille: 60,
        truncate_per_mille: 60,
        duplicate_per_mille: 40,
        delay_per_mille: 40,
        delay_micros: 50,
        forced: Vec::new(),
    }
}

/// Check one successful search against the confirmed/in-doubt ledgers:
/// everything acknowledged must be present, and nothing outside
/// `confirmed ∪ in-doubt` may ever appear.
fn assert_no_silent_lies(kw: &Keyword, ids: &BTreeSet<u64>, confirmed: &Index, indoubt: &Index) {
    let c = &confirmed[kw];
    let d = &indoubt[kw];
    assert!(
        c.is_subset(ids),
        "search {kw} lost acknowledged docs: expected ⊇ {c:?}, got {ids:?}"
    );
    for id in ids {
        assert!(
            c.contains(id) || d.contains(id),
            "search {kw} fabricated doc {id} (confirmed {c:?}, in-doubt {d:?})"
        );
    }
}

#[test]
fn scheme1_network_faults_fail_clean_or_answer_truthfully() {
    let seed = fault_seed();
    let trace = build_trace(seed ^ 0x1111);
    let config = Scheme1Config::fast_profile(CAPACITY);
    let key = MasterKey::from_seed(seed ^ 0x61);

    let server = Scheme1Server::new_in_memory(CAPACITY);
    let link = FaultyLink::new(
        MeteredLink::new(server, Meter::new()),
        torture_net_config(seed),
    );
    let stats = link.stats();
    let mut client = Scheme1Client::new_seeded(link, key, config, 3);

    let mut confirmed = empty_index();
    let mut indoubt = empty_index();
    let (mut ok_ops, mut failed_ops) = (0u64, 0u64);
    for op in &trace {
        match op {
            Op::Store(doc) => match client.store(std::slice::from_ref(doc)) {
                Ok(()) => {
                    ok_ops += 1;
                    for kw in &doc.keywords {
                        confirmed.get_mut(kw).unwrap().insert(doc.id);
                    }
                }
                Err(_) => {
                    // Clean failure; the op may or may not have landed
                    // (a lost response after execution). Track it as
                    // in-doubt — it may legitimately show up later.
                    failed_ops += 1;
                    for kw in &doc.keywords {
                        indoubt.get_mut(kw).unwrap().insert(doc.id);
                    }
                }
            },
            Op::Search(kw) => match client.search(kw) {
                Ok(hits) => {
                    ok_ops += 1;
                    assert_no_silent_lies(kw, &ids_checked(&hits), &confirmed, &indoubt);
                }
                Err(_) => failed_ops += 1,
            },
        }
    }
    assert!(stats.injected() > 0, "schedule injected nothing — vacuous");
    assert!(failed_ops > 0, "no op ever failed — schedule too quiet");
    assert!(
        ok_ops > trace.len() as u64 / 2,
        "too few ops survived ({ok_ops} ok / {failed_ops} failed)"
    );
}

#[test]
fn scheme2_network_faults_fail_clean_or_answer_truthfully() {
    let seed = fault_seed();
    let trace = build_trace(seed ^ 0x3333);
    let config = Scheme2Config::base(512);
    let key = MasterKey::from_seed(seed ^ 0x62);

    let server = Scheme2Server::new_in_memory(config.clone());
    let link = FaultyLink::new(
        MeteredLink::new(server, Meter::new()),
        torture_net_config(seed ^ 0x9999),
    );
    let stats = link.stats();
    let mut client = Scheme2Client::new_seeded(link, key, config, 3);

    let mut confirmed = empty_index();
    let mut indoubt = empty_index();
    let (mut ok_ops, mut failed_ops) = (0u64, 0u64);
    for op in &trace {
        match op {
            Op::Store(doc) => match client.store(std::slice::from_ref(doc)) {
                Ok(()) => {
                    ok_ops += 1;
                    for kw in &doc.keywords {
                        confirmed.get_mut(kw).unwrap().insert(doc.id);
                    }
                }
                Err(_) => {
                    failed_ops += 1;
                    for kw in &doc.keywords {
                        indoubt.get_mut(kw).unwrap().insert(doc.id);
                    }
                    // Write-ahead resync: advance the counter as if the
                    // lost update landed. If it didn't, the trapdoor is
                    // ahead and the server's chain walk unlocks the
                    // older generations anyway.
                    let mut st = client.state();
                    st.ctr += 1;
                    st.searched_since_update = true;
                    client.restore_state(st);
                }
            },
            Op::Search(kw) => match client.search(kw) {
                Ok(hits) => {
                    ok_ops += 1;
                    assert_no_silent_lies(kw, &ids_checked(&hits), &confirmed, &indoubt);
                }
                Err(_) => failed_ops += 1,
            },
        }
    }
    assert!(stats.injected() > 0, "schedule injected nothing — vacuous");
    assert!(failed_ops > 0, "no op ever failed — schedule too quiet");
    assert!(
        ok_ops > trace.len() as u64 / 2,
        "too few ops survived ({ok_ops} ok / {failed_ops} failed)"
    );
}
