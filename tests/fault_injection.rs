//! Deterministic fault-injection torture tests.
//!
//! Two fault surfaces, both on seeded schedules (`FAULT_SEED` env var
//! overrides the default so CI can sweep several schedules):
//!
//! * **Storage crashes** — a ~100-op trace per scheme is first run under a
//!   counting [`FaultVfs`] to enumerate every scheduled write point, then
//!   re-run once per write point with a hard crash (torn final write, all
//!   later I/O refused). After each crash the directory is reopened through
//!   the real filesystem and every keyword is probed: the observable state
//!   must equal the oracle after exactly `completed` or `completed + 1`
//!   ops — each op is atomically in or out, never half-applied.
//!
//! * **Network faults** — the same style of trace runs over a
//!   [`FaultyLink`] that drops, truncates (executed but response lost),
//!   duplicates, and delays whole rounds. Every op either returns the
//!   oracle answer or a clean error; a search may additionally see ops
//!   whose ack was lost (in-doubt), but never an id that was neither
//!   confirmed nor in-doubt — no silent wrong answers.
//!
//! Each surface runs twice per scheme: the classic single-shard trace,
//! and a batched trace (`store_batch` / `fake_update_many` — the client
//! paths behind the TCP `UPDATE_MANY` envelope) against a 4-shard server,
//! where multi-keyword mutations are journaled as cross-shard batch
//! slices and the prefix assertion demands op-atomicity across shards.
//!
//! Every storage sweep additionally runs once per storage backend
//! (`btree` and `lsm`) against the same oracle — the durability contract
//! is backend-independent. `FAULT_BACKEND=btree|lsm` narrows a run to one
//! backend so CI can matrix the suite.

use sse_repro::core::scheme1::{Scheme1Client, Scheme1Config, Scheme1Server};
use sse_repro::core::scheme2::{Scheme2Client, Scheme2ClientState, Scheme2Config, Scheme2Server};
use sse_repro::core::types::{Document, Keyword, MasterKey, SearchHits};
use sse_repro::net::fault::{FaultyLink, NetFaultConfig};
use sse_repro::net::link::{MeteredLink, Transport};
use sse_repro::net::meter::Meter;
use sse_repro::storage::{BackendKind, FaultVfs, RealVfs};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;

const KEYWORDS: [&str; 6] = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
/// Scheme 1 document-id capacity (bit-array length per keyword).
const CAPACITY: u64 = 128;
/// Length of the torture trace.
const TRACE_OPS: usize = 100;

/// Seed for every schedule in this file. CI runs the suite under several
/// distinct `FAULT_SEED` values; locally it defaults to a fixed seed so
/// failures reproduce.
fn fault_seed() -> u64 {
    std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD15A57E2)
}

/// Storage backends each crash sweep runs against. `FAULT_BACKEND` narrows
/// the list to one (CI matrixes the suite per backend); by default every
/// backend sweeps, so a plain `cargo test` exercises both.
fn fault_backends() -> Vec<BackendKind> {
    match std::env::var("FAULT_BACKEND") {
        Ok(s) => vec![s.parse().expect("FAULT_BACKEND must be btree or lsm")],
        Err(_) => BackendKind::all().to_vec(),
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sse-fault-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

enum Op {
    Store(Document),
    /// Multi-document batched store, driven through the client's
    /// `store_batch` path. Its multi-keyword index mutation spans several
    /// shards on a sharded server, where it is journaled as batch slices —
    /// the crash sweep then checks op-atomicity *across* shards.
    StoreBatch(Vec<Document>),
    /// Batched fake updates (one shared counter value). Never changes any
    /// search result; only the fault behavior is interesting.
    FakeUpdateMany(Vec<Vec<Keyword>>),
    Search(Keyword),
}

fn doc_data(id: u64) -> Vec<u8> {
    format!("doc-{id}").into_bytes()
}

/// Seeded mixed trace: ~70% single-document stores (1–2 keywords from the
/// universe), ~30% searches. Ids are sequential so every doc fits the
/// scheme-1 capacity and data is reconstructible from the id alone.
fn build_trace(seed: u64) -> Vec<Op> {
    let mut ops = Vec::with_capacity(TRACE_OPS);
    let mut next_id = 0u64;
    for i in 0..TRACE_OPS {
        let roll = splitmix64(seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        if roll % 10 < 3 && next_id > 0 {
            let kw = KEYWORDS[(roll >> 8) as usize % KEYWORDS.len()];
            ops.push(Op::Search(Keyword::new(kw)));
        } else {
            let id = next_id;
            next_id += 1;
            assert!(id < CAPACITY, "trace outgrew the scheme-1 capacity");
            let mut kws = BTreeSet::new();
            kws.insert(KEYWORDS[(roll >> 8) as usize % KEYWORDS.len()]);
            kws.insert(KEYWORDS[(roll >> 16) as usize % KEYWORDS.len()]);
            ops.push(Op::Store(Document::new(id, doc_data(id), kws)));
        }
    }
    ops
}

/// Length of the batched torture trace. Shorter than [`TRACE_OPS`]: the
/// sharded crash sweep reruns it once per scheduled write, and every
/// batch schedules several writes (one journal slice per touched shard).
const BATCH_TRACE_OPS: usize = 60;

/// Seeded batched trace: ~50% `StoreBatch` ops (1–2 documents with 2–3
/// keywords each, so index mutations routinely straddle shards), ~20%
/// `FakeUpdateMany`, ~30% searches.
fn build_batched_trace(seed: u64) -> Vec<Op> {
    let mut ops = Vec::with_capacity(BATCH_TRACE_OPS);
    let mut next_id = 0u64;
    for i in 0..BATCH_TRACE_OPS {
        let roll = splitmix64(seed ^ (i as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB));
        if roll % 10 < 3 && next_id > 0 {
            let kw = KEYWORDS[(roll >> 8) as usize % KEYWORDS.len()];
            ops.push(Op::Search(Keyword::new(kw)));
        } else if roll % 10 < 5 {
            let n_groups = (1 + (roll >> 8) % 2) as usize;
            let groups: Vec<Vec<Keyword>> = (0..n_groups)
                .map(|g| {
                    let n = (1 + (roll >> (16 + 8 * g)) % 2) as usize;
                    (0..n)
                        .map(|j| {
                            Keyword::new(
                                KEYWORDS[(roll >> (24 + 8 * g + j)) as usize % KEYWORDS.len()],
                            )
                        })
                        .collect()
                })
                .collect();
            ops.push(Op::FakeUpdateMany(groups));
        } else {
            let n_docs = 1 + (roll >> 4) % 2;
            let mut docs = Vec::new();
            for d in 0..n_docs as usize {
                let id = next_id;
                next_id += 1;
                assert!(id < CAPACITY, "trace outgrew the scheme-1 capacity");
                let mut kws = BTreeSet::new();
                for j in 0..3 {
                    kws.insert(KEYWORDS[(roll >> (8 + 8 * d + 4 * j)) as usize % KEYWORDS.len()]);
                }
                docs.push(Document::new(id, doc_data(id), kws));
            }
            ops.push(Op::StoreBatch(docs));
        }
    }
    ops
}

/// Keyword → set of matching doc ids: the observable state of an index.
type Index = BTreeMap<Keyword, BTreeSet<u64>>;

fn empty_index() -> Index {
    KEYWORDS
        .iter()
        .map(|k| (Keyword::new(*k), BTreeSet::new()))
        .collect()
}

/// `oracle[c]` = the true index after the first `c` ops of `trace`.
fn oracle_states(trace: &[Op]) -> Vec<Index> {
    let mut states = Vec::with_capacity(trace.len() + 1);
    let mut cur = empty_index();
    states.push(cur.clone());
    for op in trace {
        match op {
            Op::Store(doc) => {
                for kw in &doc.keywords {
                    cur.get_mut(kw).unwrap().insert(doc.id);
                }
            }
            Op::StoreBatch(docs) => {
                for doc in docs {
                    for kw in &doc.keywords {
                        cur.get_mut(kw).unwrap().insert(doc.id);
                    }
                }
            }
            Op::FakeUpdateMany(_) | Op::Search(_) => {}
        }
        states.push(cur.clone());
    }
    states
}

/// The keywords a mutation may touch, for in-doubt bookkeeping, paired
/// with the doc ids it may have landed (fake updates land nothing).
fn mutated_ids(op: &Op) -> Vec<(Keyword, u64)> {
    match op {
        Op::Store(doc) => doc.keywords.iter().map(|kw| (kw.clone(), doc.id)).collect(),
        Op::StoreBatch(docs) => docs
            .iter()
            .flat_map(|doc| doc.keywords.iter().map(|kw| (kw.clone(), doc.id)))
            .collect(),
        Op::FakeUpdateMany(_) | Op::Search(_) => Vec::new(),
    }
}

/// Collapse search hits to an id set, checking payload integrity on the
/// way: a durable (or faulty-network) server may omit documents, but it
/// must never return wrong bytes for an id it does return.
fn ids_checked(hits: &SearchHits) -> BTreeSet<u64> {
    for (id, data) in hits {
        assert_eq!(*data, doc_data(*id), "corrupt payload for doc {id}");
    }
    hits.iter().map(|(id, _)| *id).collect()
}

/// Probe every keyword through `search`, building the observable index.
fn observe(mut search: impl FnMut(&Keyword) -> SearchHits) -> Index {
    KEYWORDS
        .iter()
        .map(|k| {
            let kw = Keyword::new(*k);
            let ids = ids_checked(&search(&kw));
            (kw, ids)
        })
        .collect()
}

/// Assert the post-crash observable index matches the oracle after
/// `completed` ops, or after `completed + 1` (the crashed op's final
/// journal write may have survived intact even though the client saw an
/// error) — one consistent prefix, nothing in between.
fn assert_prefix(observed: &Index, oracle: &[Index], completed: usize, context: &str) {
    let lo = &oracle[completed];
    let hi = &oracle[(completed + 1).min(oracle.len() - 1)];
    assert!(
        observed == lo || observed == hi,
        "{context}: recovered state is not an op-atomic prefix \
         (completed {completed} ops)\nobserved: {observed:?}\nexpected: {lo:?}\n \
         or: {hi:?}"
    );
}

// ---------------------------------------------------------------------------
// Storage crash sweeps
// ---------------------------------------------------------------------------

/// Dispatch one trace op against a scheme-1 client.
fn drive_scheme1<T: sse_repro::net::link::Transport>(
    client: &mut Scheme1Client<T>,
    op: &Op,
) -> sse_repro::core::error::Result<()> {
    match op {
        Op::Store(doc) => client.store(std::slice::from_ref(doc)),
        Op::StoreBatch(docs) => client.store_batch(docs),
        // Scheme 1 has no counter to share across groups; the flattened
        // list re-randomizes the same entries (stateless, result-neutral).
        Op::FakeUpdateMany(groups) => client.fake_update(&groups.concat()),
        Op::Search(kw) => client.search(kw).map(|_| ()),
    }
}

/// Shared body of the scheme-1 crash sweeps. With `shards > 1` every
/// multi-keyword mutation is journaled as batch slices across several
/// independently fsynced shard journals, and [`assert_prefix`] then
/// demands op-atomicity *across* shards: a batch whose slices only partly
/// reached disk must roll back wholesale on recovery.
fn scheme1_crash_sweep(trace: &[Op], seed: u64, shards: usize, backend: BackendKind) {
    let oracle = oracle_states(trace);
    let config = Scheme1Config::fast_profile(CAPACITY);
    let key = MasterKey::from_seed(seed ^ 0x51);

    // Counting run: enumerate the workload's write points (the count
    // depends only on the op sequence, so it transfers to the crash runs).
    let count_dir = temp_dir("s1-count");
    let counting = FaultVfs::counting();
    let stats = counting.stats();
    {
        let server = Scheme1Server::open_durable_with_backend(
            Arc::new(counting),
            CAPACITY,
            &count_dir,
            shards,
            true,
            backend,
        )
        .unwrap();
        let mut client = Scheme1Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            1,
        );
        for (i, op) in trace.iter().enumerate() {
            match op {
                Op::Search(kw) => {
                    // Fault-free runs must answer exactly.
                    let ids = ids_checked(&client.search(kw).unwrap());
                    assert_eq!(&ids, &oracle[i][kw], "fault-free search diverged at op {i}");
                }
                other => drive_scheme1(&mut client, other).unwrap(),
            }
        }
    }
    let write_points = stats.writes();
    let _ = std::fs::remove_dir_all(&count_dir);
    assert!(write_points > 0, "workload scheduled no writes");

    let mut recoveries = 0u64;
    for k in 1..=write_points {
        let dir = temp_dir("s1-crash");
        let vfs = FaultVfs::crashing_at(seed, k);
        // Drive until the crash kills the "process": the first error ends
        // the run, exactly like a real crash ends a real process.
        let completed = match Scheme1Server::open_durable_with_backend(
            Arc::new(vfs),
            CAPACITY,
            &dir,
            shards,
            true,
            backend,
        ) {
            Err(_) => 0,
            Ok(server) => {
                let mut client = Scheme1Client::new_seeded(
                    MeteredLink::new(server, Meter::new()),
                    key.clone(),
                    config.clone(),
                    1,
                );
                let mut completed = 0usize;
                for op in trace {
                    if drive_scheme1(&mut client, op).is_err() {
                        break;
                    }
                    completed += 1;
                }
                completed
            }
        };

        // The crashed process is gone; recover through the real
        // filesystem, as a restart would. The shard manifest (not the
        // caller) dictates the shard count on reopen; the backend manifest
        // likewise pins the backend the restart must request.
        let server = Scheme1Server::open_durable_with_backend(
            RealVfs::arc(),
            CAPACITY,
            &dir,
            shards,
            true,
            backend,
        )
        .unwrap();
        if server.recovery().recovered_anything() {
            recoveries += 1;
        }
        // If the crash hit the first open before the manifest's atomic
        // rename, the directory is still fresh and reopens single-shard;
        // any run that got past open must reopen at the manifest's count.
        assert!(
            completed == 0 || server.num_shards() == shards,
            "reopen must adopt the manifest's shard count (got {})",
            server.num_shards()
        );
        // Scheme 1 clients are stateless beyond the master key: a fresh
        // client (any rng seed) can search everything the dead one wrote.
        let mut probe = Scheme1Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            7,
        );
        let observed = observe(|kw| probe.search(kw).unwrap());
        assert_prefix(
            &observed,
            &oracle,
            completed,
            &format!("crash at write {k} ({shards} shard(s), {backend} backend)"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        recoveries > 0,
        "{write_points} crash points never exercised recovery ({backend} backend)"
    );
}

#[test]
fn scheme1_crash_at_every_write_point_is_op_atomic() {
    let seed = fault_seed();
    for backend in fault_backends() {
        scheme1_crash_sweep(&build_trace(seed), seed, 1, backend);
    }
}

#[test]
fn scheme1_sharded_batches_crash_op_atomically_across_shards() {
    let seed = fault_seed();
    for backend in fault_backends() {
        scheme1_crash_sweep(
            &build_batched_trace(seed ^ 0x4444),
            seed ^ 0x4444,
            4,
            backend,
        );
    }
}

/// Dispatch one trace op against a scheme-2 client. Every mutation
/// variant consumes exactly one counter value (`store_batch` and
/// `fake_update_many` share one across their parts by design), which the
/// crash sweep's write-ahead counter accounting relies on.
fn drive_scheme2<T: sse_repro::net::link::Transport>(
    client: &mut Scheme2Client<T>,
    op: &Op,
) -> sse_repro::core::error::Result<()> {
    match op {
        Op::Store(doc) => client.store(std::slice::from_ref(doc)),
        Op::StoreBatch(docs) => client.store_batch(docs),
        Op::FakeUpdateMany(groups) => client.fake_update_many(groups),
        Op::Search(kw) => client.search(kw).map(|_| ()),
    }
}

fn is_mutation(op: &Op) -> bool {
    matches!(op, Op::Store(_) | Op::StoreBatch(_) | Op::FakeUpdateMany(_))
}

/// Shared body of the scheme-2 crash sweeps (see [`scheme1_crash_sweep`]
/// for what `shards > 1` adds).
fn scheme2_crash_sweep(trace: &[Op], seed: u64, shards: usize, backend: BackendKind) {
    let oracle = oracle_states(trace);
    // CtrPolicy::Always (the base profile) makes the counter a pure
    // function of attempted updates, so crash recovery can restore it
    // without consulting the server.
    let config = Scheme2Config::base(512);
    let key = MasterKey::from_seed(seed ^ 0x52);

    let count_dir = temp_dir("s2-count");
    let counting = FaultVfs::counting();
    let stats = counting.stats();
    {
        let server = Scheme2Server::open_durable_with_backend(
            Arc::new(counting),
            config.clone(),
            &count_dir,
            shards,
            true,
            backend,
        )
        .unwrap();
        let mut client = Scheme2Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            1,
        );
        for (i, op) in trace.iter().enumerate() {
            match op {
                Op::Search(kw) => {
                    let ids = ids_checked(&client.search(kw).unwrap());
                    assert_eq!(&ids, &oracle[i][kw], "fault-free search diverged at op {i}");
                }
                other => drive_scheme2(&mut client, other).unwrap(),
            }
        }
    }
    let write_points = stats.writes();
    let _ = std::fs::remove_dir_all(&count_dir);
    assert!(write_points > 0, "workload scheduled no writes");

    let mut recoveries = 0u64;
    for k in 1..=write_points {
        let dir = temp_dir("s2-crash");
        let vfs = FaultVfs::crashing_at(seed, k);
        let (completed, attempted_updates) = match Scheme2Server::open_durable_with_backend(
            Arc::new(vfs),
            config.clone(),
            &dir,
            shards,
            true,
            backend,
        ) {
            Err(_) => (0, 0),
            Ok(server) => {
                let mut client = Scheme2Client::new_seeded(
                    MeteredLink::new(server, Meter::new()),
                    key.clone(),
                    config.clone(),
                    1,
                );
                let mut completed = 0usize;
                let mut attempted = 0u64;
                for op in trace {
                    // Write-ahead: count the update before issuing it, so
                    // the restored counter is valid whether or not the
                    // crashed op's generations landed.
                    if is_mutation(op) {
                        attempted += 1;
                    }
                    if drive_scheme2(&mut client, op).is_err() {
                        break;
                    }
                    completed += 1;
                }
                (completed, attempted)
            }
        };

        let server = Scheme2Server::open_durable_with_backend(
            RealVfs::arc(),
            config.clone(),
            &dir,
            shards,
            true,
            backend,
        )
        .unwrap();
        if server.recovery().recovered_anything() {
            recoveries += 1;
        }
        // If the crash hit the first open before the manifest's atomic
        // rename, the directory is still fresh and reopens single-shard;
        // any run that got past open must reopen at the manifest's count.
        assert!(
            completed == 0 || server.num_shards() == shards,
            "reopen must adopt the manifest's shard count (got {})",
            server.num_shards()
        );
        // Scheme 2 clients carry a counter; restore it at the attempted
        // count. If the crashed update never landed, the trapdoor is one
        // step ahead and the server's chain walk absorbs the gap.
        let mut probe = Scheme2Client::new_seeded(
            MeteredLink::new(server, Meter::new()),
            key.clone(),
            config.clone(),
            7,
        );
        probe.restore_state(Scheme2ClientState {
            ctr: attempted_updates,
            epoch: 0,
            searched_since_update: true,
        });
        let observed = observe(|kw| probe.search(kw).unwrap());
        assert_prefix(
            &observed,
            &oracle,
            completed,
            &format!("crash at write {k} ({shards} shard(s), {backend} backend)"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        recoveries > 0,
        "{write_points} crash points never exercised recovery ({backend} backend)"
    );
}

#[test]
fn scheme2_crash_at_every_write_point_is_op_atomic() {
    let seed = fault_seed();
    for backend in fault_backends() {
        scheme2_crash_sweep(&build_trace(seed ^ 0x2222), seed, 1, backend);
    }
}

#[test]
fn scheme2_sharded_batches_crash_op_atomically_across_shards() {
    let seed = fault_seed();
    for backend in fault_backends() {
        scheme2_crash_sweep(
            &build_batched_trace(seed ^ 0x6666),
            seed ^ 0x6666,
            4,
            backend,
        );
    }
}

// ---------------------------------------------------------------------------
// Network fault traces
// ---------------------------------------------------------------------------

fn torture_net_config(seed: u64) -> NetFaultConfig {
    NetFaultConfig {
        seed,
        drop_per_mille: 60,
        truncate_per_mille: 60,
        duplicate_per_mille: 40,
        delay_per_mille: 40,
        delay_micros: 50,
        forced: Vec::new(),
    }
}

/// Check one successful search against the confirmed/in-doubt ledgers:
/// everything acknowledged must be present, and nothing outside
/// `confirmed ∪ in-doubt` may ever appear.
fn assert_no_silent_lies(kw: &Keyword, ids: &BTreeSet<u64>, confirmed: &Index, indoubt: &Index) {
    let c = &confirmed[kw];
    let d = &indoubt[kw];
    assert!(
        c.is_subset(ids),
        "search {kw} lost acknowledged docs: expected ⊇ {c:?}, got {ids:?}"
    );
    for id in ids {
        assert!(
            c.contains(id) || d.contains(id),
            "search {kw} fabricated doc {id} (confirmed {c:?}, in-doubt {d:?})"
        );
    }
}

/// Shared body of the scheme-1 network-fault sweeps.
fn scheme1_network_sweep(trace: &[Op], seed: u64, shards: usize) {
    let config = Scheme1Config::fast_profile(CAPACITY);
    let key = MasterKey::from_seed(seed ^ 0x61);

    let server = Scheme1Server::new_in_memory_sharded(CAPACITY, shards);
    let link = FaultyLink::new(
        MeteredLink::new(server, Meter::new()),
        torture_net_config(seed),
    );
    let stats = link.stats();
    let mut client = Scheme1Client::new_seeded(link, key, config, 3);

    let mut confirmed = empty_index();
    let mut indoubt = empty_index();
    let (mut ok_ops, mut failed_ops) = (0u64, 0u64);
    for op in trace {
        if let Op::Search(kw) = op {
            match client.search(kw) {
                Ok(hits) => {
                    ok_ops += 1;
                    assert_no_silent_lies(kw, &ids_checked(&hits), &confirmed, &indoubt);
                }
                Err(_) => failed_ops += 1,
            }
        } else {
            match drive_scheme1(&mut client, op) {
                Ok(()) => {
                    ok_ops += 1;
                    for (kw, id) in mutated_ids(op) {
                        confirmed.get_mut(&kw).unwrap().insert(id);
                    }
                }
                Err(_) => {
                    // Clean failure; the op may or may not have landed
                    // (a lost response after execution). Track it as
                    // in-doubt — it may legitimately show up later.
                    failed_ops += 1;
                    for (kw, id) in mutated_ids(op) {
                        indoubt.get_mut(&kw).unwrap().insert(id);
                    }
                }
            }
        }
    }
    assert!(stats.injected() > 0, "schedule injected nothing — vacuous");
    assert!(failed_ops > 0, "no op ever failed — schedule too quiet");
    assert!(
        ok_ops > trace.len() as u64 / 2,
        "too few ops survived ({ok_ops} ok / {failed_ops} failed)"
    );
}

#[test]
fn scheme1_network_faults_fail_clean_or_answer_truthfully() {
    let seed = fault_seed();
    scheme1_network_sweep(&build_trace(seed ^ 0x1111), seed, 1);
}

#[test]
fn scheme1_batched_network_faults_over_sharded_server() {
    let seed = fault_seed();
    scheme1_network_sweep(&build_batched_trace(seed ^ 0x5555), seed ^ 0x5555, 4);
}

/// Shared body of the scheme-2 network-fault sweeps.
fn scheme2_network_sweep(trace: &[Op], seed: u64, shards: usize) {
    let config = Scheme2Config::base(512);
    let key = MasterKey::from_seed(seed ^ 0x62);

    let server = Scheme2Server::new_in_memory_sharded(config.clone(), shards);
    let link = FaultyLink::new(
        MeteredLink::new(server, Meter::new()),
        torture_net_config(seed ^ 0x9999),
    );
    let stats = link.stats();
    let mut client = Scheme2Client::new_seeded(link, key, config, 3);

    let mut confirmed = empty_index();
    let mut indoubt = empty_index();
    let (mut ok_ops, mut failed_ops) = (0u64, 0u64);
    for op in trace {
        if let Op::Search(kw) = op {
            match client.search(kw) {
                Ok(hits) => {
                    ok_ops += 1;
                    assert_no_silent_lies(kw, &ids_checked(&hits), &confirmed, &indoubt);
                }
                Err(_) => failed_ops += 1,
            }
        } else {
            match drive_scheme2(&mut client, op) {
                Ok(()) => {
                    ok_ops += 1;
                    for (kw, id) in mutated_ids(op) {
                        confirmed.get_mut(&kw).unwrap().insert(id);
                    }
                }
                Err(_) => {
                    failed_ops += 1;
                    for (kw, id) in mutated_ids(op) {
                        indoubt.get_mut(&kw).unwrap().insert(id);
                    }
                    // Write-ahead resync: advance the counter as if the
                    // lost update landed (every mutation variant consumes
                    // exactly one counter value). If it didn't land, the
                    // trapdoor is ahead and the server's chain walk
                    // unlocks the older generations anyway.
                    let mut st = client.state();
                    st.ctr += 1;
                    st.searched_since_update = true;
                    client.restore_state(st);
                }
            }
        }
    }
    assert!(stats.injected() > 0, "schedule injected nothing — vacuous");
    assert!(failed_ops > 0, "no op ever failed — schedule too quiet");
    assert!(
        ok_ops > trace.len() as u64 / 2,
        "too few ops survived ({ok_ops} ok / {failed_ops} failed)"
    );
}

// ---------------------------------------------------------------------------
// Mid-group crash sweeps (group commit)
// ---------------------------------------------------------------------------

/// In-process transport sharing one server among several client threads —
/// the shape a single-owner [`MeteredLink`] cannot express. This is what
/// makes flush *groups* form: concurrent mutations stage into the same
/// shard journal and one committer fsyncs for all of them.
struct SharedLink<S>(Arc<S>);

impl Transport for SharedLink<Scheme2Server> {
    fn round_trip(&mut self, request: &[u8]) -> std::io::Result<Vec<u8>> {
        Ok(self.0.handle_shared(request))
    }
}

impl Transport for SharedLink<Scheme1Server> {
    fn round_trip(&mut self, request: &[u8]) -> std::io::Result<Vec<u8>> {
        Ok(self.0.handle_shared(request))
    }
}

/// Concurrent writers in the mid-group sweeps.
const GROUP_WRITERS: usize = 3;
/// Stores attempted per writer before giving up.
const GROUP_OPS: usize = 10;
/// Sync points swept per crash mode. Covers the open-time syncs plus a
/// band of mid-workload syncs where several writers' records share one
/// flush group; points past the workload's total sync count simply run
/// crash-free (the contract assertions still apply).
const GROUP_SYNC_POINTS: u64 = 20;

/// One writer's trace: sequential doc ids in a private range, 1–2
/// keywords each, all derived from the seed.
fn writer_trace(seed: u64, writer: usize) -> Vec<Document> {
    (0..GROUP_OPS)
        .map(|i| {
            let roll = splitmix64(seed ^ ((writer as u64) << 24) ^ (i as u64));
            let id = (writer * GROUP_OPS + i) as u64;
            let mut kws = BTreeSet::new();
            kws.insert(KEYWORDS[(roll >> 8) as usize % KEYWORDS.len()]);
            kws.insert(KEYWORDS[(roll >> 16) as usize % KEYWORDS.len()]);
            Document::new(id, doc_data(id), kws)
        })
        .collect()
}

/// Check one recovered index against a writer's ledger:
///
/// * every **acked** store is fully present (ack came strictly after the
///   group fsync, so a crash later in the group must not lose it);
/// * the at-most-one **in-doubt** store (errored mid-crash; its journal
///   record may have reached disk before the failed fsync) is all-in or
///   all-out, never half a document;
/// * nothing else ever appears.
fn assert_acked_prefix(observed: &Index, trace: &[Document], acked: usize, context: &str) {
    for doc in &trace[..acked] {
        for kw in &doc.keywords {
            assert!(
                observed[kw].contains(&doc.id),
                "{context}: acked doc {} lost under {kw}",
                doc.id
            );
        }
    }
    if acked < trace.len() {
        let doc = &trace[acked];
        let present = doc
            .keywords
            .iter()
            .filter(|kw| observed[kw].contains(&doc.id))
            .count();
        assert!(
            present == 0 || present == doc.keywords.len(),
            "{context}: in-doubt doc {} recovered under {present} of {} keywords",
            doc.id,
            doc.keywords.len()
        );
    }
    let mut allowed = empty_index();
    for doc in &trace[..(acked + 1).min(trace.len())] {
        for kw in &doc.keywords {
            allowed.get_mut(kw).unwrap().insert(doc.id);
        }
    }
    for (kw, ids) in observed {
        assert!(
            ids.is_subset(&allowed[kw]),
            "{context}: fabricated ids under {kw}: {ids:?} ⊄ {:?}",
            allowed[kw]
        );
    }
}

/// Build the crashing VFS for one sweep point: `at_sync` crashes *before*
/// sync `n` runs (group written, never durable, never acked), the other
/// mode just *after* it completes (group durable, acks racing the crash).
fn group_crash_vfs(at_sync: bool, seed: u64, n: u64) -> FaultVfs {
    if at_sync {
        FaultVfs::crashing_at_sync(seed, n)
    } else {
        FaultVfs::crashing_after_sync(seed, n)
    }
}

/// Scheme-2 mid-group crash sweep: [`GROUP_WRITERS`] concurrent clients
/// store through one durable single-shard server (one shard journal ⇒
/// maximal grouping) while a crash is scheduled at or just after sync
/// point `n`; after recovery through the real filesystem, every writer's
/// ledger must hold the acked-prefix contract.
fn scheme2_mid_group_crash_sweep(at_sync: bool, seed: u64, backend: BackendKind) {
    let config = Scheme2Config::base(512);
    let traces: Vec<Vec<Document>> = (0..GROUP_WRITERS).map(|w| writer_trace(seed, w)).collect();

    let (mut crashed_runs, mut recoveries) = (0u64, 0u64);
    for n in 1..=GROUP_SYNC_POINTS {
        let dir = temp_dir("s2-group-crash");
        let vfs = group_crash_vfs(at_sync, seed ^ n, n);
        // acked[w] = stores writer w saw succeed (always a prefix: the
        // first error ends the writer, like a crash ends a process).
        let acked: Vec<usize> = match Scheme2Server::open_durable_with_backend(
            Arc::new(vfs),
            config.clone(),
            &dir,
            1,
            true,
            backend,
        ) {
            Err(_) => vec![0; GROUP_WRITERS],
            Ok(server) => {
                let server = Arc::new(server);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..GROUP_WRITERS)
                        .map(|w| {
                            let server = server.clone();
                            let trace = &traces[w];
                            scope.spawn(move || {
                                let mut client = Scheme2Client::new_seeded(
                                    SharedLink(server),
                                    MasterKey::from_seed(seed ^ 0x52 ^ (w as u64)),
                                    Scheme2Config::base(512),
                                    w as u64,
                                );
                                let mut ok = 0usize;
                                for doc in trace {
                                    if client.store(std::slice::from_ref(doc)).is_err() {
                                        break;
                                    }
                                    ok += 1;
                                }
                                ok
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
            }
        };
        if acked.iter().sum::<usize>() < GROUP_WRITERS * GROUP_OPS {
            crashed_runs += 1;
        }

        // The crashed process is gone; recover through the real filesystem.
        let server = Arc::new(
            Scheme2Server::open_durable_with_backend(
                RealVfs::arc(),
                config.clone(),
                &dir,
                1,
                true,
                backend,
            )
            .unwrap(),
        );
        if server.recovery().recovered_anything() {
            recoveries += 1;
        }
        for (w, trace) in traces.iter().enumerate() {
            let mut probe = Scheme2Client::new_seeded(
                SharedLink(server.clone()),
                MasterKey::from_seed(seed ^ 0x52 ^ (w as u64)),
                config.clone(),
                7,
            );
            // Write-ahead counter restore: the in-doubt store consumed a
            // counter value whether or not it landed.
            probe.restore_state(Scheme2ClientState {
                ctr: ((acked[w] + 1).min(trace.len())) as u64,
                epoch: 0,
                searched_since_update: true,
            });
            let observed = observe(|kw| probe.search(kw).unwrap());
            let mode = if at_sync { "at" } else { "after" };
            assert_acked_prefix(
                &observed,
                trace,
                acked[w],
                &format!("crash {mode} sync {n}, writer {w}, {backend} backend"),
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        crashed_runs > 0,
        "no sweep point crashed mid-workload — raise GROUP_SYNC_POINTS"
    );
    assert!(
        recoveries > 0,
        "{GROUP_SYNC_POINTS} crash points never exercised recovery ({backend} backend)"
    );
}

#[test]
fn scheme2_mid_group_crash_between_write_and_fsync_keeps_acked_prefix() {
    for backend in fault_backends() {
        scheme2_mid_group_crash_sweep(true, fault_seed() ^ 0x8888, backend);
    }
}

#[test]
fn scheme2_mid_group_crash_between_fsync_and_ack_keeps_acked_prefix() {
    for backend in fault_backends() {
        scheme2_mid_group_crash_sweep(false, fault_seed() ^ 0x9999, backend);
    }
}

/// Scheme-1 variant of the mid-group sweep: same concurrent-writer shape
/// over the bit-matrix scheme (both schemes share the commit pipeline, so
/// a regression in either integration shows up here).
fn scheme1_mid_group_crash_sweep(at_sync: bool, seed: u64, backend: BackendKind) {
    let config = Scheme1Config::fast_profile(CAPACITY);
    let traces: Vec<Vec<Document>> = (0..GROUP_WRITERS).map(|w| writer_trace(seed, w)).collect();

    let (mut crashed_runs, mut recoveries) = (0u64, 0u64);
    for n in 1..=GROUP_SYNC_POINTS {
        let dir = temp_dir("s1-group-crash");
        let vfs = group_crash_vfs(at_sync, seed ^ n, n);
        let acked: Vec<usize> = match Scheme1Server::open_durable_with_backend(
            Arc::new(vfs),
            CAPACITY,
            &dir,
            1,
            true,
            backend,
        ) {
            Err(_) => vec![0; GROUP_WRITERS],
            Ok(server) => {
                let server = Arc::new(server);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..GROUP_WRITERS)
                        .map(|w| {
                            let server = server.clone();
                            let trace = &traces[w];
                            let config = config.clone();
                            scope.spawn(move || {
                                let mut client = Scheme1Client::new_seeded(
                                    SharedLink(server),
                                    MasterKey::from_seed(seed ^ 0x51 ^ (w as u64)),
                                    config,
                                    w as u64,
                                );
                                let mut ok = 0usize;
                                for doc in trace {
                                    if client.store(std::slice::from_ref(doc)).is_err() {
                                        break;
                                    }
                                    ok += 1;
                                }
                                ok
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
            }
        };
        if acked.iter().sum::<usize>() < GROUP_WRITERS * GROUP_OPS {
            crashed_runs += 1;
        }

        let server = Arc::new(
            Scheme1Server::open_durable_with_backend(
                RealVfs::arc(),
                CAPACITY,
                &dir,
                1,
                true,
                backend,
            )
            .unwrap(),
        );
        if server.recovery().recovered_anything() {
            recoveries += 1;
        }
        for (w, trace) in traces.iter().enumerate() {
            let mut probe = Scheme1Client::new_seeded(
                SharedLink(server.clone()),
                MasterKey::from_seed(seed ^ 0x51 ^ (w as u64)),
                config.clone(),
                7,
            );
            let observed = observe(|kw| probe.search(kw).unwrap());
            let mode = if at_sync { "at" } else { "after" };
            assert_acked_prefix(
                &observed,
                trace,
                acked[w],
                &format!("crash {mode} sync {n}, writer {w}, {backend} backend"),
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        crashed_runs > 0,
        "no sweep point crashed mid-workload — raise GROUP_SYNC_POINTS"
    );
    assert!(
        recoveries > 0,
        "{GROUP_SYNC_POINTS} crash points never exercised recovery ({backend} backend)"
    );
}

#[test]
fn scheme1_mid_group_crash_between_write_and_fsync_keeps_acked_prefix() {
    for backend in fault_backends() {
        scheme1_mid_group_crash_sweep(true, fault_seed() ^ 0xAAAA, backend);
    }
}

#[test]
fn scheme1_mid_group_crash_between_fsync_and_ack_keeps_acked_prefix() {
    for backend in fault_backends() {
        scheme1_mid_group_crash_sweep(false, fault_seed() ^ 0xBBBB, backend);
    }
}

// ---------------------------------------------------------------------------
// Search-memo durability (there must be none)
// ---------------------------------------------------------------------------

/// The server-side search memo must be purely in-memory: it must not
/// change what reaches disk, it must not survive a crash, and recovery
/// must rebuild it from scratch off the recovered index.
///
/// Three assertions:
/// 1. an identical fault-free run schedules exactly the same writes with
///    the memo on and off (the memo never touches storage);
/// 2. immediately after crash recovery the memo counters are zero (no
///    memo state came back from disk);
/// 3. post-recovery probes first walk cold (misses) and then memo-serve
///    (hits), while still answering the op-atomic oracle prefix.
#[test]
fn scheme2_search_memo_is_purely_in_memory_across_crashes() {
    let seed = fault_seed() ^ 0xCAC4ED;
    let trace = build_trace(seed);
    let oracle = oracle_states(&trace);
    let cached = Scheme2Config::base(512).with_server_cache(true);
    let key = MasterKey::from_seed(seed ^ 0x52);

    // Fault-free counting runs, memo off vs on. Searches go out twice so
    // the cached run actually exercises memo hits.
    let mut writes = Vec::new();
    for config in [Scheme2Config::base(512), cached.clone()] {
        let dir = temp_dir("s2-memo-count");
        let counting = FaultVfs::counting();
        let stats = counting.stats();
        {
            let server = Arc::new(
                Scheme2Server::open_durable_with_vfs_sharded(
                    Arc::new(counting),
                    config.clone(),
                    &dir,
                    1,
                )
                .unwrap(),
            );
            let mut client = Scheme2Client::new_seeded(
                SharedLink(server.clone()),
                key.clone(),
                config.clone(),
                1,
            );
            for op in &trace {
                if let Op::Search(kw) = op {
                    let first = ids_checked(&client.search(kw).unwrap());
                    let second = ids_checked(&client.search(kw).unwrap());
                    assert_eq!(first, second, "repeat search diverged fault-free");
                } else {
                    drive_scheme2(&mut client, op).unwrap();
                }
            }
            if config.server_cache {
                assert!(
                    server.stats().cache_hits > 0,
                    "cached counting run never hit the memo — sweep is vacuous"
                );
            }
        }
        writes.push(stats.writes());
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(
        writes[0], writes[1],
        "enabling the search memo changed the write schedule — it must never touch storage"
    );
    let write_points = writes[1];
    assert!(write_points > 0, "workload scheduled no writes");

    // Crash at a few points spread across the schedule (the exhaustive
    // per-point sweeps above already pin down op-atomicity; this sweep is
    // about what the memo does and does not survive).
    let mut recoveries = 0u64;
    let mut points: Vec<u64> = (1..=4).map(|q| (write_points * q / 4).max(1)).collect();
    points.dedup();
    for k in points {
        let dir = temp_dir("s2-memo-crash");
        let vfs = FaultVfs::crashing_at(seed, k);
        let (completed, attempted_updates) = match Scheme2Server::open_durable_with_vfs_sharded(
            Arc::new(vfs),
            cached.clone(),
            &dir,
            1,
        ) {
            Err(_) => (0, 0),
            Ok(server) => {
                let mut client = Scheme2Client::new_seeded(
                    MeteredLink::new(server, Meter::new()),
                    key.clone(),
                    cached.clone(),
                    1,
                );
                let mut completed = 0usize;
                let mut attempted = 0u64;
                for op in trace.iter() {
                    if is_mutation(op) {
                        attempted += 1;
                    }
                    if drive_scheme2(&mut client, op).is_err() {
                        break;
                    }
                    completed += 1;
                }
                (completed, attempted)
            }
        };

        let server = Arc::new(Scheme2Server::open_durable(cached.clone(), &dir).unwrap());
        if server.recovery().recovered_anything() {
            recoveries += 1;
        }
        let fresh = server.stats();
        assert_eq!(
            (fresh.cache_hits, fresh.cache_misses),
            (0, 0),
            "crash at write {k}: memo state survived recovery — the cache must be in-memory only"
        );
        let mut probe =
            Scheme2Client::new_seeded(SharedLink(server.clone()), key.clone(), cached.clone(), 7);
        probe.restore_state(Scheme2ClientState {
            ctr: attempted_updates,
            epoch: 0,
            searched_since_update: true,
        });
        let observed = observe(|kw| probe.search(kw).unwrap());
        let warmed = observe(|kw| probe.search(kw).unwrap());
        assert_eq!(
            observed, warmed,
            "crash at write {k}: memo-served repeat probes diverged from the cold probes"
        );
        assert_prefix(
            &observed,
            &oracle,
            completed,
            &format!("memo crash sweep at write {k}"),
        );
        let stats = server.stats();
        assert!(
            stats.cache_misses > 0,
            "crash at write {k}: first post-recovery probes never walked cold"
        );
        assert!(
            stats.cache_hits > 0,
            "crash at write {k}: repeat probes never memo-served — recovery must rebuild the cache"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(recoveries > 0, "no crash point exercised recovery");
}

#[test]
fn scheme2_network_faults_fail_clean_or_answer_truthfully() {
    let seed = fault_seed();
    scheme2_network_sweep(&build_trace(seed ^ 0x3333), seed, 1);
}

#[test]
fn scheme2_batched_network_faults_over_sharded_server() {
    let seed = fault_seed();
    scheme2_network_sweep(&build_batched_trace(seed ^ 0x7777), seed ^ 0x7777, 4);
}
