//! Cross-scheme parity: the paper's two schemes and every baseline must
//! return identical search results on the same corpus — they differ only
//! in cost. Also pins the Table-1 round counts side by side.

use sse_repro::baselines::curtmola::CurtmolaClient;
use sse_repro::baselines::goh::{GohClient, GohConfig};
use sse_repro::baselines::naive::NaiveClient;
use sse_repro::baselines::swp::SwpClient;
use sse_repro::core::scheme::SseClientApi;
use sse_repro::core::scheme1::{InMemoryScheme1Client, Scheme1Config};
use sse_repro::core::scheme2::{InMemoryScheme2Client, Scheme2Config};
use sse_repro::core::types::{DocId, Document, Keyword, MasterKey};
use sse_repro::net::meter::Meter;
use sse_repro::phr::workload::{generate_corpus, CorpusConfig};
use std::collections::BTreeSet;

fn corpus() -> Vec<Document> {
    generate_corpus(&CorpusConfig {
        docs: 100,
        vocab_size: 150,
        keywords_per_doc: (2, 6),
        payload_bytes: 40,
        seed: 0x7777,
        ..CorpusConfig::default()
    })
}

fn all_clients() -> Vec<Box<dyn SseClientApi>> {
    let key = MasterKey::from_seed(42);
    vec![
        Box::new(InMemoryScheme1Client::new_in_memory(
            key.clone(),
            Scheme1Config::fast_profile(256),
        )),
        Box::new(InMemoryScheme2Client::new_in_memory(
            key.clone(),
            Scheme2Config::standard().with_chain_length(2048),
        )),
        Box::new(SwpClient::new(&key, Meter::new(), 1)),
        Box::new(GohClient::new(&key, GohConfig::default(), Meter::new(), 2)),
        Box::new(CurtmolaClient::new(&key, Meter::new(), 3)),
        Box::new(NaiveClient::new(&key, Meter::new(), 4)),
    ]
}

fn ids(hits: &[(DocId, Vec<u8>)]) -> BTreeSet<DocId> {
    hits.iter().map(|(id, _)| *id).collect()
}

#[test]
fn all_schemes_agree_on_search_results() {
    let docs = corpus();
    let queries: Vec<Keyword> = (0..25)
        .map(|i| Keyword::new(format!("kw-{i:05}")))
        .collect();

    // Ground truth.
    let truth: Vec<BTreeSet<DocId>> = queries
        .iter()
        .map(|q| {
            docs.iter()
                .filter(|d| d.has_keyword(q))
                .map(|d| d.id)
                .collect()
        })
        .collect();

    for mut client in all_clients() {
        client.add_documents(&docs).unwrap();
        for (q, want) in queries.iter().zip(truth.iter()) {
            let got = ids(&client.search(q).unwrap());
            if client.scheme_name() == "goh" {
                // Bloom filters may add false positives but never miss.
                assert!(
                    got.is_superset(want),
                    "{}: {q} missed documents",
                    client.scheme_name()
                );
                assert!(
                    got.len() <= want.len() + 3,
                    "{}: too many false positives for {q}",
                    client.scheme_name()
                );
            } else {
                assert_eq!(&got, want, "{}: {q}", client.scheme_name());
            }
        }
    }
}

#[test]
fn all_schemes_agree_after_incremental_updates() {
    let docs = corpus();
    let (initial, update) = docs.split_at(70);
    let q = Keyword::new("kw-00000"); // Zipf head: appears in many docs

    let mut results: Vec<(String, BTreeSet<DocId>)> = Vec::new();
    for mut client in all_clients() {
        client.add_documents(initial).unwrap();
        let _ = client.search(&q).unwrap();
        client.add_documents(update).unwrap();
        results.push((
            client.scheme_name().to_string(),
            ids(&client.search(&q).unwrap()),
        ));
    }
    let reference = &results[0].1;
    assert!(!reference.is_empty(), "head keyword must match documents");
    for (name, got) in &results {
        if name == "goh" {
            assert!(got.is_superset(reference), "{name} missed updates");
        } else {
            assert_eq!(got, reference, "{name} diverged after update");
        }
    }
}

#[test]
fn table1_round_counts_hold_for_the_papers_schemes() {
    let docs = corpus();
    let key = MasterKey::from_seed(9);

    let mut s1 =
        InMemoryScheme1Client::new_in_memory(key.clone(), Scheme1Config::fast_profile(256));
    let m1 = s1.meter();
    s1.store(&docs).unwrap();
    m1.reset();
    s1.search(&Keyword::new("kw-00001")).unwrap();
    assert_eq!(m1.snapshot().rounds, 2, "Scheme 1 search: two rounds");
    m1.reset();
    s1.store(&[Document::new(200, vec![], ["kw-00001"])])
        .unwrap();
    assert_eq!(
        m1.snapshot().rounds,
        3,
        "Scheme 1 update: 1 blob round + 2 metadata rounds"
    );

    let mut s2 = InMemoryScheme2Client::new_in_memory(
        key,
        Scheme2Config::standard().with_chain_length(2048),
    );
    let m2 = s2.meter();
    s2.store(&docs).unwrap();
    m2.reset();
    s2.search(&Keyword::new("kw-00001")).unwrap();
    assert_eq!(m2.snapshot().rounds, 1, "Scheme 2 search: one round");
    m2.reset();
    s2.store(&[Document::new(200, vec![], ["kw-00001"])])
        .unwrap();
    assert_eq!(
        m2.snapshot().rounds,
        2,
        "Scheme 2 update: 1 blob round + 1 metadata round"
    );
}

#[test]
fn update_cost_contrast_scheme1_vs_scheme2_vs_curtmola() {
    // The paper's core trade-off, pinned as assertions:
    //   Scheme 1 update bytes ~ capacity; Scheme 2 ~ batch;
    //   Curtmola update bytes ~ whole database.
    let docs = corpus();
    let key = MasterKey::from_seed(10);
    let single_update = vec![Document::new(200, b"tiny".to_vec(), ["kw-00001"])];

    let mut s1 =
        InMemoryScheme1Client::new_in_memory(key.clone(), Scheme1Config::fast_profile(8192));
    s1.store(&docs).unwrap();
    let m = s1.meter();
    m.reset();
    s1.store(&single_update).unwrap();
    let s1_bytes = m.snapshot().bytes_up;

    let mut s2 = InMemoryScheme2Client::new_in_memory(
        key.clone(),
        Scheme2Config::standard().with_chain_length(2048),
    );
    s2.store(&docs).unwrap();
    let m = s2.meter();
    m.reset();
    s2.store(&single_update).unwrap();
    let s2_bytes = m.snapshot().bytes_up;

    let meter_c = Meter::new();
    let mut cm = CurtmolaClient::new(&key, meter_c.clone(), 5);
    cm.add_documents(&docs).unwrap();
    meter_c.reset();
    cm.add_documents(&single_update).unwrap();
    let cm_bytes = meter_c.snapshot().bytes_up;

    // Scheme 2 cheapest, Scheme 1 pays the 8192-bit array, Curtmola pays
    // the whole index rebuild.
    assert!(
        s2_bytes < s1_bytes,
        "scheme2 ({s2_bytes}) must beat scheme1 ({s1_bytes}) on update bytes"
    );
    assert!(
        s1_bytes < cm_bytes,
        "scheme1 ({s1_bytes}) must beat a Curtmola rebuild ({cm_bytes})"
    );
    assert!(
        s1_bytes as usize >= 8192 / 8,
        "scheme1 must ship at least the bit array"
    );
}

#[test]
fn boolean_queries_agree_across_all_schemes() {
    use sse_repro::core::query::{execute_query, Query};
    let docs = corpus();
    let q = Query::Or(vec![
        Query::all_of(["kw-00000", "kw-00001"]),
        Query::AndNot(
            Box::new(Query::keyword("kw-00002")),
            Box::new(Query::keyword("kw-00000")),
        ),
    ]);
    let mut answers: Vec<(String, BTreeSet<DocId>)> = Vec::new();
    for mut client in all_clients() {
        client.add_documents(&docs).unwrap();
        let hits = execute_query(client.as_mut(), &q).unwrap();
        answers.push((
            client.scheme_name().to_string(),
            hits.iter().map(|(id, _)| *id).collect(),
        ));
    }
    let reference = answers
        .iter()
        .find(|(n, _)| n == "scheme1")
        .map(|(_, ids)| ids.clone())
        .unwrap();
    for (name, got) in &answers {
        if name == "goh" {
            // Bloom false positives can perturb set differences slightly.
            continue;
        }
        assert_eq!(got, &reference, "{name} diverged on the boolean query");
    }
}

#[test]
fn search_many_default_matches_loop_for_baselines() {
    let docs = corpus();
    let kws: Vec<Keyword> = (0..6).map(|i| Keyword::new(format!("kw-{i:05}"))).collect();
    for mut client in all_clients() {
        client.add_documents(&docs).unwrap();
        let batched = client.search_many(&kws).unwrap();
        let looped: Vec<_> = kws.iter().map(|w| client.search(w).unwrap()).collect();
        // Compare id sets (payload order within a list is deterministic).
        for (b, l) in batched.iter().zip(looped.iter()) {
            let b_ids: BTreeSet<DocId> = b.iter().map(|(id, _)| *id).collect();
            let l_ids: BTreeSet<DocId> = l.iter().map(|(id, _)| *id).collect();
            assert_eq!(b_ids, l_ids, "{}", client.scheme_name());
        }
    }
}

#[test]
fn linear_baselines_touch_everything_tree_schemes_do_not() {
    let docs = corpus();
    let key = MasterKey::from_seed(11);

    let mut swp = SwpClient::new(&key, Meter::new(), 6);
    swp.add_documents(&docs).unwrap();
    swp.search(&Keyword::new("zzz-absent")).unwrap();
    assert_eq!(
        swp.server().comparisons as usize,
        swp.server().stored_words(),
        "SWP must scan every stored word"
    );

    let mut goh = GohClient::new(&key, GohConfig::default(), Meter::new(), 7);
    goh.add_documents(&docs).unwrap();
    goh.search(&Keyword::new("zzz-absent")).unwrap();
    assert_eq!(
        goh.server().filters_probed as usize,
        docs.len(),
        "Goh must probe every document's filter"
    );

    let mut s1 = InMemoryScheme1Client::new_in_memory(key, Scheme1Config::fast_profile(256));
    s1.store(&docs).unwrap();
    let before = s1.server_mut().stats().tree_nodes_visited;
    s1.search(&Keyword::new("zzz-absent")).unwrap();
    let visited = s1.server_mut().stats().tree_nodes_visited - before;
    assert!(
        visited <= 5,
        "Scheme 1 lookup touches only a root-to-leaf path, got {visited}"
    );
}
