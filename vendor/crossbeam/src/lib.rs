//! Offline shim for the `crossbeam` crate.
//!
//! The build container cannot reach crates.io, so this vendors the one
//! piece the workspace uses: `crossbeam::channel` multi-producer
//! multi-consumer channels, both unbounded and bounded (the daemon's
//! bounded request queue with `try_send` backpressure relies on the
//! latter). Built on `std::sync::{Mutex, Condvar}`; semantics match
//! crossbeam-channel for this subset, including disconnection behaviour.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        /// `None` = unbounded.
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Inner<T> {
        fn senders_gone(&self) -> bool {
            self.senders.load(Ordering::SeqCst) == 0
        }

        fn receivers_gone(&self) -> bool {
            self.receivers.load(Ordering::SeqCst) == 0
        }
    }

    /// Sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// The channel is disconnected (all receivers dropped); the unsent
    /// message is returned.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is empty and disconnected (all senders dropped).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking send failure.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded queue is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Non-blocking receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Empty and all senders are gone.
        Disconnected,
    }

    /// Timed receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// Empty and all senders are gone.
        Disconnected,
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Channel with unlimited buffering.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Channel holding at most `cap` queued messages; `send` blocks and
    /// `try_send` reports `Full` when the buffer is at capacity.
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    fn lock<'a, T>(m: &'a Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'a, VecDeque<T>> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    impl<T> Sender<T> {
        /// Block until the message is queued (or the channel disconnects).
        ///
        /// # Errors
        /// [`SendError`] when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut q = lock(&self.inner.queue);
            loop {
                if self.inner.receivers_gone() {
                    return Err(SendError(msg));
                }
                match self.inner.capacity {
                    Some(cap) if q.len() >= cap => {
                        q = self
                            .inner
                            .not_full
                            .wait_timeout(q, Duration::from_millis(50))
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .0;
                    }
                    _ => break,
                }
            }
            q.push_back(msg);
            drop(q);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Queue the message only if there is room right now.
        ///
        /// # Errors
        /// [`TrySendError::Full`] at capacity, [`TrySendError::Disconnected`]
        /// when every receiver has been dropped.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut q = lock(&self.inner.queue);
            if self.inner.receivers_gone() {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.inner.capacity {
                if q.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            q.push_back(msg);
            drop(q);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        #[must_use]
        pub fn len(&self) -> usize {
            lock(&self.inner.queue).len()
        }

        /// Whether the queue is empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives (or the channel disconnects).
        ///
        /// # Errors
        /// [`RecvError`] when the queue is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = lock(&self.inner.queue);
            loop {
                if let Some(msg) = q.pop_front() {
                    drop(q);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if self.inner.senders_gone() {
                    return Err(RecvError);
                }
                q = self
                    .inner
                    .not_empty
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
            }
        }

        /// Block for at most `timeout`.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] on expiry, `Disconnected` when the
        /// queue is empty and every sender is gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = lock(&self.inner.queue);
            loop {
                if let Some(msg) = q.pop_front() {
                    drop(q);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if self.inner.senders_gone() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let wait = (deadline - now).min(Duration::from_millis(50));
                q = self
                    .inner
                    .not_empty
                    .wait_timeout(q, wait)
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
            }
        }

        /// Pop a message only if one is queued right now.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] / [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = lock(&self.inner.queue);
            if let Some(msg) = q.pop_front() {
                drop(q);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if self.inner.senders_gone() {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Messages currently queued.
        #[must_use]
        pub fn len(&self) -> usize {
            lock(&self.inner.queue).len()
        }

        /// Whether the queue is empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver gone: wake all blocked senders.
                self.inner.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded::<u8>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(30)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = bounded::<u64>(4);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        drop(rx);
        let producers: Vec<_> = (0..2)
            .map(|_| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 1..=100u64 {
                        tx.send(i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for p in producers {
            p.join().unwrap();
        }
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 2 * (100 * 101 / 2));
    }
}
