//! Offline vendored shim: minimal Linux `epoll` bindings plus a
//! deterministic mock, in the spirit of the other `vendor/` crates — the
//! build environment has no route to crates.io, so instead of `mio` the
//! workspace gets exactly the readiness API the reactor needs and nothing
//! else.
//!
//! Everything `unsafe` in the serving stack lives in this crate (the
//! workspace crates keep `#![forbid(unsafe_code)]`): raw `epoll_create1`/
//! `epoll_ctl`/`epoll_wait` syscalls, a non-blocking self-wake pipe
//! (`pipe2`), and an `RLIMIT_NOFILE` raise helper for the 10k-connection
//! benches. The [`Poller`] trait abstracts the readiness source so the
//! reactor's event loop runs identically against the kernel
//! ([`RealPoller`]) and against scripted readiness batches
//! ([`MockPoller`]) in deterministic unit tests — including scripts the
//! kernel would only produce under race conditions (spurious wakeups,
//! `EPOLLOUT` before `EPOLLIN`, events for an fd that was just closed).

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::os::raw::{c_int, c_void};
use std::sync::Arc;
use std::time::Duration;

/// Raw file descriptor, as `std::os::unix::io::RawFd`.
pub type RawFd = c_int;

// ---------------------------------------------------------------------------
// FFI surface (x86_64-unknown-linux-gnu; libc symbols linked via std).
// ---------------------------------------------------------------------------

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const O_NONBLOCK: c_int = 0o4000;
const O_CLOEXEC: c_int = 0o2000000;

const RLIMIT_NOFILE: c_int = 7;

/// The kernel's `struct epoll_event`. Packed on x86_64 (the one ABI this
/// shim targets), matching glibc's declaration.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn writev(fd: c_int, iov: *const c_void, iovcnt: c_int) -> isize;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------------
// Vectored writes for the reactor's coalesced flush path.
// ---------------------------------------------------------------------------

/// Linux's `IOV_MAX`: the most iovecs one `writev(2)` accepts. Callers
/// batching more segments than this must split across calls ([`writev_fd`]
/// clamps silently, which for a stream fd is just a short write).
pub const IOV_MAX: usize = 1024;

/// One `writev(2)` over `fd`. `std::io::IoSlice` is guaranteed
/// ABI-compatible with `struct iovec`, so the slice is passed to the
/// kernel as-is — no copying, no per-call allocation. At most [`IOV_MAX`]
/// segments are submitted; on a byte stream the short-write contract makes
/// the clamp indistinguishable from a partial write. Returns the number of
/// bytes written (possibly fewer than the total — resume from the cursor).
pub fn writev_fd(fd: RawFd, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
    let count = bufs.len().min(IOV_MAX);
    let n = unsafe { writev(fd, bufs.as_ptr().cast::<c_void>(), count as c_int) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

// ---------------------------------------------------------------------------
// Portable readiness types.
// ---------------------------------------------------------------------------

/// What a registration wants to be told about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Readiness for reading (`EPOLLIN`, plus peer hang-up).
    pub readable: bool,
    /// Readiness for writing (`EPOLLOUT`).
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn to_epoll(self) -> u32 {
        let mut bits = EPOLLRDHUP;
        if self.readable {
            bits |= EPOLLIN;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// One readiness event, decoded into portable flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable — includes peer hang-up, which a `read` call will surface
    /// as `Ok(0)` or an error.
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// `EPOLLERR`/`EPOLLHUP`: the fd is in an error state and should be
    /// torn down.
    pub error: bool,
}

impl Event {
    /// A plain readable event (test convenience).
    pub fn readable(token: u64) -> Event {
        Event {
            token,
            readable: true,
            writable: false,
            error: false,
        }
    }

    /// A plain writable event (test convenience).
    pub fn writable(token: u64) -> Event {
        Event {
            token,
            readable: false,
            writable: true,
            error: false,
        }
    }

    /// An error/hang-up event (test convenience).
    pub fn error(token: u64) -> Event {
        Event {
            token,
            readable: false,
            writable: false,
            error: true,
        }
    }
}

/// A readiness source: the kernel ([`RealPoller`]) or a script
/// ([`MockPoller`]). Level-triggered semantics in both cases — an fd that
/// stays ready keeps being reported.
pub trait Poller: Send {
    /// Start watching `fd` under `token`.
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;
    /// Change the interest set of an already-registered fd.
    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;
    /// Stop watching `fd`.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;
    /// Block for up to `timeout` (forever if `None`), filling `events`
    /// with whatever became ready. Returns the number of events; zero
    /// means the timeout elapsed.
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize>;
}

// ---------------------------------------------------------------------------
// RealPoller: the kernel epoll instance.
// ---------------------------------------------------------------------------

/// An `epoll(7)` instance. Dropping it closes the epoll fd (registered
/// fds are untouched — their owners close them).
pub struct RealPoller {
    epfd: RawFd,
    buf: Vec<EpollEvent>,
}

impl RealPoller {
    /// Create a new epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<RealPoller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(RealPoller {
            epfd,
            buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(&mut self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.to_epoll(),
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }
}

impl Drop for RealPoller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

impl Poller for RealPoller {
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        // Round sub-millisecond timeouts up so a short deadline cannot
        // degenerate into a busy loop.
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms.min(c_int::MAX as u128) as c_int
                }
            }
        };
        let n = loop {
            let ret = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    timeout_ms,
                )
            };
            if ret >= 0 {
                break ret as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for raw in &self.buf[..n] {
            let bits = raw.events;
            events.push(Event {
                token: raw.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                error: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// MockPoller: scripted readiness for deterministic reactor tests.
// ---------------------------------------------------------------------------

/// One registration-table operation observed by [`MockPoller`], recorded
/// so tests can assert the reactor's interest management (e.g. `EPOLLOUT`
/// armed only while a write queue is non-empty).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MockOp {
    /// `register` was called.
    Register {
        /// The fd registered.
        fd: RawFd,
        /// The token it was registered under.
        token: u64,
        /// The requested interest.
        interest: Interest,
    },
    /// `reregister` was called.
    Reregister {
        /// The fd re-registered.
        fd: RawFd,
        /// The (unchanged) token.
        token: u64,
        /// The new interest.
        interest: Interest,
    },
    /// `deregister` was called.
    Deregister {
        /// The fd removed.
        fd: RawFd,
    },
}

/// A deterministic [`Poller`]: `wait` pops pre-scripted event batches
/// (an exhausted script yields empty batches — a timeout tick), and every
/// registration call is recorded for assertion. Scripts may contain
/// anything, including events for tokens that were never registered or
/// were already deregistered — exactly the stale-readiness races a real
/// kernel can deliver.
#[derive(Default)]
pub struct MockPoller {
    script: VecDeque<Vec<Event>>,
    ops: Vec<MockOp>,
    registered: BTreeMap<RawFd, (u64, Interest)>,
    waits: usize,
}

impl MockPoller {
    /// New mock with an empty script.
    pub fn new() -> MockPoller {
        MockPoller::default()
    }

    /// Append one `wait` batch to the script.
    pub fn push_batch(&mut self, events: Vec<Event>) {
        self.script.push_back(events);
    }

    /// The registration operations observed so far.
    pub fn ops(&self) -> &[MockOp] {
        &self.ops
    }

    /// Number of `wait` calls made.
    pub fn waits(&self) -> usize {
        self.waits
    }

    /// The interest currently registered for `fd`, if any.
    pub fn interest_of(&self, fd: RawFd) -> Option<Interest> {
        self.registered.get(&fd).map(|(_, i)| *i)
    }

    /// Whether `fd` is currently registered.
    pub fn is_registered(&self, fd: RawFd) -> bool {
        self.registered.contains_key(&fd)
    }
}

impl Poller for MockPoller {
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ops.push(MockOp::Register {
            fd,
            token,
            interest,
        });
        self.registered.insert(fd, (token, interest));
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ops.push(MockOp::Reregister {
            fd,
            token,
            interest,
        });
        self.registered.insert(fd, (token, interest));
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.ops.push(MockOp::Deregister { fd });
        self.registered.remove(&fd);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, _timeout: Option<Duration>) -> io::Result<usize> {
        self.waits += 1;
        events.clear();
        if let Some(batch) = self.script.pop_front() {
            events.extend(batch);
        }
        Ok(events.len())
    }
}

// ---------------------------------------------------------------------------
// WakePipe: cross-thread reactor wakeup.
// ---------------------------------------------------------------------------

struct OwnedFd(RawFd);

impl Drop for OwnedFd {
    fn drop(&mut self) {
        unsafe {
            close(self.0);
        }
    }
}

/// The write half of a wakeup pipe. Cheap to clone; any thread may
/// [`Waker::notify`] to make the reactor's `wait` return.
#[derive(Clone)]
pub struct Waker {
    fd: Arc<OwnedFd>,
}

impl Waker {
    /// Wake the reader. Writes one byte into the (non-blocking) pipe; a
    /// full pipe means a wakeup is already pending, so `EAGAIN` is
    /// success by definition and every other error is ignored too — the
    /// reactor also polls on a timeout, so a lost wakeup degrades
    /// latency, never correctness.
    pub fn notify(&self) {
        let byte = [1u8];
        unsafe {
            write(self.fd.0, byte.as_ptr().cast::<c_void>(), 1);
        }
    }
}

/// The read half of a wakeup pipe: register [`WakeReader::fd`] with the
/// poller, and [`WakeReader::drain`] whenever it reports readable.
pub struct WakeReader {
    fd: OwnedFd,
}

impl WakeReader {
    /// The fd to register for readable interest.
    pub fn fd(&self) -> RawFd {
        self.fd.0
    }

    /// Consume all pending wakeup bytes, returning how many were pending.
    /// One byte is one [`Waker::notify`] call, so a return value of `n`
    /// means `n` notifications were coalesced into this single drain. The
    /// buffer is sized so a burst of completions costs one `read(2)`, not
    /// one per notification.
    pub fn drain(&self) -> usize {
        let mut buf = [0u8; 4096];
        let mut total = 0usize;
        loop {
            let n = unsafe { read(self.fd.0, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
            if n <= 0 {
                return total; // EAGAIN (drained), EOF, or error: nothing left
            }
            total += n as usize;
        }
    }
}

/// Create a non-blocking wakeup pipe, returning `(writer, reader)`.
pub fn wake_pipe() -> io::Result<(Waker, WakeReader)> {
    let mut fds: [c_int; 2] = [0; 2];
    cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
    Ok((
        Waker {
            fd: Arc::new(OwnedFd(fds[1])),
        },
        WakeReader {
            fd: OwnedFd(fds[0]),
        },
    ))
}

// ---------------------------------------------------------------------------
// RLIMIT_NOFILE helper for the many-connection benches.
// ---------------------------------------------------------------------------

/// Try to raise the open-file limit to at least `target` fds, returning
/// the soft limit actually in effect afterwards. Raising the hard limit
/// needs privilege; without it the soft limit is clamped to the existing
/// hard limit — callers size their workloads from the returned value
/// rather than assuming the request succeeded.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let mut rl = RLimit { cur: 0, max: 0 };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut rl) })?;
    if rl.cur >= target {
        return Ok(rl.cur);
    }
    // First try raising both limits (works when privileged)…
    let want = RLimit {
        cur: target,
        max: rl.max.max(target),
    };
    if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
        return Ok(target);
    }
    // …then settle for the existing hard limit.
    let capped = RLimit {
        cur: target.min(rl.max),
        max: rl.max,
    };
    cvt(unsafe { setrlimit(RLIMIT_NOFILE, &capped) })?;
    Ok(capped.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn real_poller_reports_pipe_readiness() {
        let (waker, reader) = wake_pipe().unwrap();
        let mut poller = RealPoller::new().unwrap();
        poller.register(reader.fd(), 7, Interest::READABLE).unwrap();
        let mut events = Vec::new();

        // Nothing pending: the wait times out with no events.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        waker.notify();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable && !events[0].writable);

        // Level-triggered: still readable until drained.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 1);
        reader.drain();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        poller.deregister(reader.fd()).unwrap();
        waker.notify();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "deregistered fd must not report");
    }

    #[test]
    fn real_poller_reports_socket_writability_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = RealPoller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 1, Interest::READ_WRITE)
            .unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].writable, "fresh socket is writable");
        assert!(!events[0].readable, "nothing to read yet");

        // Drop EPOLLOUT; readable fires once the peer sends.
        poller
            .reregister(server.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();
        (&client).write_all(b"x").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable && !events[0].writable);
        let mut buf = [0u8; 8];
        assert_eq!((&server).read(&mut buf).unwrap(), 1);

        // Peer hang-up surfaces as readable (read will return Ok(0)).
        drop(client);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable);
        assert_eq!((&server).read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn mock_poller_replays_script_and_records_ops() {
        let mut mock = MockPoller::new();
        mock.register(3, 30, Interest::READABLE).unwrap();
        mock.reregister(3, 30, Interest::READ_WRITE).unwrap();
        mock.push_batch(vec![Event::readable(30), Event::writable(30)]);
        mock.push_batch(vec![]); // spurious wakeup
        mock.push_batch(vec![Event::error(99)]); // never-registered token

        let mut events = Vec::new();
        assert_eq!(mock.wait(&mut events, None).unwrap(), 2);
        assert_eq!(events[0], Event::readable(30));
        assert_eq!(mock.wait(&mut events, None).unwrap(), 0);
        assert_eq!(mock.wait(&mut events, None).unwrap(), 1);
        assert_eq!(events[0].token, 99);
        // Script exhausted: behaves like a timeout forever after.
        assert_eq!(mock.wait(&mut events, None).unwrap(), 0);
        assert_eq!(mock.waits(), 4);

        assert_eq!(mock.interest_of(3), Some(Interest::READ_WRITE));
        mock.deregister(3).unwrap();
        assert!(!mock.is_registered(3));
        assert_eq!(
            mock.ops(),
            &[
                MockOp::Register {
                    fd: 3,
                    token: 30,
                    interest: Interest::READABLE
                },
                MockOp::Reregister {
                    fd: 3,
                    token: 30,
                    interest: Interest::READ_WRITE
                },
                MockOp::Deregister { fd: 3 },
            ]
        );
    }

    #[test]
    fn waker_is_clone_and_saturating() {
        let (waker, reader) = wake_pipe().unwrap();
        let w2 = waker.clone();
        // Saturate the pipe: notify must never block or panic.
        for _ in 0..100_000 {
            w2.notify();
        }
        reader.drain();
        let mut buf = [0u8; 16];
        let n = unsafe { read(reader.fd(), buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
        assert!(n <= 0, "drain left bytes behind");
    }

    #[test]
    fn writev_concatenates_segments_in_order() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        let segs = [
            io::IoSlice::new(b"alpha-"),
            io::IoSlice::new(b""),
            io::IoSlice::new(b"beta-"),
            io::IoSlice::new(b"gamma"),
        ];
        let total: usize = segs.iter().map(|s| s.len()).sum();
        let mut written = 0;
        while written < total {
            // Small payload on a fresh socket: one call writes it all, but
            // the loop keeps the test honest about the short-write contract.
            let mut remaining: Vec<io::IoSlice> = Vec::new();
            let mut skip = written;
            for seg in &segs {
                if skip >= seg.len() {
                    skip -= seg.len();
                } else {
                    remaining.push(io::IoSlice::new(&seg[skip..]));
                    skip = 0;
                }
            }
            written += writev_fd(server.as_raw_fd(), &remaining).unwrap();
        }
        drop(server);
        let mut got = Vec::new();
        (&client).read_to_end(&mut got).unwrap();
        assert_eq!(got, b"alpha-beta-gamma");
    }

    #[test]
    fn wake_drain_reports_coalesced_notifications() {
        let (waker, reader) = wake_pipe().unwrap();
        for _ in 0..5 {
            waker.notify();
        }
        assert_eq!(reader.drain(), 5);
        assert_eq!(reader.drain(), 0);
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotonic() {
        // Asking for 1 never lowers the limit; the returned value is the
        // soft limit in effect.
        let cur = raise_nofile_limit(1).unwrap();
        assert!(cur >= 1);
        let again = raise_nofile_limit(cur).unwrap();
        assert!(again >= cur);
    }
}
