//! Offline shim for the `bytes` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the minimal API surface it actually uses: a growable byte buffer with a
//! cheap consuming front cursor ([`BytesMut`]) plus the [`Buf`] / [`BufMut`]
//! traits. Semantics match the real crate for this subset; the
//! implementation favours simplicity (a `Vec<u8>` plus a start offset that
//! is compacted opportunistically) over the real crate's refcounted slabs.

use std::ops::{Deref, DerefMut};

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Consume `cnt` bytes from the front.
    fn advance(&mut self, cnt: usize);
}

/// Write-side append operations.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// A growable, front-consumable byte buffer.
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    start: usize,
}

impl BytesMut {
    /// New empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// New empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Bytes currently readable.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether no bytes are readable.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append bytes at the back.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.compact_if_worthwhile();
        self.data.extend_from_slice(src);
    }

    /// Split off and return the first `at` readable bytes.
    ///
    /// # Panics
    /// Panics if `at > len()`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let piece = self.data[self.start..self.start + at].to_vec();
        self.start += at;
        BytesMut {
            data: piece,
            start: 0,
        }
    }

    /// Copy the readable bytes out.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.start..].to_vec()
    }

    /// Drop the consumed prefix when it dominates the allocation.
    fn compact_if_worthwhile(&mut self) {
        if self.start > 4096 && self.start * 2 > self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let start = self.start;
        &mut self.data[start..]
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:02x?})", &self[..])
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            data: src.to_vec(),
            start: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_advance_split() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32_le(5);
        b.extend_from_slice(b"hello");
        assert_eq!(b.len(), 9);
        assert_eq!(&b[..4], 5u32.to_le_bytes());
        b.advance(4);
        let body = b.split_to(5);
        assert_eq!(body.to_vec(), b"hello");
        assert!(b.is_empty());
    }

    #[test]
    fn compaction_preserves_content() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&vec![7u8; 10_000]);
        b.advance(9_000);
        b.extend_from_slice(&[1, 2, 3]); // triggers compaction
        assert_eq!(b.len(), 1_003);
        assert_eq!(&b[1_000..], &[1, 2, 3]);
    }
}
