//! Offline vendored shim: a counting global allocator for the serving
//! hot-path benchmarks.
//!
//! The workspace crates keep `#![forbid(unsafe_code)]`; implementing
//! `GlobalAlloc` is inherently unsafe, so — like the epoll shim — the
//! allocator lives in `vendor/`. The design keeps the cost structure
//! honest in three ways:
//!
//! * **Opt-in per thread.** Only threads that called
//!   [`track_current_thread`] bump the counters; everything else takes a
//!   single const-initialized TLS load and falls straight through to the
//!   system allocator. The bench process marks the daemon's reactor and
//!   worker threads, so client-side allocations never pollute the
//!   server-side allocs/op numbers.
//! * **Zero cost when not installed.** Installing the allocator is the
//!   binary's decision (`#[global_allocator]` in `sse-load`); libraries
//!   only ever read counters, which are simply zero under the default
//!   allocator.
//! * **Counts allocations, not frees.** `allocs()` is the number of
//!   heap acquisitions (alloc + alloc_zeroed + realloc), `bytes()` the
//!   sum of their sizes — the "how much heap traffic did this op cause"
//!   number a zero-copy pipeline is supposed to shrink.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static THREAD_SPAWNS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-initialized: no lazy init, no registration, safe to read from
    // inside the allocator itself.
    static TRACKED: Cell<bool> = const { Cell::new(false) };
}

/// Mark the current thread's allocations as counted. Idempotent; cheap
/// enough to call unconditionally at thread start (one TLS store).
pub fn track_current_thread() {
    TRACKED.with(|t| t.set(true));
}

/// Stop counting the current thread's allocations.
pub fn untrack_current_thread() {
    TRACKED.with(|t| t.set(false));
}

/// Record one OS-thread spawn on a serving path. Unlike the allocation
/// counters this is *not* gated on [`track_current_thread`] and needs no
/// installed allocator — call it immediately before each `spawn` that
/// serves a request, and a spawn-free steady state shows a zero delta in
/// [`thread_spawns`] across a measured interval.
pub fn note_thread_spawn() {
    THREAD_SPAWNS.fetch_add(1, Ordering::Relaxed);
}

/// Serving-path thread spawns recorded via [`note_thread_spawn`] since
/// process start.
#[must_use]
pub fn thread_spawns() -> u64 {
    THREAD_SPAWNS.load(Ordering::Relaxed)
}

/// A point-in-time reading of the global counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocCounters {
    /// Heap acquisitions by tracked threads since process start.
    pub allocs: u64,
    /// Bytes requested by those acquisitions.
    pub bytes: u64,
    /// Serving-path thread spawns ([`note_thread_spawn`]) — counted
    /// process-wide regardless of per-thread tracking or whether the
    /// counting allocator is installed.
    pub thread_spawns: u64,
}

impl AllocCounters {
    /// Counter deltas since `earlier` (saturating).
    #[must_use]
    pub fn since(&self, earlier: &AllocCounters) -> AllocCounters {
        AllocCounters {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            thread_spawns: self.thread_spawns.saturating_sub(earlier.thread_spawns),
        }
    }
}

/// Read the counters. Zero forever unless a binary installed
/// [`CountingAlloc`] as its `#[global_allocator]` *and* some thread opted
/// in via [`track_current_thread`].
pub fn counters() -> AllocCounters {
    AllocCounters {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
        thread_spawns: THREAD_SPAWNS.load(Ordering::Relaxed),
    }
}

#[inline]
fn record(size: usize) {
    let tracked = TRACKED.try_with(|t| t.get()).unwrap_or(false);
    if tracked {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(size as u64, Ordering::Relaxed);
    }
}

/// The counting allocator: forwards to [`System`], bumping the global
/// counters for opted-in threads. Install with
/// `#[global_allocator] static A: CountingAlloc = CountingAlloc;`.
pub struct CountingAlloc;

// SAFETY: every method forwards to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates are lock-free atomics and a
// const-initialized TLS read, neither of which can allocate or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracked_thread_counts_and_untracked_does_not() {
        // Untracked by default: heap traffic leaves the counters alone.
        let before = counters();
        let v = vec![0u8; 4096];
        drop(v);
        let mid = counters();
        assert_eq!(mid.since(&before).allocs, 0);

        track_current_thread();
        let before = counters();
        let v = vec![0u8; 4096];
        let after = counters();
        drop(v);
        let delta = after.since(&before);
        assert!(delta.allocs >= 1, "tracked alloc not counted: {delta:?}");
        assert!(delta.bytes >= 4096, "tracked bytes not counted: {delta:?}");

        untrack_current_thread();
        let before = counters();
        let v = vec![0u8; 4096];
        drop(v);
        let delta = counters().since(&before);
        assert_eq!(delta.allocs, 0, "untracked alloc counted: {delta:?}");
    }

    #[test]
    fn thread_spawns_count_without_tracking_or_allocator() {
        untrack_current_thread();
        let before = counters();
        note_thread_spawn();
        note_thread_spawn();
        let delta = counters().since(&before);
        assert_eq!(delta.thread_spawns, 2);
        assert_eq!(counters().thread_spawns, thread_spawns());
    }

    #[test]
    fn other_threads_opt_in_independently() {
        let before = counters();
        std::thread::spawn(|| {
            track_current_thread();
            let v = vec![0u8; 1024];
            drop(v);
        })
        .join()
        .unwrap();
        let delta = counters().since(&before);
        assert!(delta.allocs >= 1, "spawned tracked thread not counted");
    }
}
