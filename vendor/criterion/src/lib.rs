//! Offline shim for the `criterion` crate.
//!
//! The build container cannot reach crates.io; this vendors the subset of
//! the criterion API the bench targets use. Statistical machinery is
//! replaced by a plain timing loop (fixed warm-up, then `sample_size`
//! timed batches reporting min/mean) — enough to compare orders of
//! magnitude and keep every bench target compiling and runnable offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Bench a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{id}"), 10, None, f);
        self
    }
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    #[must_use]
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter.
    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Bench one function.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{id}", self.name),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Bench one function against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{id}", self.name),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; measures the hot loop.
pub struct Bencher {
    /// Duration of the most recent [`Bencher::iter`] batch.
    elapsed: Duration,
    /// Iterations executed in the most recent batch.
    iters: u64,
}

impl Bencher {
    /// Time `routine`, self-calibrating the iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibrate: find an iteration count taking roughly >=1ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = start.elapsed();
            if dt >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.elapsed = dt;
                self.iters = iters;
                return;
            }
            iters *= 4;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // Warm-up run (also the calibration run).
    f(&mut b);
    let mut best = f64::INFINITY;
    let mut total = 0.0f64;
    let samples = sample_size.min(20); // keep offline runs quick
    for _ in 0..samples {
        f(&mut b);
        let per_iter = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        best = best.min(per_iter);
        total += per_iter;
    }
    let mean = total / samples as f64;
    let tput = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:.1} MiB/s",
                n as f64 / (best * 1e-9) / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) => format!("  {:.0} elem/s", n as f64 / (best * 1e-9)),
        None => String::new(),
    };
    eprintln!("  {label}: best {best:.0} ns/iter, mean {mean:.0} ns/iter{tput}");
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
