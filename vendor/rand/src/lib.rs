//! Offline shim for the `rand` crate.
//!
//! The build container cannot reach crates.io; this vendors the one entry
//! point the workspace uses — `rand::rng().fill_bytes(..)` as the OS
//! randomness source — plus small conveniences. Entropy comes from
//! `/dev/urandom` where available, falling back to a hash of volatile
//! process state (time, pid, thread id, a global counter) expanded through
//! a SplitMix64-style mixer. The fallback is not cryptographically strong;
//! on the Linux containers this repo targets, `/dev/urandom` is always
//! present.

use std::sync::atomic::{AtomicU64, Ordering};

/// Random number generator operations (merged `Rng`/`RngCore` subset).
pub trait Rng {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `buf` with random bytes.
    fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    fn random_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// The process-wide OS-entropy generator returned by [`rng`].
pub struct ThreadRng {
    state: u64,
    /// Whether `/dev/urandom` seeded the state.
    os_seeded: bool,
}

static FALLBACK_COUNTER: AtomicU64 = AtomicU64::new(0);

fn os_seed() -> Option<u64> {
    use std::io::Read;
    let mut f = std::fs::File::open("/dev/urandom").ok()?;
    let mut seed = [0u8; 8];
    f.read_exact(&mut seed).ok()?;
    Some(u64::from_le_bytes(seed))
}

fn fallback_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    h.write_u128(
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0),
    );
    h.write_u32(std::process::id());
    h.write_u64(FALLBACK_COUNTER.fetch_add(1, Ordering::Relaxed));
    h.finish()
}

/// A fresh generator seeded from OS entropy.
#[must_use]
pub fn rng() -> ThreadRng {
    match os_seed() {
        Some(seed) => ThreadRng {
            state: seed,
            os_seeded: true,
        },
        None => ThreadRng {
            state: fallback_seed(),
            os_seeded: false,
        },
    }
}

impl Rng for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        if self.os_seeded {
            // Periodically fold in fresh OS entropy so long fills are not a
            // pure PRG expansion of 64 bits.
            if self.state.is_multiple_of(257) {
                if let Some(seed) = os_seed() {
                    self.state ^= seed;
                }
            }
        }
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_exact_and_ragged_lengths() {
        let mut r = rng();
        for len in [0usize, 1, 7, 8, 9, 32, 33] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 16 {
                assert_ne!(buf, vec![0u8; len], "all-zero fill of {len} bytes");
            }
        }
    }

    #[test]
    fn two_generators_disagree() {
        let mut a = rng();
        let mut b = rng();
        let mut x = [0u8; 32];
        let mut y = [0u8; 32];
        a.fill_bytes(&mut x);
        b.fill_bytes(&mut y);
        assert_ne!(x, y);
    }

    #[test]
    fn random_range_is_in_bounds() {
        let mut r = rng();
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..100 {
                assert!(r.random_range(bound) < bound);
            }
        }
    }
}
