//! Offline shim for the `rand` crate.
//!
//! The build container cannot reach crates.io; this vendors the one entry
//! point the workspace uses — `rand::rng().fill_bytes(..)` as the OS
//! randomness source — plus small conveniences. Every output byte is read
//! directly from the operating system's CSPRNG (`/dev/urandom`): there is
//! no user-space expansion, mixing, or seeding step between the kernel and
//! the caller, so a 32-byte key really does carry 256 bits of OS entropy.
//!
//! If `/dev/urandom` cannot be opened or read, the shim panics. Scheme
//! keys, ElGamal randomness, and encrypt-then-MAC IVs all flow through
//! here; degrading silently to a weak source (time/pid hashing) would
//! invalidate the security model, so failure is loud by design.

use std::fs::File;
use std::io::Read;

/// Random number generator operations (merged `Rng`/`RngCore` subset).
pub trait Rng {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `buf` with random bytes.
    fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    fn random_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// The OS-entropy generator returned by [`rng`]: an open handle to
/// `/dev/urandom`, read on demand.
pub struct ThreadRng {
    urandom: File,
}

/// A generator drawing directly from the OS CSPRNG.
///
/// # Panics
/// Panics if `/dev/urandom` cannot be opened — weak fallback sources are
/// refused.
#[must_use]
pub fn rng() -> ThreadRng {
    ThreadRng {
        urandom: File::open("/dev/urandom")
            .expect("rand shim: cannot open /dev/urandom; refusing to emit weak randomness"),
    }
}

impl Rng for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.urandom
            .read_exact(&mut b)
            .expect("rand shim: read from /dev/urandom failed");
        u64::from_le_bytes(b)
    }

    fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.urandom
            .read_exact(buf)
            .expect("rand shim: read from /dev/urandom failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_exact_and_ragged_lengths() {
        let mut r = rng();
        for len in [0usize, 1, 7, 8, 9, 32, 33] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 16 {
                assert_ne!(buf, vec![0u8; len], "all-zero fill of {len} bytes");
            }
        }
    }

    #[test]
    fn two_generators_disagree() {
        let mut a = rng();
        let mut b = rng();
        let mut x = [0u8; 32];
        let mut y = [0u8; 32];
        a.fill_bytes(&mut x);
        b.fill_bytes(&mut y);
        assert_ne!(x, y);
    }

    #[test]
    fn consecutive_words_disagree() {
        let mut r = rng();
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn random_range_is_in_bounds() {
        let mut r = rng();
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..100 {
                assert!(r.random_range(bound) < bound);
            }
        }
    }
}
