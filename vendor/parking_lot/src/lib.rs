//! Offline shim for the `parking_lot` crate.
//!
//! The build container cannot reach crates.io; this vendors parking_lot's
//! poison-free locking API (`lock()` returning the guard directly) on top
//! of `std::sync`. Poisoning is absorbed via `PoisonError::into_inner`,
//! matching parking_lot's behaviour of not propagating panics through
//! locks.

use std::sync::PoisonError;

/// Mutual exclusion lock whose `lock` cannot fail.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock whose acquisitions cannot fail.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
