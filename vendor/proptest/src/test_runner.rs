//! Test-run configuration.

/// Configuration consumed by the [`crate::proptest!`] macro.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}
