//! Offline shim for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! self-contained property-testing harness exposing the subset of the
//! proptest API its tests use: the [`proptest!`] macro, `prop_assert*!`,
//! `prop_assume!`, `prop_oneof!`, [`Strategy`] with `prop_map`, integer
//! range and `any::<T>()` strategies, tuple strategies, collection
//! strategies (`vec`, `btree_set`, `hash_set`) and `sample::select`.
//!
//! Differences from the real crate, deliberate for size:
//!
//! * no shrinking — a failing case reports its generated inputs and the
//!   test panics immediately;
//! * generation is deterministic per test (seeded from the test's module
//!   path), so failures reproduce across runs without a persistence file.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Deterministic pseudorandom source for strategy generation.
pub mod rng {
    /// SplitMix64 generator; cheap, uniform, deterministic.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (e.g. a test's module path).
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` via rejection sampling.
        ///
        /// # Panics
        /// Panics if `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }
}

/// Run one property-test case, annotating any panic with the generated
/// inputs (the shim's substitute for shrinking).
#[doc(hidden)]
pub fn run_case<F: FnOnce()>(case_index: u32, described_inputs: &str, body: F) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    if let Err(payload) = result {
        eprintln!("proptest case {case_index} failed with inputs: {described_inputs}");
        std::panic::resume_unwind(payload);
    }
}

/// The `proptest!` macro: runs each embedded test function over
/// `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::rng::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let strategies = ($($strat,)+);
                for case_index in 0..config.cases {
                    let values =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let described = format!("{values:?}");
                    $crate::run_case(case_index, &described, move || {
                        let ($($pat,)+) = values;
                        $body
                    });
                }
            }
        )*
    };
}

/// Assert within a property test (shim: plain `assert!` semantics).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when the precondition is not met.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

/// Choose between several strategies with a common value type, uniformly
/// or by `weight => strategy` arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}
