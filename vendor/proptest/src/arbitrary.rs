//! `any::<T>()` — full-domain strategies for primitive types.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
