//! The [`Strategy`] trait and core combinators.

use crate::rng::TestRng;
use std::fmt::Debug;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Box a strategy for storage in heterogeneous collections ([`Union`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) source: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Weighted choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<T: Debug> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total_weight: u64,
}

impl<T: Debug> Union<T> {
    /// Build from equally-likely arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        Self::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Build from `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty or all weights are zero.
    #[must_use]
    pub fn new_weighted(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs a nonzero total weight");
        Union { arms, total_weight }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut ticket = rng.below(self.total_weight);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if ticket < weight {
                return arm.generate(rng);
            }
            ticket -= weight;
        }
        unreachable!("ticket below total weight always lands in an arm")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (5usize..=5).generate(&mut rng);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::for_test("union");
        let s = Union::new(vec![
            boxed((0u8..10).prop_map(|v| v as u32)),
            boxed((100u32..110).prop_map(|v| v)),
        ]);
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 10 || (100..110).contains(&v));
            saw_low |= v < 10;
            saw_high |= v >= 100;
        }
        assert!(saw_low && saw_high, "both arms exercised");
    }

    #[test]
    fn tuples_generate_elementwise() {
        let mut rng = TestRng::for_test("tuples");
        let (a, b, c) = (0u8..3, 10u16..20, 0u64..=1).generate(&mut rng);
        assert!(a < 3);
        assert!((10..20).contains(&b));
        assert!(c <= 1);
    }
}
