//! Sampling strategies over concrete value lists.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::fmt::Debug;

/// Uniformly select one of the given values.
///
/// # Panics
/// Panics if `values` is empty.
#[must_use]
pub fn select<T: Clone + Debug>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select from an empty list");
    Select { values }
}

/// Output of [`select`].
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.values.len() as u64) as usize;
        self.values[idx].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_covers_all_values() {
        let mut rng = TestRng::for_test("select");
        let s = select(vec![1u8, 2, 3]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }
}
