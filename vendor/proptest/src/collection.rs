//! Collection strategies: `vec`, `btree_set`, `hash_set`.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::collections::{BTreeSet, HashSet};
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// A size constraint for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Smallest allowed size.
    pub min: usize,
    /// Largest allowed size (inclusive).
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

/// Vectors of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Ordered sets with a size drawn from `size` (best-effort when the element
/// domain is smaller than the requested size).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 10 + 100 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// Hash sets with a size drawn from `size` (best-effort when the element
/// domain is smaller than the requested size).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = HashSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 10 + 100 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_sizes_respect_range() {
        let mut rng = TestRng::for_test("vec");
        let s = vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn sets_hit_their_target_size_in_large_domains() {
        let mut rng = TestRng::for_test("sets");
        let s = btree_set(any::<u64>(), 10..=10);
        assert_eq!(s.generate(&mut rng).len(), 10);
        let h = hash_set(any::<u64>(), 100..101);
        assert_eq!(h.generate(&mut rng).len(), 100);
    }

    #[test]
    fn small_domain_sets_saturate_gracefully() {
        let mut rng = TestRng::for_test("small");
        let s = btree_set(0u8..3, 0..40);
        let v = s.generate(&mut rng);
        assert!(v.len() <= 3);
    }
}
